"""Unit tests for the metrics and reporting helpers."""

import math

import pytest

from repro.metrics.degree import degree_statistics
from repro.metrics.paths import longest_root_to_leaf_path, path_statistics, tree_diameter
from repro.metrics.reporting import compare_series, format_table, summarize_distribution
from repro.metrics.trees import tree_metrics
from repro.multicast.tree import MulticastTree


@pytest.fixture()
def small_tree():
    return MulticastTree(0, {0: None, 1: 0, 2: 0, 3: 1, 4: 3})


class TestDegreeStatistics:
    def test_from_adjacency_mapping(self):
        stats = degree_statistics({0: [1, 2], 1: [0], 2: [0], 3: []})
        assert stats.peer_count == 4
        assert stats.maximum == 2
        assert stats.minimum == 0
        assert stats.average == pytest.approx(1.0)
        assert stats.median == pytest.approx(1.0)

    def test_from_snapshot(self, topology_2d):
        stats = degree_statistics(topology_2d)
        assert stats.peer_count == topology_2d.peer_count
        assert stats.maximum == topology_2d.maximum_degree()
        assert stats.average == pytest.approx(topology_2d.average_degree())

    def test_empty(self):
        stats = degree_statistics({})
        assert stats.peer_count == 0
        assert stats.maximum == 0

    def test_even_count_median(self):
        stats = degree_statistics({0: [], 1: [0], 2: [0, 1], 3: [0, 1, 2]})
        assert stats.median == pytest.approx(1.5)

    def test_as_dict(self):
        stats = degree_statistics({0: [1], 1: [0]})
        assert stats.as_dict()["max_degree"] == 1


class TestPathStatistics:
    def test_per_tree_metrics(self, small_tree):
        assert longest_root_to_leaf_path(small_tree) == 3
        assert tree_diameter(small_tree) == 4

    def test_aggregate_over_sessions(self, small_tree):
        chain = MulticastTree(0, {0: None, 1: 0, 2: 1})
        stats = path_statistics([small_tree, chain])
        assert stats.session_count == 2
        assert stats.maximum == 3
        assert stats.minimum == 2
        assert stats.average == pytest.approx(2.5)

    def test_empty_aggregate(self):
        stats = path_statistics([])
        assert stats.session_count == 0
        assert stats.maximum == 0
        assert stats.as_dict()["sessions"] == 0


class TestTreeMetrics:
    def test_bundle(self, small_tree):
        metrics = tree_metrics(small_tree)
        assert metrics.size == 5
        assert metrics.height == 3
        assert metrics.diameter == 4
        assert metrics.maximum_degree == 2
        assert metrics.leaf_count == 2
        assert metrics.dissemination_messages == 4
        assert metrics.as_dict()["size"] == 5


class TestFormatTable:
    def test_alignment_and_float_formatting(self):
        table = format_table(["name", "value"], [["a", 1.23456], ["bb", 7]])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert "1.23" in table
        assert "7" in table
        assert len(lines) == 4  # header, rule, two rows

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestSummarizeDistribution:
    def test_summary_values(self):
        summary = summarize_distribution([4.0, 1.0, 3.0, 2.0])
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["median"] == pytest.approx(2.5)

    def test_empty(self):
        assert summarize_distribution([])["count"] == 0


class TestCompareSeries:
    def test_identical_series(self):
        comparison = compare_series([2, 3, 4], [1.0, 2.0, 3.0], [1.0, 2.0, 3.0])
        assert comparison.rank_correlation == pytest.approx(1.0)
        assert comparison.same_direction
        assert comparison.ratios == (1.0, 1.0, 1.0)

    def test_scaled_series_keep_perfect_rank_correlation(self):
        comparison = compare_series([2, 3, 4, 5], [1.0, 2.0, 4.0, 8.0], [10.0, 20.0, 40.0, 80.0])
        assert comparison.rank_correlation == pytest.approx(1.0)
        assert all(r == pytest.approx(0.1) for r in comparison.ratios)

    def test_opposite_trends_are_detected(self):
        comparison = compare_series([1, 2, 3], [1.0, 2.0, 3.0], [3.0, 2.0, 1.0])
        assert comparison.rank_correlation == pytest.approx(-1.0)
        assert not comparison.same_direction

    def test_zero_reference_gives_nan_ratio(self):
        comparison = compare_series([1], [2.0], [0.0])
        assert math.isnan(comparison.ratios[0])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            compare_series([1, 2], [1.0], [1.0, 2.0])

    def test_as_rows(self):
        comparison = compare_series([1, 2], [1.0, 2.0], [2.0, 4.0])
        rows = comparison.as_rows()
        assert rows[0][0] == 1
        assert rows[0][1] == 1.0
        assert rows[0][2] == 2.0
