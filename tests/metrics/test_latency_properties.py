"""Hypothesis properties for the latency-statistics summariser.

The invariants, over arbitrary non-negative samples and bin counts:

* the histogram counts always sum to ``count`` (no sample falls between
  the bins, none is double-counted);
* the bins tile ``[0, max]`` exactly -- contiguous equal-width intervals
  starting at 0 and ending at the sample maximum;
* every sample lands in the bin whose interval contains it (last bin
  upper-inclusive);
* the nearest-rank percentiles match an independently written reference;
* the degenerate samples (empty, all-zero) produce the documented
  all-zero statistics / width-1 histogram rather than dividing by zero.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.latency import latency_statistics, percentile

_samples = st.lists(
    st.floats(
        min_value=0.0,
        max_value=1e6,
        allow_nan=False,
        allow_infinity=False,
        allow_subnormal=False,
    ),
    min_size=1,
    max_size=200,
)


def _reference_percentile(values, fraction):
    """Nearest-rank, written independently of the implementation."""
    ordered = sorted(values)
    rank = math.ceil(fraction * len(ordered))
    return ordered[max(rank, 1) - 1]


class TestLatencyStatisticsProperties:
    @settings(max_examples=200, deadline=None)
    @given(values=_samples, bins=st.integers(min_value=1, max_value=40))
    def test_histogram_counts_sum_to_count(self, values, bins):
        stats = latency_statistics(values, bins=bins)
        assert stats.count == len(values)
        assert len(stats.histogram) == bins
        assert sum(b.count for b in stats.histogram) == stats.count

    @settings(max_examples=200, deadline=None)
    @given(values=_samples, bins=st.integers(min_value=1, max_value=40))
    def test_bins_tile_zero_to_max(self, values, bins):
        stats = latency_statistics(values, bins=bins)
        histogram = stats.histogram
        assert histogram[0].lower == 0.0
        if stats.maximum > 0:
            assert histogram[-1].upper == pytest.approx(stats.maximum)
        for left, right in zip(histogram, histogram[1:]):
            assert left.upper == right.lower
        widths = [b.upper - b.lower for b in histogram]
        assert all(w == pytest.approx(widths[0]) for w in widths)

    def test_subnormal_maximum_does_not_divide_by_zero(self):
        # Regression caught by the property sweep: 5e-324 / 2 underflows to
        # 0.0 and the binning loop divided by it.
        stats = latency_statistics([5e-324], bins=2)
        assert stats.count == 1
        assert sum(b.count for b in stats.histogram) == 1

    @settings(max_examples=200, deadline=None)
    @given(values=_samples)
    def test_percentiles_match_the_nearest_rank_reference(self, values):
        stats = latency_statistics(values)
        for fraction, reported in ((0.50, stats.p50), (0.90, stats.p90), (0.99, stats.p99)):
            assert reported == _reference_percentile(values, fraction)
        assert stats.maximum == max(values)
        assert stats.p50 <= stats.p90 <= stats.p99 <= stats.maximum
        assert stats.mean == pytest.approx(math.fsum(values) / len(values))

    def test_empty_sample_degenerates_to_zeroes(self):
        stats = latency_statistics([])
        assert stats.count == 0
        assert stats.histogram == ()
        assert (stats.mean, stats.p50, stats.p90, stats.p99, stats.maximum) == (
            0.0,
            0.0,
            0.0,
            0.0,
            0.0,
        )
        assert stats.describe() == "no samples"

    def test_all_zero_sample_uses_unit_width_bins(self):
        stats = latency_statistics([0.0, 0.0, 0.0], bins=4)
        assert stats.maximum == 0.0
        assert stats.histogram[0].count == 3
        assert [b.upper - b.lower for b in stats.histogram] == [1.0] * 4
        assert sum(b.count for b in stats.histogram) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            latency_statistics([1.0], bins=0)
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1.0], 0.0)
