"""Shared fixtures: small, deterministic populations and topologies.

Fixtures are deliberately small (tens of peers) so the full unit-test suite
runs in seconds; the figure-scale workloads live in ``benchmarks/``.
"""

from __future__ import annotations

import pytest

from repro.overlay.network import OverlayNetwork
from repro.overlay.selection.empty_rectangle import EmptyRectangleSelection
from repro.overlay.selection.orthogonal import OrthogonalHyperplanesSelection
from repro.overlay.topology import TopologySnapshot
from repro.workloads.peers import generate_peers, generate_peers_with_lifetimes


@pytest.fixture(scope="session")
def peers_2d():
    """40 peers with random 2-D identifiers (Section 2 workload)."""
    return generate_peers(40, 2, seed=101)


@pytest.fixture(scope="session")
def peers_3d():
    """30 peers with random 3-D identifiers."""
    return generate_peers(30, 3, seed=202)


@pytest.fixture(scope="session")
def lifetime_peers_3d():
    """45 peers whose first coordinate is their lifetime (Section 3 workload)."""
    return generate_peers_with_lifetimes(45, 3, seed=303)


@pytest.fixture(scope="session")
def topology_2d(peers_2d) -> TopologySnapshot:
    """Equilibrium empty-rectangle overlay over the 2-D population."""
    return OverlayNetwork.build_equilibrium(peers_2d, EmptyRectangleSelection()).snapshot()


@pytest.fixture(scope="session")
def topology_3d(peers_3d) -> TopologySnapshot:
    """Equilibrium empty-rectangle overlay over the 3-D population."""
    return OverlayNetwork.build_equilibrium(peers_3d, EmptyRectangleSelection()).snapshot()


@pytest.fixture(scope="session")
def lifetime_topology(lifetime_peers_3d) -> TopologySnapshot:
    """Equilibrium Orthogonal-Hyperplanes overlay over the lifetime population."""
    overlay = OverlayNetwork.build_equilibrium(
        lifetime_peers_3d, OrthogonalHyperplanesSelection(k=2)
    )
    return overlay.snapshot()
