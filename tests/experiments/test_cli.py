"""Tests for the command-line interface (run at a tiny custom scale via env)."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(autouse=True)
def _smoke_scale(monkeypatch):
    """Run every CLI invocation in this module at the smoke scale."""
    monkeypatch.setenv("REPRO_SCALE", "smoke")


class TestParser:
    def test_commands_are_registered(self):
        parser = build_parser()
        arguments = parser.parse_args(["figure1a"])
        assert arguments.command == "figure1a"
        assert arguments.scale is None

    def test_scale_choices_are_validated(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["--scale", "huge", "figure1a"])

    def test_unknown_command_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["figure9z"])


class TestExecution:
    def test_figure1a_prints_a_table(self, capsys):
        assert main(["figure1a"]) == 0
        output = capsys.readouterr().out
        assert "Figure 1(a)" in output
        assert "max degree" in output

    def test_figure1c_respects_explicit_scale_flag(self, capsys):
        assert main(["--scale", "smoke", "figure1c"]) == 0
        output = capsys.readouterr().out
        assert "Figure 1(c)" in output
        assert "10*log10(N)" in output

    def test_figure1d_reports_invariants(self, capsys):
        assert main(["figure1d"]) == 0
        output = capsys.readouterr().out
        assert "invariants hold: True" in output
        assert "tree diameter" in output

    def test_ablations_prints_every_ablation(self, capsys):
        assert main(["ablations"]) == 0
        output = capsys.readouterr().out
        assert "Ablation A1" in output
        assert "Ablation A2" in output
        assert "Ablation A3" in output
        assert "Ablation A4" in output
        assert "Ablation A5" in output
        assert "Ablation A6" in output
        assert "Ablation A7" in output
        assert "Ablation A8" in output
        assert "dirty-set" in output
        assert "snapshot rebuilds" in output
        assert "per-epoch" in output
        assert "lognormal" in output

    def test_network_subcommand_runs_the_link_model_sweep(self, capsys):
        assert main(["network"]) == 0
        output = capsys.readouterr().out
        assert "Ablation A8" in output
        assert "eq match" in output
        assert "lognormal" in output

    def test_trace_prints_every_scenario(self, capsys):
        assert main(["trace"]) == 0
        output = capsys.readouterr().out
        assert "Churn-trace scenarios" in output
        for scenario in ("poisson", "flash-crowd", "mass-departure", "diurnal"):
            assert scenario in output
