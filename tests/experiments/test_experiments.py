"""Tests for the experiment drivers (run at smoke scale)."""

import pytest

from repro.experiments.ablations import (
    run_baseline_comparison,
    run_churn_ablation,
    run_message_replay_ablation,
    run_network_model_ablation,
    run_overlay_churn_ablation,
    run_pick_strategy_ablation,
    run_trace_convergence_ablation,
    run_tree_maintenance_ablation,
)
from repro.experiments.config import SCALES, ExperimentScale, resolve_scale
from repro.experiments.trace_runner import TraceRunner, run_trace_scenarios
from repro.experiments.figure1a import run_figure1a
from repro.experiments.figure1b import run_figure1b
from repro.experiments.figure1c import run_figure1c
from repro.experiments.figure1d_e import run_stability_sweep


TINY = ExperimentScale(
    name="tiny",
    peer_count=40,
    scaling_peer_counts=(20, 40),
    section2_dimensions=(2, 3),
    section3_dimensions=(2, 3),
    k_values=(1, 3),
    root_sample=5,
)


class TestConfig:
    def test_known_scales(self):
        assert set(SCALES) == {"smoke", "bench", "paper"}
        assert SCALES["paper"].peer_count == 1000
        assert SCALES["paper"].k_values == tuple(range(1, 51))
        assert SCALES["paper"].root_sample is None

    def test_resolve_scale_by_name_and_env(self, monkeypatch):
        assert resolve_scale("smoke").name == "smoke"
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert resolve_scale().name == "paper"
        monkeypatch.delenv("REPRO_SCALE")
        assert resolve_scale().name == "bench"

    def test_unknown_scale(self):
        with pytest.raises(ValueError):
            resolve_scale("galactic")

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            ExperimentScale(
                name="bad",
                peer_count=1,
                scaling_peer_counts=(10,),
                section2_dimensions=(2,),
                section3_dimensions=(2,),
                k_values=(1,),
                root_sample=None,
            )


class TestFigure1a:
    def test_rows_and_comparison(self):
        result = run_figure1a(TINY)
        assert [row.dimension for row in result.rows] == [2, 3]
        for row in result.rows:
            assert 0 < row.average_degree <= row.maximum_degree
            assert row.peer_count == TINY.peer_count
        comparisons = result.compare_with_paper()
        assert set(comparisons) == {"maximum_degree", "average_degree"}
        # Degrees grow with the dimension, as in the paper.
        assert result.rows[1].average_degree > result.rows[0].average_degree
        assert "max degree" in result.to_table()


class TestFigure1b:
    def test_invariants_and_series(self):
        result = run_figure1b(TINY)
        assert [row.dimension for row in result.rows] == [2, 3]
        for row in result.rows:
            assert row.all_sessions_sent_n_minus_1_messages
            assert row.all_sessions_respected_degree_bound
            assert 0 < row.average_longest_path <= row.maximum_longest_path
            assert row.sessions == TINY.root_sample
        assert "avg longest path" in result.to_table()
        assert set(result.compare_with_paper()) == {
            "maximum_longest_path",
            "average_longest_path",
        }


class TestFigure1c:
    def test_degree_growth_with_peer_count(self):
        result = run_figure1c(TINY)
        assert [row.peer_count for row in result.rows] == [20, 40]
        assert result.rows[1].maximum_degree >= result.rows[0].maximum_degree
        comparison = result.compare_with_log_growth()
        assert comparison.same_direction
        assert "10*log10(N)" in result.to_table()


class TestStabilitySweep:
    def test_insertion_procedure_matches_equilibrium(self):
        """The paper-literal churn loop reproduces the equilibrium sweep."""
        direct = run_stability_sweep(TINY)
        replayed = run_stability_sweep(TINY, procedure="insertion")
        assert replayed.procedure == "insertion"
        assert replayed.rows == direct.rows

    def test_unknown_procedure_rejected(self):
        with pytest.raises(ValueError, match="procedure"):
            run_stability_sweep(TINY, procedure="telepathy")

    def test_invariants_hold_at_every_point(self):
        result = run_stability_sweep(TINY)
        assert len(result.rows) == len(TINY.section3_dimensions) * len(TINY.k_values)
        assert result.all_invariants_hold()
        diameters = result.diameter_series()
        degrees = result.degree_series()
        assert set(diameters) == set(TINY.section3_dimensions)
        assert set(degrees) == set(TINY.section3_dimensions)
        # Larger K never shrinks the overlay, so the tree degree envelope grows.
        for dimension, series in degrees.items():
            assert series[-1][1] >= series[0][1]
        assert "max tree degree" in result.to_table()


class TestAblations:
    def test_baseline_comparison(self):
        rows, table = run_baseline_comparison(TINY, dimension=2)
        by_name = {row.strategy: row for row in rows}
        assert by_name["space-partition"].construction_messages == TINY.peer_count - 1
        assert by_name["space-partition"].duplicate_deliveries == 0
        assert by_name["flooding"].construction_messages > TINY.peer_count - 1
        assert by_name["sequential-unicast"].maximum_tree_degree == TINY.peer_count - 1
        assert "flooding" in table.to_table()

    def test_pick_strategy_ablation(self):
        rows, table = run_pick_strategy_ablation(TINY, dimension=2)
        strategies = {row.strategy for row in rows}
        assert strategies == {"median", "nearest", "farthest", "random"}
        assert all(row.maximum_longest_path >= row.average_longest_path for row in rows)
        assert "median" in table.to_table()

    def test_churn_ablation(self):
        rows, table = run_churn_ablation(TINY, dimension=2, k=2)
        by_name = {row.strategy: row for row in rows}
        assert by_name["stability"].disconnection_events == 0
        assert by_name["stability"].orphaned_peer_events == 0
        # Lifetime-oblivious trees disconnect at least once on this workload.
        others = [row for row in rows if row.strategy != "stability"]
        assert any(row.disconnection_events > 0 for row in others)
        assert "stability" in table.to_table()

    def test_overlay_churn_ablation(self):
        rows, table = run_overlay_churn_ablation(TINY, dimension=2, k=2)
        by_phase = {row.phase: row for row in rows}
        assert set(by_phase) == {"join", "leave"}
        assert by_phase["join"].events == TINY.peer_count - 1
        assert by_phase["leave"].events == TINY.peer_count
        # Per-event reconvergence stays cheap and never splits the overlay.
        for row in rows:
            # The very last departure empties the overlay and costs 0 rounds.
            assert row.total_rounds >= row.events - 1
            assert row.maximum_rounds_per_event <= 10
            assert row.disconnected_events == 0
        assert "overlay-churn" == table.name
        assert "join" in table.to_table()
        # The connectivity verdicts come from the delta-fed union-find
        # tracker; the pure-growth phase may rebuild (reselection evicts
        # edges) but never more than once per event.
        for row in rows:
            assert 0 <= row.connectivity_rebuilds <= row.events

    def test_tree_maintenance_ablation(self):
        rows, table = run_tree_maintenance_ablation(TINY, dimension=2, k=2)
        by_phase = {row.phase: row for row in rows}
        assert set(by_phase) == {"join", "leave"}
        assert by_phase["join"].events == TINY.peer_count
        assert by_phase["leave"].events == TINY.peer_count
        for row in rows:
            # Event-driven maintenance stays byte-identical to the snapshot
            # rebuild at every event while never rebuilding after bootstrap.
            assert row.identical
            assert row.full_rebuilds == 0
            assert row.snapshot_rebuilds == row.events
            assert row.reparent_operations > 0
        assert "tree-maintenance" == table.name
        assert "join" in table.to_table()

    def test_message_replay_ablation(self):
        rows, table = run_message_replay_ablation(TINY, dimension=2, replay_cap=30)
        by_mode = {row.mode: row for row in rows}
        assert set(by_mode) == {"full-reselect", "dirty-set"}
        full, dirty = by_mode["full-reselect"], by_mode["dirty-set"]
        # Identical message streams: both modes settle to the same topology.
        assert full.identical_topology and dirty.identical_topology
        assert full.reselect_ticks == dirty.reselect_ticks
        # The full-reselect arm applies the method on every tick; the
        # dirty-set arm resolves most ticks as skips or additive updates.
        assert full.selection_invocations == full.reselect_ticks
        assert dirty.selection_invocations < full.selection_invocations
        assert dirty.skipped_ticks > 0
        assert "message-replay" == table.name
        assert "dirty-set" in table.to_table()

    def test_network_model_ablation(self):
        rows, table = run_network_model_ablation(TINY, dimension=2, replay_cap=16)
        by_arm = {row.arm: row for row in rows}
        assert set(by_arm) == {
            "ideal",
            "loss-5%",
            "uniform+loss-5%",
            "lognormal+loss-10%+bw",
        }
        ideal = by_arm["ideal"]
        # The degenerate arm loses nothing and never retransmits...
        assert ideal.messages_lost == 0
        assert ideal.retransmissions == 0
        # ...and every arm still settles to the analytic fixed point and
        # reaches every peer with the probe (the loss-tolerance story).
        for row in rows:
            assert row.peers == 16
            assert row.equilibrium_match
            assert row.probe_unreached == 0
            assert row.bytes_sent > 0
            assert row.probe_p99_ms >= row.probe_p50_ms > 0
        # Lossy arms actually lose messages and pay retransmissions for the
        # reliable notices.
        assert by_arm["loss-5%"].messages_lost > 0
        assert by_arm["lognormal+loss-10%+bw"].messages_lost > 0
        assert "network-model" == table.name
        assert "ideal" in table.to_table()

    def test_trace_convergence_ablation(self):
        rows, table = run_trace_convergence_ablation(TINY, dimension=2)
        by_arm = {row.arm: row for row in rows}
        assert set(by_arm) == {"per-event", "per-epoch"}
        per_event, per_epoch = by_arm["per-event"], by_arm["per-epoch"]
        # Same trace, same epochs and events -- only the cadence differs.
        assert per_event.events == per_epoch.events
        assert per_event.epochs == per_epoch.epochs
        # Both arms land on the identical overlay fixed point and
        # byte-identical maintained stability tree...
        assert per_event.identical and per_epoch.identical
        # ...while the batched arm converges once per epoch instead of once
        # per event, for a fraction of the engine rounds.
        assert per_epoch.convergences == per_epoch.epochs
        assert per_event.convergences == per_event.events
        assert per_epoch.engine_rounds < per_event.engine_rounds
        assert "trace-convergence" == table.name
        assert "per-epoch" in table.to_table()

    def test_trace_scenarios(self):
        rows, table = run_trace_scenarios(TINY, dimension=2)
        by_scenario = {row.scenario: row for row in rows}
        assert set(by_scenario) == {
            "poisson",
            "flash-crowd",
            "mass-departure",
            "diurnal",
        }
        for row in rows:
            assert row.events > 0
            assert row.epochs > 0
            assert row.engine_rounds >= 1
            # Every scenario keeps the overlay connected at every epoch
            # sample (the batched path converges before sampling).
            assert row.always_connected
        # The flash crowd doubles the base population in one epoch.
        assert by_scenario["flash-crowd"].peak_peers == 2 * max(
            2, TINY.peer_count // 2
        )
        assert "trace-scenarios" == table.name
        assert "diurnal" in table.to_table()

    def test_trace_runner_applies_move_events(self):
        from repro.overlay.network import OverlayNetwork
        from repro.overlay.peer import make_peer
        from repro.overlay.selection.empty_rectangle import EmptyRectangleSelection
        from repro.workloads.churn import ChurnEvent
        from repro.workloads.traces import ChurnTrace, EventBatch

        peers = [
            make_peer(index, (float(index * 2), float(index * 2 + 1)), lifetime=10.0 + index)
            for index in range(6)
        ]
        moved = (200.0, 200.0)
        trace = ChurnTrace(
            batches=(
                EventBatch(
                    time=0.0,
                    events=tuple(
                        ChurnEvent(time=0.0, peer_id=peer.peer_id, kind="join")
                        for peer in peers
                    ),
                ),
                EventBatch(
                    time=1.0,
                    events=(
                        ChurnEvent(time=1.0, peer_id=2, kind="move", coordinates=moved),
                    ),
                ),
            )
        )
        runner = TraceRunner(peers, EmptyRectangleSelection, bootstrap_seed=3)
        result = runner.run(trace)
        assert result.samples[0].moves == 0
        assert result.samples[1].moves == 1
        assert result.samples[1].events == 1
        # The replayed fixed point matches an overlay converged after an
        # explicit move_peer of the same peer.
        from dataclasses import replace

        reference = OverlayNetwork(EmptyRectangleSelection())
        reference.apply_batch(
            [
                replace(peer, coordinates=moved) if peer.peer_id == 2 else peer
                for peer in peers
            ]
        )
        assert result.final_neighbours == reference.directed_neighbour_map()
        # Both arms replay moves identically.
        per_event = runner.run(trace, per_event=True)
        assert per_event.final_neighbours == result.final_neighbours
