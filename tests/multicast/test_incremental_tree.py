"""Event-driven multicast layer: equivalence with the snapshot-batch path.

The maintenance engine's correctness story is that every repair preserves
the tree invariants and that, driven from the overlay delta stream, the
maintained forest is *byte-identical* to a from-scratch
``build_stability_tree`` over the current snapshot -- with the streaming
metric bundle matching ``tree_metrics`` and the incremental connectivity
tracker matching a networkx recomputation.  These tests let hypothesis hunt
for counterexamples over random populations and churn scripts (mirroring
``tests/overlay/test_incremental_properties.py``), plus unit coverage for
the repair API and the tracker's epoch-rebuild behaviour.
"""

import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.trees import tree_metrics
from repro.multicast.dissemination import departure_health_series
from repro.multicast.incremental import (
    IncrementalConnectivity,
    OverlayConnectivityFeed,
    StabilityTreeMaintainer,
    TreeDelta,
    TreeMaintenanceEngine,
)
from repro.multicast.stability import StabilityTreeBuilder
from repro.multicast.tree import MulticastTree, TreeValidationError
from repro.overlay.network import OverlayNetwork
from repro.overlay.peer import make_peer
from repro.overlay.selection.empty_rectangle import EmptyRectangleSelection
from repro.overlay.selection.k_closest import KClosestSelection
from repro.overlay.selection.orthogonal import OrthogonalHyperplanesSelection


# ----------------------------------------------------------------------
# Repair API of MulticastTree
# ----------------------------------------------------------------------
class TestTreeRepairAPI:
    @pytest.fixture()
    def tree(self):
        return MulticastTree(0, {0: None, 1: 0, 2: 0, 3: 1, 4: 3})

    def test_add_leaf_updates_children_and_depths(self, tree):
        tree.add_leaf(5, 2)
        assert tree.parent(5) == 2
        assert tree.children(2) == (5,)
        assert tree.depth(5) == 2
        tree.revalidate()

    def test_remove_leaf(self, tree):
        tree.remove_leaf(4)
        assert 4 not in tree
        assert tree.children(3) == ()
        tree.revalidate()

    def test_remove_non_leaf_rejected(self, tree):
        with pytest.raises(TreeValidationError):
            tree.remove_leaf(1)
        with pytest.raises(TreeValidationError):
            tree.remove_leaf(0)

    def test_reparent_shifts_subtree_depths(self, tree):
        tree.reparent(3, 2)
        assert tree.parent(3) == 2
        assert tree.depth(3) == 2
        assert tree.depth(4) == 3
        assert tree.children(1) == ()
        assert tree.children(2) == (3,)
        tree.revalidate()

    def test_reparent_under_descendant_rejected(self, tree):
        with pytest.raises(TreeValidationError):
            tree.reparent(1, 4)
        with pytest.raises(TreeValidationError):
            tree.reparent(0, 1)

    def test_revalidate_catches_corruption(self, tree):
        tree._parents[4] = 2  # noqa: SLF001 - deliberate corruption
        with pytest.raises(TreeValidationError):
            tree.revalidate()

    def test_metrics_summary_matches_standalone_metrics(self):
        rng = random.Random(1234)
        for _ in range(20):
            count = rng.randrange(1, 40)
            parents = {0: None}
            for node in range(1, count):
                parents[node] = rng.randrange(node)
            tree = MulticastTree(0, parents)
            summary = tree.metrics_summary()
            assert summary["height"] == tree.height()
            assert summary["diameter"] == tree.diameter()
            assert summary["max_degree"] == tree.maximum_degree()
            assert summary["avg_degree"] == tree.average_degree()
            assert summary["leaves"] == len(tree.leaves())

    def test_departure_health_series_shrinks_leaf_first(self):
        rng = random.Random(9)
        parents = {0: None}
        for node in range(1, 30):
            parents[node] = rng.randrange(node)
        tree = MulticastTree(0, parents)
        # Depth-descending order removes only leaves, so the replay is stable.
        order = sorted((n for n in tree.nodes() if n != 0), key=tree.depth, reverse=True)
        samples, report = departure_health_series(tree, order + [0])
        assert report.non_leaf_departures == 0
        assert report.departures == 30
        assert [s.size for s in samples] == list(range(29, 0, -1))
        assert all(s.is_single_tree for s in samples)
        # The original tree is untouched (the replay works on a copy).
        assert tree.size == 30


# ----------------------------------------------------------------------
# TreeMaintenanceEngine invariants
# ----------------------------------------------------------------------
class TestMaintenanceEngine:
    def test_lifetime_invariant_enforced(self):
        engine = TreeMaintenanceEngine()
        engine.apply(TreeDelta(joined={1: 10.0, 2: 20.0}))
        engine.apply(TreeDelta(reparented={1: 2}))
        with pytest.raises(TreeValidationError):
            engine.apply(TreeDelta(reparented={2: 1}))

    def test_duplicate_lifetimes_rejected(self):
        engine = TreeMaintenanceEngine()
        engine.add_peer(1, 5.0)
        with pytest.raises(ValueError):
            engine.add_peer(2, 5.0)

    def test_departed_peer_orphans_children(self):
        engine = TreeMaintenanceEngine()
        engine.apply(TreeDelta(joined={1: 1.0, 2: 2.0, 3: 3.0}))
        engine.apply(TreeDelta(reparented={1: 2, 2: 3}))
        assert engine.roots() == [3]
        engine.apply(TreeDelta(departed=frozenset((2,))))
        assert engine.parent(1) is None
        assert engine.roots() == [1, 3]

    def test_leave_then_rejoin_inside_one_delta_is_well_formed(self):
        # The delta-stream contract: a departure followed by a re-join in one
        # window appears in both groups, with the rejoined peer's fresh
        # parent in reparented; all three at once must apply cleanly.
        engine = TreeMaintenanceEngine()
        engine.apply(TreeDelta(joined={1: 1.0, 2: 2.0}))
        engine.apply(TreeDelta(reparented={1: 2}))
        engine.apply(
            TreeDelta(joined={1: 1.5}, departed=frozenset((1,)), reparented={1: 2})
        )
        assert engine.lifetime(1) == 1.5
        assert engine.parent(1) == 2

    def test_rejoin_window_reattaches_children_to_the_fresh_instance(self):
        # Regression: a peer leaves and rejoins before one refresh().  Its
        # ex-children's recomputed parent equals their pre-delta parent id,
        # but the engine's departure phase orphans them -- the maintainer
        # must re-issue the link onto the rejoined instance.
        child, parent = make_peer(2, (0.25, 0.25)), make_peer(3, (0.375, 0.375))
        overlay = OverlayNetwork(EmptyRectangleSelection())
        overlay.insert_and_converge(parent, bootstrap=set(), incremental=True)
        overlay.insert_and_converge(child, bootstrap={3}, incremental=True)
        maintainer = StabilityTreeMaintainer(overlay)
        assert maintainer.forest().preferred == {2: 3, 3: None}
        overlay.remove_and_converge(3, incremental=True)
        overlay.insert_and_converge(parent, bootstrap={2}, incremental=True)
        maintainer.refresh()
        expected = StabilityTreeBuilder().build(overlay.snapshot())
        assert dict(maintainer.forest().preferred) == dict(expected.preferred)
        assert maintainer.forest().preferred[2] == 3

    def test_streaming_metrics_match_batch_metrics(self):
        rng = random.Random(77)
        engine = TreeMaintenanceEngine()
        population = list(range(1, 30))
        for peer in population:
            engine.add_peer(peer, float(peer))
        for _ in range(200):
            child = rng.choice(population)
            parent = rng.choice([None] + [p for p in population if p > child])
            engine.set_parent(child, parent)
            # Re-attach everything below the maximum so the forest is a tree
            # often enough to exercise the metrics bundle.
            if engine.is_single_tree():
                assert engine.metrics() == tree_metrics(engine.tree())
        # Force a single tree and compare once more.
        for peer in population[:-1]:
            engine.set_parent(peer, population[-1])
        assert engine.is_single_tree()
        assert engine.metrics() == tree_metrics(engine.tree())


# ----------------------------------------------------------------------
# IncrementalConnectivity vs networkx
# ----------------------------------------------------------------------
class TestIncrementalConnectivity:
    def test_matches_networkx_under_random_edit_scripts(self):
        rng = random.Random(4242)
        for _ in range(10):
            tracker = IncrementalConnectivity()
            graph = nx.Graph()
            nodes = []
            next_id = 0
            for _ in range(120):
                action = rng.random()
                if action < 0.3 or len(nodes) < 2:
                    tracker.add_node(next_id)
                    graph.add_node(next_id)
                    nodes.append(next_id)
                    next_id += 1
                elif action < 0.6:
                    u, v = rng.sample(nodes, 2)
                    tracker.add_edge(u, v)
                    graph.add_edge(u, v)
                elif action < 0.8 and graph.number_of_edges():
                    u, v = rng.choice(list(graph.edges()))
                    # The tracker stores directed pairs; remove whichever
                    # orientations are present.
                    tracker.remove_edge(u, v)
                    tracker.remove_edge(v, u)
                    graph.remove_edge(u, v)
                else:
                    victim = rng.choice(nodes)
                    tracker.remove_node(victim)
                    graph.remove_node(victim)
                    nodes.remove(victim)
                expected_components = nx.number_connected_components(graph)
                assert tracker.component_count() == expected_components
                expected = graph.number_of_nodes() == 0 or nx.is_connected(graph)
                assert tracker.is_connected() == expected

    def test_pure_growth_needs_no_rebuilds(self):
        tracker = IncrementalConnectivity()
        for node in range(50):
            tracker.add_node(node)
            if node:
                tracker.add_edge(node - 1, node)
            assert tracker.is_connected()
        assert tracker.rebuilds == 0

    def test_deletion_batches_rebuild_once_per_query(self):
        tracker = IncrementalConnectivity()
        for node in range(10):
            tracker.add_node(node)
        for node in range(1, 10):
            tracker.add_edge(0, node)
        for node in range(1, 5):
            tracker.remove_edge(0, node)
        assert not tracker.is_connected()
        assert tracker.rebuilds == 1
        assert tracker.component_count() == 5
        assert tracker.rebuilds == 1  # clean epoch, no further rebuild


# ----------------------------------------------------------------------
# Hypothesis: maintainer vs snapshot rebuild under arbitrary schedules
# ----------------------------------------------------------------------
def _populations(min_size=2, max_size=14, max_dimension=3):
    """Random populations with pairwise-distinct per-axis coordinates."""

    @st.composite
    def build(draw):
        count = draw(st.integers(min_value=min_size, max_value=max_size))
        dimension = draw(st.integers(min_value=2, max_value=max_dimension))
        axes = [
            draw(
                st.lists(
                    st.integers(min_value=0, max_value=9999),
                    min_size=count,
                    max_size=count,
                    unique=True,
                )
            )
            for _ in range(dimension)
        ]
        return [
            make_peer(index, tuple(float(axis[index]) / 8 for axis in axes))
            for index in range(count)
        ]

    return build()


_SELECTIONS = st.sampled_from(
    [
        EmptyRectangleSelection,
        lambda: OrthogonalHyperplanesSelection(k=1),
        lambda: OrthogonalHyperplanesSelection(k=2),
        lambda: KClosestSelection(k=2),
    ]
)


@settings(max_examples=25, deadline=None)
@given(
    peers=_populations(min_size=4, max_size=14),
    selection_factory=_SELECTIONS,
    script_seed=st.integers(min_value=0, max_value=999),
    columnar=st.booleans(),
)
def test_maintained_tree_matches_snapshot_rebuild_at_every_step(
    peers, selection_factory, script_seed, columnar
):
    """Arbitrary join/leave/reselect schedules: engine == snapshot rebuild.

    After every event the maintained parent map must equal a from-scratch
    ``StabilityTreeBuilder`` build over the current snapshot, the streaming
    metric bundle must equal ``tree_metrics`` of the rebuilt tree whenever
    the forest is a single tree, and the delta-fed connectivity tracker must
    agree with a networkx recomputation.  ``columnar`` draws the engine's
    candidate representation *and* the delta-recorder implementation
    (set-backed vs dense-row), so both recorder contracts stay under the
    hunt.
    """
    rng = random.Random(script_seed)
    overlay = OverlayNetwork(selection_factory(), columnar=columnar)
    maintainer = StabilityTreeMaintainer(overlay)
    feed = OverlayConnectivityFeed(overlay)
    builder = StabilityTreeBuilder()

    info_by_id = {peer.peer_id: peer for peer in peers}
    alive = []
    pending = list(peers)
    while pending or (alive and rng.random() < 0.5):
        roll = rng.random()
        if alive and roll < 0.15:
            # Full synchronous sweep: rewrites every neighbour set outside
            # the incremental engine; the delta stream must still cover it.
            overlay.reselect_round()
        elif alive and roll < 0.25:
            # Leave then immediate rejoin of the same id: both land inside
            # one refresh window, so the drained delta carries the peer as
            # departed *and* joined (and usually re-parented too).
            victim = rng.choice(alive)
            overlay.remove_and_converge(victim, incremental=True)
            bootstrap = {rng.choice([p for p in alive if p != victim])} if len(alive) > 1 else set()
            overlay.insert_and_converge(
                info_by_id[victim], bootstrap=bootstrap, incremental=True
            )
        elif alive and (not pending or roll < 0.4):
            victim = rng.choice(alive)
            alive.remove(victim)
            overlay.remove_and_converge(victim, incremental=True)
        else:
            peer = pending.pop()
            bootstrap = {rng.choice(alive)} if alive else set()
            overlay.insert_and_converge(peer, bootstrap=bootstrap, incremental=True)
            alive.append(peer.peer_id)

        maintainer.refresh()
        snapshot = overlay.snapshot()
        expected = builder.build(snapshot)
        forest = maintainer.forest()
        assert dict(forest.preferred) == dict(expected.preferred)
        assert dict(forest.lifetimes) == dict(expected.lifetimes)
        if snapshot.peer_count and forest.is_single_tree():
            assert maintainer.metrics() == tree_metrics(expected.to_multicast_tree())

        graph = snapshot.to_networkx()
        expected_connected = graph.number_of_nodes() == 0 or nx.is_connected(graph)
        assert feed.is_connected() == expected_connected

    assert maintainer.full_rebuilds == 1


@settings(max_examples=25, deadline=None)
@given(
    peers=_populations(min_size=3, max_size=16),
    script_seed=st.integers(min_value=0, max_value=999),
    k=st.integers(min_value=1, max_value=3),
)
def test_hyperplane_additive_rule_agrees_with_full_selection(peers, script_seed, k):
    """The per-region top-K delta rule equals select() on the grown set."""
    joiner, existing = peers[-1], peers[:-1]
    selection = OrthogonalHyperplanesSelection(k=k)
    equilibrium = selection.compute_equilibrium(existing)
    updates = [
        (
            reference,
            [p for p in existing if p.peer_id in equilibrium[reference.peer_id]],
            [joiner],
        )
        for reference in existing
    ]
    delta_results = selection.select_many_additive(updates)
    assert delta_results is not None
    for reference in existing:
        expected = sorted(
            selection.select(
                reference, [p for p in peers if p.peer_id != reference.peer_id]
            )
        )
        got = delta_results.get(reference.peer_id)
        if got is None:
            assert expected == sorted(equilibrium[reference.peer_id])
        else:
            assert sorted(got) == expected


@settings(max_examples=25, deadline=None)
@given(
    peers=_populations(min_size=4, max_size=14),
    selection_factory=_SELECTIONS,
    script_seed=st.integers(min_value=0, max_value=999),
)
def test_multi_peer_bootstrap_joins_keep_the_maintained_tree_exact(
    peers, selection_factory, script_seed
):
    """Joins wired to *several* bootstrap contacts stay on the delta contract.

    ``add_peer`` installs the whole bootstrap set as the joiner's first
    selection through the shared selection-change notification; both
    endpoints of every bootstrap edge must land in ``touched`` or the
    maintained tree silently diverges.  The pre-convergence check is the
    sharp one: right after the join, the bootstrap edges are the *only*
    adjacency the joiner has, and the bootstrap contacts' preferred parents
    may already have changed.
    """
    rng = random.Random(script_seed)
    overlay = OverlayNetwork(selection_factory())
    maintainer = StabilityTreeMaintainer(overlay)
    builder = StabilityTreeBuilder()

    def assert_exact():
        expected = builder.build(overlay.snapshot())
        assert maintainer.forest().preferred == dict(expected.preferred)

    alive = []
    for peer in peers:
        bootstrap = (
            set(rng.sample(alive, rng.randint(1, min(3, len(alive)))))
            if alive
            else set()
        )
        overlay.add_peer(peer, bootstrap=bootstrap)
        alive.append(peer.peer_id)
        maintainer.refresh()
        assert_exact()
        overlay.converge(incremental=True)
        maintainer.refresh()
        assert_exact()
        if len(alive) > 1 and rng.random() < 0.25:
            victim = rng.choice(alive)
            alive.remove(victim)
            overlay.remove_and_converge(victim, incremental=True)
            maintainer.refresh()
            assert_exact()
    assert maintainer.full_rebuilds == 1
