"""Unit and integration tests for the Section 2 construction."""

import random

import pytest

from repro.geometry.rectangle import HyperRectangle
from repro.multicast.space_partition import (
    PickStrategy,
    SpacePartitionTreeBuilder,
    build_space_partition_tree,
    select_zone_children,
)
from repro.multicast.zones import initial_zone, zones_are_disjoint
from repro.overlay.network import OverlayNetwork
from repro.overlay.peer import make_peer
from repro.overlay.selection.empty_rectangle import EmptyRectangleSelection
from repro.workloads.peers import generate_peers


class TestSelectZoneChildren:
    def test_one_child_per_occupied_region(self):
        reference = make_peer(0, (0.0, 0.0))
        neighbours = [
            make_peer(1, (1.0, 1.0)),
            make_peer(2, (2.0, 3.0)),
            make_peer(3, (-1.0, -2.0)),
        ]
        children = select_zone_children(reference, neighbours, initial_zone(2))
        assert len(children) == 2  # (+,+) region and (-,-) region
        chosen_ids = {info.peer_id for info, _ in children}
        assert 3 in chosen_ids
        assert chosen_ids & {1, 2}

    def test_median_pick_matches_paper_rule(self):
        reference = make_peer(0, (0.0, 0.0))
        # All in the same quadrant with L1 distances 2, 4, 6.
        neighbours = [
            make_peer(1, (1.0, 1.0)),
            make_peer(2, (2.0, 2.0)),
            make_peer(3, (3.0, 3.0)),
        ]
        children = select_zone_children(reference, neighbours, initial_zone(2))
        assert [info.peer_id for info, _ in children] == [2]

    def test_nearest_and_farthest_strategies(self):
        reference = make_peer(0, (0.0, 0.0))
        neighbours = [make_peer(i, (float(i), float(i))) for i in range(1, 4)]
        nearest = select_zone_children(
            reference, neighbours, initial_zone(2), pick_strategy=PickStrategy.NEAREST
        )
        farthest = select_zone_children(
            reference, neighbours, initial_zone(2), pick_strategy=PickStrategy.FARTHEST
        )
        assert [info.peer_id for info, _ in nearest] == [1]
        assert [info.peer_id for info, _ in farthest] == [3]

    def test_random_strategy_is_seed_deterministic(self):
        reference = make_peer(0, (0.0, 0.0))
        neighbours = [make_peer(i, (float(i), float(i))) for i in range(1, 6)]
        first = select_zone_children(
            reference,
            neighbours,
            initial_zone(2),
            pick_strategy=PickStrategy.RANDOM,
            rng=random.Random(3),
        )
        second = select_zone_children(
            reference,
            neighbours,
            initial_zone(2),
            pick_strategy=PickStrategy.RANDOM,
            rng=random.Random(3),
        )
        assert [i.peer_id for i, _ in first] == [i.peer_id for i, _ in second]

    def test_neighbours_outside_the_zone_are_ignored(self):
        reference = make_peer(0, (5.0, 5.0))
        inside = make_peer(1, (6.0, 6.0))
        outside = make_peer(2, (100.0, 100.0))
        zone = HyperRectangle.from_bounds((0.0, 0.0), (10.0, 10.0))
        children = select_zone_children(reference, [inside, outside], zone)
        assert [info.peer_id for info, _ in children] == [1]

    def test_child_zones_are_disjoint_and_exclude_reference(self):
        reference = make_peer(0, (0.0, 0.0))
        neighbours = [
            make_peer(1, (1.0, 1.0)),
            make_peer(2, (-1.0, 2.0)),
            make_peer(3, (2.0, -3.0)),
            make_peer(4, (-2.0, -2.0)),
        ]
        children = select_zone_children(reference, neighbours, initial_zone(2))
        zones = [zone for _, zone in children]
        assert zones_are_disjoint(zones)
        for _, zone in children:
            assert not zone.contains(reference.coordinates)
        for info, zone in children:
            assert zone.contains(info.coordinates)

    def test_unknown_strategy_rejected(self):
        reference = make_peer(0, (0.0, 0.0))
        with pytest.raises(ValueError):
            select_zone_children(reference, [], initial_zone(2), pick_strategy="best")


class TestBuilderOnEquilibriumOverlays:
    @pytest.mark.parametrize("dimension", [2, 3, 4])
    def test_paper_invariants_hold(self, dimension):
        """N-1 messages, no duplicates, full coverage, 2^D children bound."""
        peers = generate_peers(70, dimension, seed=dimension * 11)
        topology = OverlayNetwork.build_equilibrium(peers, EmptyRectangleSelection()).snapshot()
        builder = SpacePartitionTreeBuilder()
        for root in [p.peer_id for p in peers[:8]]:
            result = builder.build(topology, root)
            assert result.messages_sent == len(peers) - 1
            assert result.duplicate_deliveries == 0
            assert result.delivered_everywhere
            assert result.reached_count == len(peers)
            assert result.tree.root == root
            bound = 2**dimension
            assert all(
                len(result.tree.children(node)) <= bound for node in result.tree.nodes()
            )
            assert all(fanout <= bound for fanout in result.region_fanout.values())

    def test_zone_bookkeeping(self, topology_2d):
        result = SpacePartitionTreeBuilder().build(topology_2d, root=0)
        assert set(result.zones) == set(result.tree.nodes())
        for node in result.tree.nodes():
            assert result.zones[node].contains(topology_2d.peers[node].coordinates)
        # A child's zone is always contained in its parent's zone.
        for node in result.tree.nodes():
            parent = result.tree.parent(node)
            if parent is None:
                continue
            child_rect = result.zones[node]
            parent_rect = result.zones[parent]
            assert child_rect.intersect(parent_rect) == child_rect

    def test_longest_path_metric_matches_tree_height(self, topology_2d):
        result = SpacePartitionTreeBuilder().build(topology_2d, root=0)
        assert result.longest_root_to_leaf_path == result.tree.height()

    def test_scoped_multicast_reaches_only_the_zone(self, topology_2d):
        root = 0
        root_coords = topology_2d.peers[root].coordinates
        scope = HyperRectangle.from_bounds(
            (root_coords[0] - 400.0, root_coords[1] - 400.0),
            (root_coords[0] + 400.0, root_coords[1] + 400.0),
        )
        result = SpacePartitionTreeBuilder().build(topology_2d, root, scope=scope)
        in_scope = {
            peer_id
            for peer_id, info in topology_2d.peers.items()
            if scope.contains(info.coordinates)
        }
        assert set(result.tree.nodes()) <= in_scope
        for node in result.tree.nodes():
            assert scope.contains(topology_2d.peers[node].coordinates)

    def test_unknown_root_rejected(self, topology_2d):
        with pytest.raises(KeyError):
            SpacePartitionTreeBuilder().build(topology_2d, root=99_999)

    def test_scope_must_contain_root(self, topology_2d):
        scope = HyperRectangle.from_bounds((-10.0, -10.0), (-5.0, -5.0))
        with pytest.raises(ValueError):
            SpacePartitionTreeBuilder().build(topology_2d, root=0, scope=scope)

    def test_build_from_every_root(self, topology_2d):
        builder = SpacePartitionTreeBuilder()
        results = builder.build_from_every_root(topology_2d, roots=[0, 1, 2])
        assert set(results) == {0, 1, 2}
        assert all(result.delivered_everywhere for result in results.values())

    def test_convenience_wrapper(self, topology_2d):
        result = build_space_partition_tree(topology_2d, root=3)
        assert result.tree.root == 3
        assert result.messages_sent == topology_2d.peer_count - 1

    def test_invalid_strategy_in_builder(self):
        with pytest.raises(ValueError):
            SpacePartitionTreeBuilder(pick_strategy="unknown")


class TestDegradedOverlays:
    def test_unreached_peers_are_reported_when_the_overlay_is_too_sparse(self):
        """A star overlay cannot cover orthants the hub has no neighbour in."""
        peers = [
            make_peer(0, (0.0, 0.0)),
            make_peer(1, (1.0, 1.0)),
            make_peer(2, (2.0, 2.0)),
            make_peer(3, (-1.0, -1.0)),
        ]
        # Hand-built pathological topology: 2 is only connected to 1.
        from repro.overlay.topology import TopologySnapshot

        topology = TopologySnapshot.from_directed(
            {p.peer_id: p for p in peers},
            {0: {1, 3}, 1: set(), 2: {1}, 3: set()},
        )
        result = SpacePartitionTreeBuilder().build(topology, root=0)
        # Peer 2 is in the same orthant as peer 1 (seen from 0), so it can
        # only be reached through 1; the link exists, so everyone is reached.
        assert result.delivered_everywhere

        topology_missing_link = TopologySnapshot.from_directed(
            {p.peer_id: p for p in peers},
            {0: {1, 3}, 1: set(), 2: set(), 3: set()},
        )
        degraded = SpacePartitionTreeBuilder().build(topology_missing_link, root=0)
        assert degraded.unreached_peers == {2}
        assert not degraded.delivered_everywhere
        assert degraded.messages_sent < len(peers) - 1 + 1
