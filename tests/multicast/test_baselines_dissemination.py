"""Unit tests for the baselines and the dissemination / churn analysis."""

import random

import pytest

from repro.multicast.baselines import (
    bfs_tree,
    flood_multicast,
    random_parent_tree,
    random_spanning_tree,
    sequential_unicast_tree,
)
from repro.multicast.dissemination import disseminate, simulate_departures
from repro.multicast.space_partition import SpacePartitionTreeBuilder
from repro.multicast.stability import StabilityTreeBuilder, peer_lifetime
from repro.multicast.tree import MulticastTree


class TestFlooding:
    def test_reaches_everyone_with_many_messages(self, topology_2d):
        result = flood_multicast(topology_2d, root=0)
        assert result.reached == set(topology_2d.peers)
        # Flooding pays roughly one message per directed edge; always more
        # than the N - 1 of the space-partitioning construction on any
        # overlay with more edges than a tree.
        assert result.messages_sent > topology_2d.peer_count - 1
        assert result.messages_sent + 0 >= 2 * topology_2d.edge_count() - (
            topology_2d.peer_count - 1
        )
        assert result.duplicate_deliveries == result.messages_sent - (
            topology_2d.peer_count - 1
        )

    def test_space_partition_sends_fewer_messages_than_flooding(self, topology_2d):
        flood = flood_multicast(topology_2d, root=0)
        construction = SpacePartitionTreeBuilder().build(topology_2d, root=0)
        assert construction.messages_sent < flood.messages_sent

    def test_unknown_root(self, topology_2d):
        with pytest.raises(KeyError):
            flood_multicast(topology_2d, root=12345)


class TestTreeBaselines:
    def test_bfs_tree_is_a_shortest_path_tree(self, topology_2d):
        tree = bfs_tree(topology_2d, root=0)
        assert tree.size == topology_2d.peer_count
        # BFS depth is minimal: no other spanning tree can have smaller height.
        sp_tree = SpacePartitionTreeBuilder().build(topology_2d, root=0).tree
        assert tree.height() <= sp_tree.height()

    def test_random_spanning_tree_spans_and_is_seed_deterministic(self, topology_2d):
        a = random_spanning_tree(topology_2d, root=0, rng=random.Random(5))
        b = random_spanning_tree(topology_2d, root=0, rng=random.Random(5))
        assert a.size == topology_2d.peer_count
        assert a.parent_map() == b.parent_map()

    def test_random_spanning_tree_edges_are_overlay_edges(self, topology_2d):
        tree = random_spanning_tree(topology_2d, root=0, rng=random.Random(1))
        for parent, child in tree.edges():
            assert child in topology_2d.adjacency[parent]

    def test_sequential_unicast_is_a_star(self, topology_2d):
        tree = sequential_unicast_tree(topology_2d, root=0)
        assert tree.height() == 1
        assert tree.maximum_degree() == topology_2d.peer_count - 1

    def test_random_parent_links_cover_every_peer(self, topology_2d):
        links = random_parent_tree(topology_2d, rng=random.Random(2))
        assert set(links) == set(topology_2d.peers)
        for peer_id, parent in links.items():
            if parent is not None:
                assert parent in topology_2d.adjacency[peer_id]

    def test_unknown_roots(self, topology_2d):
        for factory in (bfs_tree, sequential_unicast_tree):
            with pytest.raises(KeyError):
                factory(topology_2d, 99999)
        with pytest.raises(KeyError):
            random_spanning_tree(topology_2d, 99999)


class TestDissemination:
    def test_costs_match_tree_shape(self):
        tree = MulticastTree(0, {0: None, 1: 0, 2: 0, 3: 1})
        report = disseminate(tree)
        assert report.messages_sent == 3
        assert report.delivered_peers == 4
        assert report.max_hops == 2
        assert report.average_hops == pytest.approx((1 + 1 + 2) / 3)
        assert report.delivery_ratio == 1.0

    def test_single_node_tree(self):
        report = disseminate(MulticastTree.single_node(4))
        assert report.messages_sent == 0
        assert report.max_hops == 0
        assert report.delivery_ratio == 1.0


class TestDepartureSimulation:
    def test_stability_tree_never_disconnects_under_lifetime_order(self, lifetime_topology):
        tree = StabilityTreeBuilder().build(lifetime_topology).to_multicast_tree()
        lifetimes = {pid: peer_lifetime(lifetime_topology, pid) for pid in lifetime_topology.peers}
        order = sorted(lifetimes, key=lifetimes.get)
        report = simulate_departures(tree, order)
        assert report.is_stable
        assert report.non_leaf_departures == 0
        assert report.orphaned_peer_events == 0
        assert report.departures == len(order)

    def test_lifetime_oblivious_tree_disconnects(self, lifetime_topology):
        lifetimes = {pid: peer_lifetime(lifetime_topology, pid) for pid in lifetime_topology.peers}
        order = sorted(lifetimes, key=lifetimes.get)
        # Root the BFS tree at the shortest-lived peer: it departs first and
        # still has children, so at least one disconnection must occur.
        tree = bfs_tree(lifetime_topology, root=order[0])
        report = simulate_departures(tree, order, stop_at_root=False)
        assert not report.is_stable
        assert report.non_leaf_departures >= 1
        assert report.orphaned_peer_events >= 1
        assert order[0] in report.disconnecting_peers

    def test_departures_of_unknown_peers_are_ignored(self):
        tree = MulticastTree(0, {0: None, 1: 0})
        report = simulate_departures(tree, [42, 1, 0])
        assert report.departures == 2
        assert report.is_stable

    def test_stop_at_root(self):
        tree = MulticastTree(0, {0: None, 1: 0, 2: 1})
        stopped = simulate_departures(tree, [0, 2, 1], stop_at_root=True)
        full = simulate_departures(tree, [0, 2, 1], stop_at_root=False)
        assert stopped.departures == 1
        assert full.departures == 3
        assert not stopped.is_stable  # the root left while it had children
