"""Unit and integration tests for the Section 3 stability construction."""

import pytest

from repro.multicast.stability import (
    PreferredNeighbourForest,
    StabilityTreeBuilder,
    build_stability_tree,
    peer_lifetime,
)
from repro.multicast.tree import TreeValidationError
from repro.overlay.network import OverlayNetwork
from repro.overlay.peer import make_peer
from repro.overlay.selection.orthogonal import OrthogonalHyperplanesSelection
from repro.overlay.topology import TopologySnapshot
from repro.workloads.peers import generate_peers_with_lifetimes


def hand_topology():
    """Four peers on a path, lifetimes 10 < 20 < 30 < 40."""
    peers = {
        0: make_peer(0, (10.0, 0.0), lifetime=10.0),
        1: make_peer(1, (20.0, 1.0), lifetime=20.0),
        2: make_peer(2, (30.0, 2.0), lifetime=30.0),
        3: make_peer(3, (40.0, 3.0), lifetime=40.0),
    }
    directed = {0: {1}, 1: {2}, 2: {3}, 3: set()}
    return TopologySnapshot.from_directed(peers, directed)


class TestPeerLifetime:
    def test_explicit_lifetime_wins(self):
        topology = hand_topology()
        assert peer_lifetime(topology, 0) == 10.0

    def test_falls_back_to_first_coordinate(self):
        peers = {0: make_peer(0, (55.0, 1.0))}
        topology = TopologySnapshot.from_directed(peers, {0: set()})
        assert peer_lifetime(topology, 0) == 55.0


class TestHandBuiltTopology:
    def test_chain_forms_a_tree_ordered_by_lifetime(self):
        forest = StabilityTreeBuilder().build(hand_topology())
        assert forest.preferred == {0: 1, 1: 2, 2: 3, 3: None}
        assert forest.is_single_tree()
        assert forest.root_has_largest_lifetime()
        assert forest.parents_outlive_children()
        assert forest.lifetime_violations() == []
        tree = forest.to_multicast_tree()
        assert tree.root == 3
        assert tree.height() == 3

    def test_smallest_above_tie_break(self):
        peers = {
            0: make_peer(0, (10.0, 0.0), lifetime=10.0),
            1: make_peer(1, (20.0, 1.0), lifetime=20.0),
            2: make_peer(2, (30.0, 2.0), lifetime=30.0),
        }
        # Peer 0 sees both 1 and 2.
        topology = TopologySnapshot.from_directed(peers, {0: {1, 2}, 1: {2}, 2: set()})
        largest = StabilityTreeBuilder(
            tie_break=StabilityTreeBuilder.LARGEST_LIFETIME
        ).build(topology)
        smallest = StabilityTreeBuilder(
            tie_break=StabilityTreeBuilder.SMALLEST_ABOVE
        ).build(topology)
        assert largest.preferred[0] == 2
        assert smallest.preferred[0] == 1

    def test_closest_tie_break(self):
        peers = {
            0: make_peer(0, (10.0, 0.0), lifetime=10.0),
            1: make_peer(1, (20.0, 0.5), lifetime=20.0),
            2: make_peer(2, (30.0, 50.0), lifetime=30.0),
        }
        topology = TopologySnapshot.from_directed(peers, {0: {1, 2}, 1: {2}, 2: set()})
        closest = StabilityTreeBuilder(tie_break=StabilityTreeBuilder.CLOSEST).build(topology)
        assert closest.preferred[0] == 1

    def test_unknown_tie_break_rejected(self):
        with pytest.raises(ValueError):
            StabilityTreeBuilder(tie_break="oldest")

    def test_duplicate_lifetimes_rejected(self):
        peers = {
            0: make_peer(0, (10.0, 0.0), lifetime=10.0),
            1: make_peer(1, (10.0, 1.0), lifetime=10.0),
        }
        topology = TopologySnapshot.from_directed(peers, {0: {1}, 1: set()})
        with pytest.raises(ValueError, match="distinct"):
            StabilityTreeBuilder().build(topology)

    def test_disconnected_lifetime_order_gives_a_forest(self):
        """Two isolated components produce two roots, not a single tree."""
        peers = {
            0: make_peer(0, (10.0, 0.0), lifetime=10.0),
            1: make_peer(1, (20.0, 1.0), lifetime=20.0),
            2: make_peer(2, (30.0, 2.0), lifetime=30.0),
            3: make_peer(3, (40.0, 3.0), lifetime=40.0),
        }
        directed = {0: {1}, 1: set(), 2: {3}, 3: set()}
        topology = TopologySnapshot.from_directed(peers, directed)
        forest = StabilityTreeBuilder().build(topology)
        assert forest.roots() == [1, 3]
        assert not forest.is_single_tree()
        with pytest.raises(TreeValidationError):
            forest.to_multicast_tree()
        # The longest-lived peer is still a root.
        assert forest.root_has_largest_lifetime()


class TestOnOrthogonalOverlays:
    @pytest.mark.parametrize("dimension", [2, 3, 5])
    @pytest.mark.parametrize("k", [1, 2, 5])
    def test_paper_invariants_hold(self, dimension, k):
        peers = generate_peers_with_lifetimes(60, dimension, seed=dimension * 10 + k)
        topology = OverlayNetwork.build_equilibrium(
            peers, OrthogonalHyperplanesSelection(k=k)
        ).snapshot()
        forest = StabilityTreeBuilder().build(topology)
        assert forest.is_single_tree()
        assert forest.root_has_largest_lifetime()
        assert forest.parents_outlive_children()
        tree = forest.to_multicast_tree()
        lifetimes = {pid: peer_lifetime(topology, pid) for pid in topology.peers}
        root = max(lifetimes, key=lifetimes.get)
        assert tree.root == root
        for node in tree.nodes():
            parent = tree.parent(node)
            if parent is not None:
                assert lifetimes[parent] > lifetimes[node]

    def test_convenience_wrapper(self, lifetime_topology):
        tree = build_stability_tree(lifetime_topology)
        assert tree.size == lifetime_topology.peer_count

    def test_forest_peer_count(self, lifetime_topology):
        forest = StabilityTreeBuilder().build(lifetime_topology)
        assert forest.peer_count == lifetime_topology.peer_count


class TestEmptyForest:
    def test_empty_forest_is_trivially_valid(self):
        forest = PreferredNeighbourForest(preferred={}, lifetimes={})
        assert forest.is_single_tree()
        assert forest.root_has_largest_lifetime()
        assert forest.parents_outlive_children()
        assert forest.roots() == []
