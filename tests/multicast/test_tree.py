"""Unit tests for repro.multicast.tree."""

import pytest

from repro.multicast.tree import MulticastTree, TreeValidationError


@pytest.fixture()
def sample_tree():
    #        0
    #      / | \
    #     1  2  3
    #    /|     |
    #   4 5     6
    #   |
    #   7
    return MulticastTree(
        0,
        {0: None, 1: 0, 2: 0, 3: 0, 4: 1, 5: 1, 6: 3, 7: 4},
    )


class TestConstruction:
    def test_single_node(self):
        tree = MulticastTree.single_node(9)
        assert tree.root == 9
        assert tree.size == 1
        assert tree.height() == 0
        assert tree.leaves() == [9]
        assert tree.message_count() == 0

    def test_from_edges(self):
        tree = MulticastTree.from_edges(0, [(0, 1), (1, 2), (0, 3)])
        assert tree.parent(2) == 1
        assert tree.children(0) == (1, 3)
        assert tree.size == 4

    def test_root_must_be_present_and_parentless(self):
        with pytest.raises(TreeValidationError):
            MulticastTree(0, {1: None})
        with pytest.raises(TreeValidationError):
            MulticastTree(0, {0: 1, 1: None})

    def test_cycles_are_rejected(self):
        with pytest.raises(TreeValidationError, match="not reachable"):
            MulticastTree(0, {0: None, 1: 2, 2: 1})

    def test_unknown_parent_rejected(self):
        with pytest.raises(TreeValidationError):
            MulticastTree(0, {0: None, 1: 42})

    def test_two_parents_rejected_in_from_edges(self):
        with pytest.raises(TreeValidationError):
            MulticastTree.from_edges(0, [(0, 1), (2, 1)])

    def test_root_as_child_rejected(self):
        with pytest.raises(TreeValidationError):
            MulticastTree.from_edges(0, [(1, 0)])

    def test_non_root_without_parent_rejected(self):
        with pytest.raises(TreeValidationError):
            MulticastTree(0, {0: None, 1: None})


class TestStructure:
    def test_parent_child_relations(self, sample_tree):
        assert sample_tree.parent(0) is None
        assert sample_tree.parent(7) == 4
        assert sample_tree.children(1) == (4, 5)
        assert sample_tree.children(7) == ()

    def test_nodes_edges_and_membership(self, sample_tree):
        assert sample_tree.nodes() == list(range(8))
        assert (1, 4) in sample_tree.edges()
        assert len(sample_tree.edges()) == 7
        assert 5 in sample_tree
        assert 99 not in sample_tree
        assert len(sample_tree) == 8

    def test_leaves(self, sample_tree):
        assert sample_tree.leaves() == [2, 5, 6, 7]
        assert sample_tree.is_leaf(2)
        assert not sample_tree.is_leaf(1)

    def test_subtree_nodes(self, sample_tree):
        assert sample_tree.subtree_nodes(1) == {1, 4, 5, 7}
        assert sample_tree.subtree_nodes(7) == {7}
        assert sample_tree.subtree_nodes(0) == set(range(8))

    def test_path_to_root(self, sample_tree):
        assert sample_tree.path_to_root(7) == [7, 4, 1, 0]
        assert sample_tree.path_to_root(0) == [0]

    def test_parent_map_is_a_copy(self, sample_tree):
        mapping = sample_tree.parent_map()
        mapping[7] = 0
        assert sample_tree.parent(7) == 4


class TestMetrics:
    def test_depths_and_height(self, sample_tree):
        assert sample_tree.depth(0) == 0
        assert sample_tree.depth(7) == 3
        assert sample_tree.height() == 3
        assert sample_tree.depths()[6] == 2

    def test_degree(self, sample_tree):
        assert sample_tree.degree(0) == 3  # root: children only
        assert sample_tree.degree(1) == 3  # two children + parent
        assert sample_tree.degree(7) == 1  # leaf: parent only
        assert sample_tree.maximum_degree() == 3
        assert sample_tree.average_degree() == pytest.approx(14 / 8)

    def test_diameter(self, sample_tree):
        # Longest path: 7 - 4 - 1 - 0 - 3 - 6 -> 5 edges.
        assert sample_tree.diameter() == 5

    def test_diameter_trivial_cases(self):
        assert MulticastTree.single_node(0).diameter() == 0
        two = MulticastTree(0, {0: None, 1: 0})
        assert two.diameter() == 1

    def test_message_count(self, sample_tree):
        assert sample_tree.message_count() == 7

    def test_star_and_chain_extremes(self):
        star = MulticastTree(0, {0: None, **{i: 0 for i in range(1, 11)}})
        chain = MulticastTree(0, {0: None, **{i: i - 1 for i in range(1, 11)}})
        assert star.height() == 1 and star.diameter() == 2 and star.maximum_degree() == 10
        assert chain.height() == 10 and chain.diameter() == 10 and chain.maximum_degree() == 2

    def test_to_networkx(self, sample_tree):
        graph = sample_tree.to_networkx()
        assert graph.number_of_nodes() == 8
        assert graph.number_of_edges() == 7
        assert graph.has_edge(1, 4)
        assert not graph.has_edge(4, 1)  # directed parent -> child
