"""Property-based tests (hypothesis) for the two multicast constructions.

These are the paper's headline claims, checked on randomly generated
populations rather than fixed fixtures:

* Section 2: the construction reaches every peer exactly once with ``N - 1``
  messages, per-peer fanout is bounded by ``2^D``, and the responsibility
  zones handed to the children of any peer are disjoint, exclude the peer and
  lie inside its own zone.
* Section 3: the preferred-neighbour links always form a single tree rooted
  at the longest-lived peer with lifetimes decreasing towards the leaves, and
  replaying departures in lifetime order never disconnects the tree.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.multicast.dissemination import simulate_departures
from repro.multicast.space_partition import SpacePartitionTreeBuilder
from repro.multicast.stability import StabilityTreeBuilder, peer_lifetime
from repro.multicast.zones import zones_are_disjoint
from repro.overlay.network import OverlayNetwork
from repro.overlay.selection.empty_rectangle import EmptyRectangleSelection
from repro.overlay.selection.orthogonal import OrthogonalHyperplanesSelection
from repro.workloads.peers import generate_peers, generate_peers_with_lifetimes

population = st.tuples(
    st.integers(min_value=2, max_value=40),   # peer count
    st.integers(min_value=2, max_value=4),    # dimension
    st.integers(min_value=0, max_value=10_000),  # seed
)

stability_population = st.tuples(
    st.integers(min_value=2, max_value=40),
    st.integers(min_value=2, max_value=5),
    st.integers(min_value=1, max_value=4),    # K
    st.integers(min_value=0, max_value=10_000),
)

relaxed = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@given(population)
@relaxed
def test_space_partition_reaches_everyone_with_n_minus_1_messages(params):
    count, dimension, seed = params
    peers = generate_peers(count, dimension, seed=seed)
    topology = OverlayNetwork.build_equilibrium(peers, EmptyRectangleSelection()).snapshot()
    root = peers[seed % count].peer_id
    result = SpacePartitionTreeBuilder().build(topology, root)
    assert result.messages_sent == count - 1
    assert result.duplicate_deliveries == 0
    assert result.delivered_everywhere
    assert result.reached_count == count


@given(population)
@relaxed
def test_space_partition_fanout_and_zone_invariants(params):
    count, dimension, seed = params
    peers = generate_peers(count, dimension, seed=seed)
    topology = OverlayNetwork.build_equilibrium(peers, EmptyRectangleSelection()).snapshot()
    root = peers[0].peer_id
    result = SpacePartitionTreeBuilder().build(topology, root)
    bound = 2**dimension
    tree = result.tree
    for node in tree.nodes():
        children = tree.children(node)
        assert len(children) <= bound
        child_zones = [result.zones[child] for child in children]
        assert zones_are_disjoint(child_zones)
        node_coordinates = topology.peers[node].coordinates
        for child, zone in zip(children, child_zones):
            assert zone.contains(topology.peers[child].coordinates)
            assert not zone.contains(node_coordinates)
            assert zone.intersect(result.zones[node]) == zone


@given(stability_population)
@relaxed
def test_stability_tree_invariants(params):
    count, dimension, k, seed = params
    peers = generate_peers_with_lifetimes(count, dimension, seed=seed)
    topology = OverlayNetwork.build_equilibrium(
        peers, OrthogonalHyperplanesSelection(k=k)
    ).snapshot()
    forest = StabilityTreeBuilder().build(topology)
    assert forest.is_single_tree()
    assert forest.root_has_largest_lifetime()
    assert forest.parents_outlive_children()

    tree = forest.to_multicast_tree()
    lifetimes = {pid: peer_lifetime(topology, pid) for pid in topology.peers}
    departure_order = sorted(lifetimes, key=lifetimes.get)
    report = simulate_departures(tree, departure_order)
    assert report.is_stable


@given(stability_population)
@relaxed
def test_stability_tree_degree_is_bounded_by_overlay_degree(params):
    """A peer's tree degree cannot exceed its overlay degree plus one."""
    count, dimension, k, seed = params
    peers = generate_peers_with_lifetimes(count, dimension, seed=seed)
    topology = OverlayNetwork.build_equilibrium(
        peers, OrthogonalHyperplanesSelection(k=k)
    ).snapshot()
    tree = StabilityTreeBuilder().build(topology).to_multicast_tree()
    for node in tree.nodes():
        assert tree.degree(node) <= topology.degree(node) + 1
