"""Unit tests for repro.multicast.zones."""

import pytest

from repro.geometry.rectangle import HyperRectangle
from repro.multicast.zones import (
    child_zone,
    initial_zone,
    uncovered_points,
    zone_excludes,
    zones_are_disjoint,
)


class TestInitialZone:
    def test_is_the_whole_space(self):
        zone = initial_zone(3)
        assert zone.dimension == 3
        assert zone.contains((1e9, -1e9, 0.0))


class TestChildZone:
    def test_child_zone_contains_child_and_excludes_parent(self):
        parent_zone = initial_zone(2)
        parent = (5.0, 5.0)
        child = (7.0, 3.0)
        zone = child_zone(parent_zone, parent, child)
        assert zone.contains(child)
        assert zone_excludes(zone, parent)

    def test_child_zone_is_inside_parent_zone(self):
        parent_zone = HyperRectangle.from_bounds((0.0, 0.0), (10.0, 10.0))
        zone = child_zone(parent_zone, (5.0, 5.0), (7.0, 7.0))
        assert zone.contains((8.0, 8.0))
        assert not zone.contains((11.0, 11.0))  # outside the parent zone
        assert not zone.contains((4.0, 8.0))  # wrong orthant

    def test_sibling_zones_are_disjoint(self):
        parent_zone = initial_zone(2)
        parent = (0.0, 0.0)
        children = [(1.0, 1.0), (-2.0, 3.0), (4.0, -1.0), (-1.0, -1.0)]
        zones = [child_zone(parent_zone, parent, c) for c in children]
        assert zones_are_disjoint(zones)
        for child, zone in zip(children, zones):
            assert zone.contains(child)

    def test_same_orthant_children_share_a_zone_region(self):
        parent_zone = initial_zone(2)
        parent = (0.0, 0.0)
        a = child_zone(parent_zone, parent, (1.0, 1.0))
        b = child_zone(parent_zone, parent, (3.0, 2.0))
        assert a == b  # same region relative to the parent


class TestDisjointness:
    def test_overlapping_zones_detected(self):
        a = HyperRectangle.from_bounds((0.0, 0.0), (2.0, 2.0))
        b = HyperRectangle.from_bounds((1.0, 1.0), (3.0, 3.0))
        c = HyperRectangle.from_bounds((5.0, 5.0), (6.0, 6.0))
        assert not zones_are_disjoint([a, b])
        assert zones_are_disjoint([a, c])
        assert zones_are_disjoint([])
        assert zones_are_disjoint([a])


class TestCoverage:
    def test_uncovered_points(self):
        zones = [
            HyperRectangle.from_bounds((0.0, 0.0), (1.0, 1.0)),
            HyperRectangle.from_bounds((2.0, 2.0), (3.0, 3.0)),
        ]
        points = {
            0: (0.5, 0.5),
            1: (2.5, 2.5),
            2: (1.5, 1.5),
            3: (9.0, 9.0),
        }
        assert uncovered_points(zones, points) == [2, 3]

    def test_everything_covered(self):
        zones = [initial_zone(2)]
        points = {0: (1.0, 1.0), 1: (-5.0, 3.0)}
        assert uncovered_points(zones, points) == []
