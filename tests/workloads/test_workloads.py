"""Unit tests for the workload generators."""

import random

import pytest

from repro.workloads.churn import (
    ChurnEvent,
    departure_schedule,
    interleaved_join_leave_schedule,
    poisson_churn_schedule,
)
from repro.workloads.coordinates import (
    clustered_coordinates,
    distinct_uniform_coordinates,
    grid_coordinates,
)
from repro.workloads.lifetimes import battery_lifetimes, lease_lifetimes, uniform_lifetimes
from repro.workloads.peers import generate_peers, generate_peers_with_lifetimes


def assert_distinct_per_axis(points):
    if not points:
        return
    dimension = points[0].dimension
    for axis in range(dimension):
        values = [p[axis] for p in points]
        assert len(set(values)) == len(values)


class TestCoordinateGenerators:
    @pytest.mark.parametrize("count,dimension", [(0, 2), (1, 3), (50, 2), (30, 5)])
    def test_uniform_coordinates_shape_and_distinctness(self, count, dimension):
        points = distinct_uniform_coordinates(count, dimension, seed=1)
        assert len(points) == count
        assert all(p.dimension == dimension for p in points)
        assert_distinct_per_axis(points)

    def test_uniform_coordinates_respect_vmax(self):
        points = distinct_uniform_coordinates(100, 3, vmax=10.0, seed=2)
        assert all(0.0 <= value <= 10.0 for p in points for value in p)

    def test_same_seed_same_points(self):
        a = distinct_uniform_coordinates(20, 2, seed=5)
        b = distinct_uniform_coordinates(20, 2, seed=5)
        c = distinct_uniform_coordinates(20, 2, seed=6)
        assert a == b
        assert a != c

    def test_seed_and_rng_are_mutually_exclusive(self):
        with pytest.raises(ValueError):
            distinct_uniform_coordinates(5, 2, seed=1, rng=random.Random(1))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            distinct_uniform_coordinates(-1, 2)
        with pytest.raises(ValueError):
            distinct_uniform_coordinates(5, 0)
        with pytest.raises(ValueError):
            distinct_uniform_coordinates(5, 2, vmax=0.0)

    def test_clustered_coordinates(self):
        points = clustered_coordinates(80, 2, clusters=3, seed=4)
        assert len(points) == 80
        assert_distinct_per_axis(points)
        assert all(0.0 <= value <= 1000.0 for p in points for value in p)

    def test_clustered_parameters_validated(self):
        with pytest.raises(ValueError):
            clustered_coordinates(10, 2, clusters=0)
        with pytest.raises(ValueError):
            clustered_coordinates(10, 2, spread=0.0)

    def test_grid_coordinates(self):
        points = grid_coordinates(4, 2, seed=1)
        assert len(points) == 16
        assert_distinct_per_axis(points)

    def test_grid_side_validated(self):
        with pytest.raises(ValueError):
            grid_coordinates(0, 2)


class TestLifetimeGenerators:
    def test_uniform_lifetimes_are_distinct_and_in_range(self):
        lifetimes = uniform_lifetimes(200, horizon=50.0, seed=1)
        assert len(set(lifetimes)) == 200
        assert all(0.0 <= value <= 51.0 for value in lifetimes)

    def test_lease_lifetimes_use_the_given_durations(self):
        lifetimes = lease_lifetimes(50, lease_durations=[10.0], start_horizon=1.0, seed=2)
        assert all(10.0 <= value <= 11.1 for value in lifetimes)
        assert len(set(lifetimes)) == 50

    def test_battery_lifetimes_are_positive(self):
        lifetimes = battery_lifetimes(100, mean=20.0, seed=3)
        assert all(value > 0 for value in lifetimes)
        assert len(set(lifetimes)) == 100

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            uniform_lifetimes(5, horizon=0.0)
        with pytest.raises(ValueError):
            lease_lifetimes(5, lease_durations=[])
        with pytest.raises(ValueError):
            battery_lifetimes(5, mean=-1.0)


class TestChurnSchedules:
    def test_departure_schedule_is_sorted_by_lifetime(self):
        events = departure_schedule([5.0, 1.0, 3.0])
        assert [e.peer_id for e in events] == [1, 2, 0]
        assert all(e.kind == "leave" for e in events)

    def test_poisson_schedule_joins_precede_leaves(self):
        events = poisson_churn_schedule(30, seed=1)
        assert len(events) == 60
        first_event = {}
        for event in events:
            first_event.setdefault(event.peer_id, event.kind)
        assert all(kind == "join" for kind in first_event.values())

    def test_churn_event_validation(self):
        with pytest.raises(ValueError):
            ChurnEvent(time=1.0, peer_id=0, kind="reboot")
        with pytest.raises(ValueError):
            ChurnEvent(time=-1.0, peer_id=0, kind="join")

    def test_move_events_carry_coordinates(self):
        move = ChurnEvent(time=1.0, peer_id=3, kind="move", coordinates=[2.0, 4.0])
        assert move.coordinates == (2.0, 4.0)  # coerced to a tuple
        with pytest.raises(ValueError):
            ChurnEvent(time=1.0, peer_id=3, kind="move")
        with pytest.raises(ValueError):
            ChurnEvent(time=1.0, peer_id=3, kind="join", coordinates=(2.0, 4.0))
        with pytest.raises(ValueError):
            ChurnEvent(time=1.0, peer_id=3, kind="leave", coordinates=(2.0, 4.0))

    def test_mixed_kind_events_stay_sortable(self):
        events = [
            ChurnEvent(time=2.0, peer_id=0, kind="leave"),
            ChurnEvent(time=1.0, peer_id=1, kind="move", coordinates=(0.5, 0.5)),
            ChurnEvent(time=1.0, peer_id=0, kind="join"),
        ]
        # Coordinates are excluded from the ordering, so sorting a mixed
        # list never compares a tuple against None.
        assert [e.time for e in sorted(events)] == [1.0, 1.0, 2.0]

    def test_poisson_parameters_validated(self):
        with pytest.raises(ValueError):
            poisson_churn_schedule(5, arrival_rate=0.0)
        with pytest.raises(ValueError):
            poisson_churn_schedule(5, session_mean=0.0)

    def test_interleaved_schedule_joins_everyone_on_the_paper_cadence(self):
        events = interleaved_join_leave_schedule(10, join_interval=2.0, seed=3)
        joins = {e.peer_id: e.time for e in events if e.kind == "join"}
        assert joins == {i: i * 2.0 for i in range(10)}

    def test_interleaved_schedule_leaves_are_sampled_after_a_holdoff(self):
        events = interleaved_join_leave_schedule(
            20, join_interval=1.0, leave_fraction=0.3, holdoff=5.0, seed=7
        )
        joins = {e.peer_id: e.time for e in events if e.kind == "join"}
        leaves = {e.peer_id: e.time for e in events if e.kind == "leave"}
        assert len(leaves) == int(19 * 0.3)
        # The last joiner stays, so a bootstrap contact always exists.
        assert 19 not in leaves
        for peer_id, departure in leaves.items():
            assert departure >= joins[peer_id] + 5.0

    def test_interleaved_schedule_is_seed_deterministic(self):
        first = interleaved_join_leave_schedule(15, leave_fraction=0.4, seed=5)
        second = interleaved_join_leave_schedule(15, leave_fraction=0.4, seed=5)
        assert first == second

    def test_default_seed_is_explicit_and_deterministic(self):
        # The unseeded default is an explicit seed=0, not hidden state.
        assert poisson_churn_schedule(20) == poisson_churn_schedule(20, seed=0)
        assert interleaved_join_leave_schedule(20) == interleaved_join_leave_schedule(
            20, seed=0
        )

    def test_seed_none_is_honoured_as_nondeterministic(self):
        assert poisson_churn_schedule(20, seed=None) != poisson_churn_schedule(
            20, seed=None
        )
        assert interleaved_join_leave_schedule(
            20, leave_fraction=0.4, seed=None
        ) != interleaved_join_leave_schedule(20, leave_fraction=0.4, seed=None)

    def test_interleaved_parameters_validated(self):
        with pytest.raises(ValueError):
            interleaved_join_leave_schedule(0)
        with pytest.raises(ValueError):
            interleaved_join_leave_schedule(5, join_interval=0.0)
        with pytest.raises(ValueError):
            interleaved_join_leave_schedule(5, leave_fraction=1.0)
        with pytest.raises(ValueError):
            interleaved_join_leave_schedule(5, holdoff=-1.0)
        with pytest.raises(ValueError):
            interleaved_join_leave_schedule(5, seed=1, rng=random.Random(2))


class TestPeerPopulations:
    def test_generate_peers(self):
        peers = generate_peers(25, 3, seed=1)
        assert len(peers) == 25
        assert all(p.dimension == 3 for p in peers)
        assert all(p.lifetime is None for p in peers)
        assert len({p.peer_id for p in peers}) == 25

    def test_generate_peers_with_lifetimes_embeds_the_first_coordinate(self):
        peers = generate_peers_with_lifetimes(25, 3, seed=1)
        for peer in peers:
            assert peer.lifetime is not None
            assert peer.coordinates[0] == pytest.approx(peer.lifetime)
        lifetimes = [p.lifetime for p in peers]
        assert len(set(lifetimes)) == len(lifetimes)

    def test_one_dimensional_lifetime_population(self):
        peers = generate_peers_with_lifetimes(10, 1, seed=2)
        assert all(p.dimension == 1 for p in peers)
        assert all(p.coordinates[0] == p.lifetime for p in peers)

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            generate_peers_with_lifetimes(10, 0)
