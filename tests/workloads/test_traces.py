"""Churn traces: batch structure, schedule interoperability and scenarios."""

import random

import pytest

from repro.workloads.churn import ChurnEvent, poisson_churn_schedule
from repro.workloads.peers import generate_peers_with_lifetimes
from repro.workloads.traces import (
    ChurnTrace,
    EventBatch,
    diurnal_trace,
    flash_crowd_trace,
    mass_departure_trace,
    poisson_trace,
)


class TestTraceStructure:
    def test_batches_must_not_be_empty(self):
        with pytest.raises(ValueError):
            EventBatch(time=0.0, events=())

    def test_batch_time_must_be_non_negative(self):
        with pytest.raises(ValueError):
            EventBatch(
                time=-1.0, events=(ChurnEvent(time=0.0, peer_id=0, kind="join"),)
            )

    def test_batch_times_must_strictly_increase(self):
        batch = EventBatch(
            time=1.0, events=(ChurnEvent(time=1.0, peer_id=0, kind="join"),)
        )
        with pytest.raises(ValueError):
            ChurnTrace(batches=(batch, batch))

    def test_counts_and_peer_ids(self):
        trace = ChurnTrace(
            batches=(
                EventBatch(
                    time=0.0,
                    events=(
                        ChurnEvent(time=0.0, peer_id=0, kind="join"),
                        ChurnEvent(time=0.0, peer_id=1, kind="join"),
                    ),
                ),
                EventBatch(
                    time=1.0,
                    events=(ChurnEvent(time=1.0, peer_id=1, kind="leave"),),
                ),
            )
        )
        assert trace.epoch_count == 2
        assert trace.event_count == 3
        assert trace.batches[0].join_count == 2
        assert trace.batches[1].leave_count == 1
        assert trace.peer_ids() == {0, 1}

    def test_validate_rejects_join_of_alive_and_leave_of_absent(self):
        join = ChurnEvent(time=0.0, peer_id=0, kind="join")
        trace = ChurnTrace(
            batches=(
                EventBatch(time=0.0, events=(join,)),
                EventBatch(time=1.0, events=(ChurnEvent(time=1.0, peer_id=0, kind="join"),)),
            )
        )
        with pytest.raises(ValueError, match="already alive"):
            trace.validate()
        trace = ChurnTrace(
            batches=(
                EventBatch(time=0.0, events=(ChurnEvent(time=0.0, peer_id=7, kind="leave"),)),
            )
        )
        with pytest.raises(ValueError, match="not alive"):
            trace.validate()
        trace.validate(initial=[7])

    def test_validate_rejects_move_of_absent_peer(self):
        move = ChurnEvent(time=1.0, peer_id=4, kind="move", coordinates=(1.0, 2.0))
        trace = ChurnTrace(batches=(EventBatch(time=1.0, events=(move,)),))
        with pytest.raises(ValueError, match="not alive"):
            trace.validate()
        # A move does not change membership: the peer stays alive after it.
        trace.validate(initial=[4])
        trace = ChurnTrace(
            batches=(
                EventBatch(
                    time=1.0,
                    events=(move, ChurnEvent(time=1.0, peer_id=4, kind="leave")),
                ),
            )
        )
        trace.validate(initial=[4])

    def test_move_count_property(self):
        batch = EventBatch(
            time=0.0,
            events=(
                ChurnEvent(time=0.0, peer_id=0, kind="join"),
                ChurnEvent(time=0.0, peer_id=1, kind="move", coordinates=(3.0,)),
            ),
        )
        assert batch.join_count == 1
        assert batch.leave_count == 0
        assert batch.move_count == 1

    def test_leave_then_rejoin_inside_one_batch_validates(self):
        trace = ChurnTrace(
            batches=(
                EventBatch(
                    time=0.0,
                    events=(
                        ChurnEvent(time=0.0, peer_id=0, kind="leave"),
                        ChurnEvent(time=0.0, peer_id=0, kind="join"),
                    ),
                ),
            )
        )
        trace.validate(initial=[0])


class TestScheduleInterop:
    def test_roundtrip_preserves_the_schedule(self):
        schedule = poisson_churn_schedule(40, seed=9)
        trace = ChurnTrace.from_schedule(schedule, epoch_length=25.0)
        assert trace.to_schedule() == schedule
        assert trace.event_count == len(schedule)
        trace.validate()

    def test_epochs_are_stamped_with_their_start_time(self):
        schedule = poisson_churn_schedule(40, seed=9)
        trace = ChurnTrace.from_schedule(schedule, epoch_length=25.0)
        for batch in trace.batches:
            assert batch.time % 25.0 == 0.0
            for event in batch.events:
                assert batch.time <= event.time < batch.time + 25.0

    def test_epoch_length_validated(self):
        with pytest.raises(ValueError):
            ChurnTrace.from_schedule([], epoch_length=0.0)


class TestScenarioGenerators:
    def test_poisson_trace_is_deterministic_by_default(self):
        assert poisson_trace(30) == poisson_trace(30)
        assert poisson_trace(30, seed=1) != poisson_trace(30, seed=2)
        poisson_trace(30).validate()

    def test_unseeded_runs_are_nondeterministic(self):
        assert poisson_trace(30, seed=None) != poisson_trace(30, seed=None)

    def test_flash_crowd_joins_and_recedes_in_single_batches(self):
        trace = flash_crowd_trace(20, 50, epoch_length=5.0, dwell_epochs=2, seed=3)
        trace.validate()
        crowd = set(range(20, 70))
        flash = next(
            batch for batch in trace.batches
            if {e.peer_id for e in batch.events} == crowd and batch.join_count == 50
        )
        recede = trace.batches[-1]
        assert {e.peer_id for e in recede.events} == crowd
        assert recede.leave_count == 50
        assert recede.time == flash.time + 2 * 5.0

    def test_mass_departure_takes_out_exactly_the_region(self):
        peers = generate_peers_with_lifetimes(40, 3, seed=1)
        center = tuple(peers[0].coordinates)
        trace = mass_departure_trace(
            peers, center=center, radius=250.0, rejoin_after_epochs=2, seed=2
        )
        trace.validate()
        outage = trace.batches[-2]
        rejoin = trace.batches[-1]
        departed = {e.peer_id for e in outage.events}
        assert outage.leave_count == len(outage.events)
        assert 0 < len(departed) < len(peers)
        # The region is spatial: exactly the peers within the radius depart.
        from repro.geometry.distance import euclidean_distance

        for peer in peers:
            inside = euclidean_distance(tuple(peer.coordinates), center) <= 250.0
            assert (peer.peer_id in departed) == inside
        # The outage heals: the same region rejoins in one batch.
        assert {e.peer_id for e in rejoin.events} == departed
        assert rejoin.join_count == len(departed)

    def test_mass_departure_region_must_be_proper(self):
        peers = generate_peers_with_lifetimes(10, 2, seed=1)
        with pytest.raises(ValueError, match="survive"):
            mass_departure_trace(peers, center=(0.0, 0.0), radius=1e9, seed=1)
        with pytest.raises(ValueError, match="no peer"):
            mass_departure_trace(peers, center=(-1e6, -1e6), radius=1e-3, seed=1)

    def test_diurnal_population_tracks_the_wave(self):
        trace = diurnal_trace(
            50, cycles=2, epochs_per_cycle=8, trough_fraction=0.3, seed=4
        )
        trace.validate()
        sizes = []
        alive = set()
        for batch in trace.batches:
            for event in batch.events:
                if event.kind == "join":
                    alive.add(event.peer_id)
                else:
                    alive.discard(event.peer_id)
            sizes.append(len(alive))
        assert max(sizes) == 50
        assert min(sizes) >= 1
        # Rejoin-first allocation keeps the id space bounded by the peak.
        assert max(trace.peer_ids()) < 50
        # Two cycles: the peak is visited (at least) twice.
        assert sizes.count(50) >= 2

    def test_generator_parameters_validated(self):
        with pytest.raises(ValueError):
            flash_crowd_trace(0, 5)
        with pytest.raises(ValueError):
            flash_crowd_trace(5, 5, dwell_epochs=0)
        with pytest.raises(ValueError):
            mass_departure_trace([], radius=1.0)
        with pytest.raises(ValueError):
            diurnal_trace(50, trough_fraction=0.0)
        with pytest.raises(ValueError):
            poisson_trace(10, seed=1, rng=random.Random(2))
        # seed=None combined with rng stays valid: rng wins.
        assert poisson_trace(10, seed=None, rng=random.Random(2)) == poisson_trace(
            10, rng=random.Random(2)
        )
