"""Unit tests for repro.overlay.topology."""

import pytest

from repro.overlay.peer import make_peer
from repro.overlay.topology import TopologySnapshot, undirected_closure


def make_snapshot(directed):
    peers = {peer_id: make_peer(peer_id, (float(peer_id), 0.0)) for peer_id in directed}
    return TopologySnapshot.from_directed(peers, directed)


class TestUndirectedClosure:
    def test_reverse_edges_are_added(self):
        adjacency = undirected_closure({0: {1}, 1: set(), 2: {1}})
        assert adjacency == {0: {1}, 1: {0, 2}, 2: {1}}

    def test_self_loops_are_ignored(self):
        adjacency = undirected_closure({0: {0, 1}, 1: set()})
        assert adjacency == {0: {1}, 1: {0}}

    def test_unknown_target_rejected(self):
        with pytest.raises(KeyError):
            undirected_closure({0: {5}})


class TestTopologySnapshot:
    def test_degrees_and_edges(self):
        snapshot = make_snapshot({0: {1, 2}, 1: set(), 2: {1}})
        assert snapshot.degree(0) == 2
        assert snapshot.degree(1) == 2
        assert snapshot.edge_count() == 3
        assert snapshot.edges() == {(0, 1), (0, 2), (1, 2)}

    def test_maximum_and_average_degree(self):
        snapshot = make_snapshot({0: {1, 2, 3}, 1: set(), 2: set(), 3: set()})
        assert snapshot.maximum_degree() == 3
        assert snapshot.average_degree() == pytest.approx(6 / 4)

    def test_peers_without_selection_still_present(self):
        peers = {i: make_peer(i, (float(i), 0.0)) for i in range(3)}
        snapshot = TopologySnapshot.from_directed(peers, {0: {1}})
        assert snapshot.peer_count == 3
        assert snapshot.degree(2) == 0

    def test_connectivity(self):
        connected = make_snapshot({0: {1}, 1: {2}, 2: set()})
        disconnected = make_snapshot({0: {1}, 1: set(), 2: {3}, 3: set()})
        assert connected.is_connected()
        assert not disconnected.is_connected()

    def test_empty_topology_is_connected_and_degreeless(self):
        snapshot = TopologySnapshot.from_directed({}, {})
        assert snapshot.is_connected()
        assert snapshot.maximum_degree() == 0
        assert snapshot.average_degree() == 0.0

    def test_to_networkx_carries_attributes(self):
        peers = {
            0: make_peer(0, (1.0, 2.0), lifetime=5.0),
            1: make_peer(1, (3.0, 4.0)),
        }
        snapshot = TopologySnapshot.from_directed(peers, {0: {1}, 1: set()})
        graph = snapshot.to_networkx()
        assert graph.number_of_nodes() == 2
        assert graph.number_of_edges() == 1
        assert graph.nodes[0]["coordinates"] == (1.0, 2.0)
        assert graph.nodes[0]["lifetime"] == 5.0
        assert graph.nodes[1]["lifetime"] is None
