"""Vectorised convergence rounds vs the per-peer loop: byte-identity.

The vectorised round protocol (``CandidateView.plan_round`` + the selection
family's ``install_many`` cohort entry) claims to be a pure re-encoding of
the per-peer ``begin_round``/``delta``/``classify_reselect``/``commit``
loop: same trajectories round by round, same round counts, same fixed
points, same drained delta streams, same maintained stability trees.  These
tests pin that equivalence on every engine arm -- columnar and explicit
candidate state, with and without the spatial index -- over deterministic
epochs and hypothesis-generated churn scripts.  The explicit arms exercise
the documented fallback (``plan_round`` returns ``None`` there, so both
flags must follow the identical per-peer path).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.multicast.incremental import StabilityTreeMaintainer
from repro.overlay.network import BatchJoin, BatchLeave, BatchMove, OverlayNetwork
from repro.overlay.peer import make_peer
from repro.overlay.selection.empty_rectangle import EmptyRectangleSelection
from repro.overlay.selection.k_closest import KClosestSelection
from repro.overlay.selection.orthogonal import OrthogonalHyperplanesSelection

_ARMS = [
    {"columnar": True, "use_index": True},
    {"columnar": True, "use_index": False},
    {"columnar": False, "use_index": True},
    {"columnar": False, "use_index": False},
]


def _peers(count, dimension=2):
    return [
        make_peer(index, tuple(float(index * dimension + axis) for axis in range(dimension)))
        for index in range(count)
    ]


def _paired(selection_factory, arm):
    """One overlay per flag value, plus a delta stream and tree maintainer each."""
    overlays = tuple(
        OverlayNetwork(selection_factory(), vectorised_rounds=flag, **arm)
        for flag in (True, False)
    )
    streams = tuple(overlay.delta_stream() for overlay in overlays)
    maintainers = tuple(StabilityTreeMaintainer(overlay) for overlay in overlays)
    return overlays, streams, maintainers


def _scripted_epochs(peers, seed):
    """A deterministic mixed churn script: joins, leaves, moves, rejoins."""
    rng = random.Random(seed)
    half = len(peers) // 2
    seed_epoch = [BatchJoin(peer) for peer in peers[:half]]
    epochs = [seed_epoch]
    alive = [peer.peer_id for peer in peers[:half]]
    pending = list(peers[half:])
    departed = []
    while pending or departed:
        epoch = []
        for _ in range(rng.randint(1, 3)):
            action = rng.random()
            if pending and action < 0.5:
                peer = pending.pop()
                bootstrap = {rng.choice(alive)} if alive else set()
                epoch.append(BatchJoin(peer, bootstrap=bootstrap))
                alive.append(peer.peer_id)
            elif departed and action < 0.7:
                peer = departed.pop()
                bootstrap = {rng.choice(alive)} if alive else set()
                epoch.append(BatchJoin(peer, bootstrap=bootstrap))
                alive.append(peer.peer_id)
            elif len(alive) > 2 and action < 0.85:
                victim = alive.pop(rng.randrange(len(alive)))
                epoch.append(BatchLeave(victim))
                departed.append(next(p for p in peers if p.peer_id == victim))
            elif alive:
                mover = rng.choice(alive)
                original = next(p for p in peers if p.peer_id == mover)
                shifted = tuple(value + 0.25 for value in original.coordinates)
                epoch.append(BatchMove(mover, shifted))
        if epoch:
            epochs.append(epoch)
    return epochs


def _assert_lockstep(overlays, streams, maintainers):
    vec, ref = overlays
    assert vec.directed_neighbour_map() == ref.directed_neighbour_map()
    vec_delta, ref_delta = streams[0].drain(), streams[1].drain()
    assert vec_delta == ref_delta
    for maintainer in maintainers:
        maintainer.refresh()
    assert maintainers[0].forest().preferred == maintainers[1].forest().preferred


class TestVectorisedRoundEquivalence:
    def test_all_arms_stay_in_lockstep_over_a_mixed_script(self):
        for arm in _ARMS:
            overlays, streams, maintainers = _paired(EmptyRectangleSelection, arm)
            for epoch in _scripted_epochs(_peers(24), seed=13):
                rounds = [overlay.apply_batch(epoch) for overlay in overlays]
                assert rounds[0] == rounds[1], arm
                _assert_lockstep(overlays, streams, maintainers)

    def test_non_path_independent_selection_stays_in_lockstep(self):
        # KClosest is not path independent: every stamped window classifies
        # FULL, which exercises the plan's full-mask arm end to end.
        for arm in _ARMS:
            overlays, streams, maintainers = _paired(lambda: KClosestSelection(k=3), arm)
            for epoch in _scripted_epochs(_peers(16), seed=7):
                rounds = [overlay.apply_batch(epoch) for overlay in overlays]
                assert rounds[0] == rounds[1], arm
                _assert_lockstep(overlays, streams, maintainers)

    def test_pure_loss_epochs_exercise_the_skip_arm(self):
        # Departures without gains classify the surviving stamped peers to
        # SKIP unless the lost ids sat in their installed selections.
        for arm in _ARMS:
            overlays, streams, maintainers = _paired(EmptyRectangleSelection, arm)
            peers = _peers(20)
            for overlay in overlays:
                overlay.apply_batch([BatchJoin(peer) for peer in peers])
            _assert_lockstep(overlays, streams, maintainers)
            for victim in (19, 3, 11):
                rounds = [overlay.apply_batch([BatchLeave(victim)]) for overlay in overlays]
                assert rounds[0] == rounds[1], arm
                _assert_lockstep(overlays, streams, maintainers)

    def test_vectorised_flag_defaults_on_and_survives_engine_rebuilds(self):
        overlay = OverlayNetwork(EmptyRectangleSelection())
        overlay.apply_batch([BatchJoin(peer) for peer in _peers(8)])
        # A full sweep drops the lazy engine; the next incremental converge
        # must come back with the same vectorised setting.
        overlay.reselect_round()
        overlay.apply_batch([BatchLeave(0)])
        reference = OverlayNetwork(EmptyRectangleSelection(), vectorised_rounds=False)
        reference.apply_batch([BatchJoin(peer) for peer in _peers(8)])
        reference.reselect_round()
        reference.apply_batch([BatchLeave(0)])
        assert overlay.directed_neighbour_map() == reference.directed_neighbour_map()


def _populations(min_size=4, max_size=14, max_dimension=3):
    @st.composite
    def build(draw):
        count = draw(st.integers(min_value=min_size, max_value=max_size))
        dimension = draw(st.integers(min_value=2, max_value=max_dimension))
        axes = [
            draw(
                st.lists(
                    st.integers(min_value=0, max_value=9999),
                    min_size=count,
                    max_size=count,
                    unique=True,
                )
            )
            for _ in range(dimension)
        ]
        return [
            make_peer(index, tuple(float(axis[index]) / 8 for axis in axes))
            for index in range(count)
        ]

    return build()


@settings(max_examples=30, deadline=None)
@given(
    peers=_populations(),
    selection_factory=st.sampled_from(
        [
            EmptyRectangleSelection,
            lambda: OrthogonalHyperplanesSelection(k=2),
            lambda: KClosestSelection(k=2),
        ]
    ),
    columnar=st.booleans(),
    use_index=st.booleans(),
    script_seed=st.integers(min_value=0, max_value=999),
)
def test_random_churn_scripts_are_byte_identical(
    peers, selection_factory, columnar, use_index, script_seed
):
    """Hypothesis hunt over the full arm grid: maps, rounds, deltas, trees."""
    arm = {"columnar": columnar, "use_index": use_index}
    overlays, streams, maintainers = _paired(selection_factory, arm)
    for epoch in _scripted_epochs(peers, seed=script_seed):
        rounds = [overlay.apply_batch(epoch) for overlay in overlays]
        assert rounds[0] == rounds[1]
        _assert_lockstep(overlays, streams, maintainers)
