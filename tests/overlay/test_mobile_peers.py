"""Mobile peers: ``move_peer`` on the live overlay paths.

The ROADMAP flagged ``SpatialIndex.move`` as exercised only by the index
unit tests; these schedules drive it through the overlay itself.  A peer's
coordinates drift while the overlay keeps converging incrementally, and the
trajectories must agree everywhere coordinate state is replicated:

* indexed vs scan (``use_index``): the index is re-keyed by ``move_peer``,
  so index-answered selections must equal scan selections at every step;
* columnar vs explicit (``columnar``): a move reaches the engine as
  ``note_move`` in both candidate representations, and both must install
  the same fixed point;
* incremental vs full sweep: the post-move fixed point is a function of the
  current coordinates alone.
"""

import random

import pytest

from repro.overlay.network import OverlayNetwork
from repro.overlay.peer import make_peer
from repro.overlay.selection.empty_rectangle import EmptyRectangleSelection
from repro.overlay.selection.orthogonal import OrthogonalHyperplanesSelection

_SELECTIONS = [
    EmptyRectangleSelection,
    lambda: OrthogonalHyperplanesSelection(k=2),
]


def _population(count, rng, dimension=2):
    """Random peers with pairwise-distinct per-axis coordinates."""
    axes = [rng.sample(range(100 * count), count) for _ in range(dimension)]
    return [
        make_peer(index, tuple(float(axis[index]) / 4 for axis in axes))
        for index in range(count)
    ]


def _drift_schedule(overlay, rng, *, steps, incremental):
    """Move random peers (plus a little churn) and converge after each step."""
    for step in range(steps):
        alive = overlay.peer_ids
        roll = rng.random()
        if roll < 0.6:
            mover = rng.choice(alive)
            reference = overlay.peer(rng.choice(alive))
            drift = tuple(
                value + rng.uniform(-40.0, 40.0) + 1e-3 * mover
                for value in reference.coordinates
            )
            overlay.move_peer(mover, drift)
        elif roll < 0.8 and len(alive) > 4:
            overlay.remove_peer(rng.choice(alive))
        else:
            coords = tuple(rng.uniform(0.0, 100.0 * len(alive)) for _ in range(2))
            overlay.add_peer(
                make_peer(max(alive) + 1, coords), bootstrap={rng.choice(alive)}
            )
        overlay.converge(incremental=incremental)


@pytest.mark.parametrize("selection_factory", _SELECTIONS)
@pytest.mark.parametrize("columnar", [True, False])
def test_indexed_and_scan_trajectories_agree_under_drift(
    selection_factory, columnar
):
    """Coordinate drift keeps the index exact: indexed == scan at every step."""
    seeds = random.Random(11)
    peers = _population(40, seeds)
    arms = {
        use_index: OverlayNetwork.build_incremental(
            peers,
            selection_factory(),
            rng=random.Random(5),
            use_index=use_index,
            columnar=columnar,
        )
        for use_index in (True, False)
    }
    schedules = {
        use_index: random.Random(23) for use_index in arms
    }  # identical event streams per arm
    for step in range(30):
        for use_index, overlay in arms.items():
            _drift_schedule(
                overlay, schedules[use_index], steps=1, incremental=True
            )
        indexed, scan = arms[True], arms[False]
        assert indexed.directed_neighbour_map() == scan.directed_neighbour_map()
        # The index itself must track the moved coordinates exactly.
        for peer in indexed.peers():
            assert indexed.index.point(peer.peer_id) == peer.coordinates


@pytest.mark.parametrize("selection_factory", _SELECTIONS)
def test_columnar_and_explicit_agree_under_drift(selection_factory):
    """Both candidate representations land on the same post-move fixed points."""
    peers = _population(40, random.Random(17))
    arms = {
        columnar: OverlayNetwork.build_incremental(
            peers, selection_factory(), rng=random.Random(5), columnar=columnar
        )
        for columnar in (True, False)
    }
    schedules = {columnar: random.Random(41) for columnar in arms}
    for step in range(30):
        for columnar, overlay in arms.items():
            _drift_schedule(
                overlay, schedules[columnar], steps=1, incremental=True
            )
        assert (
            arms[True].directed_neighbour_map() == arms[False].directed_neighbour_map()
        )


def test_incremental_move_matches_full_sweep_fixed_point():
    """After a drift schedule, incremental == full sweep == fresh equilibrium."""
    peers = _population(32, random.Random(29))
    fast = OverlayNetwork.build_incremental(
        peers, EmptyRectangleSelection(), rng=random.Random(5)
    )
    slow = OverlayNetwork.build_incremental(
        peers, EmptyRectangleSelection(), rng=random.Random(5)
    )
    _drift_schedule(fast, random.Random(61), steps=25, incremental=True)
    _drift_schedule(slow, random.Random(61), steps=25, incremental=False)
    assert fast.directed_neighbour_map() == slow.directed_neighbour_map()
    equilibrium = OverlayNetwork.build_equilibrium(
        fast.peers(), EmptyRectangleSelection()
    )
    assert fast.directed_neighbour_map() == equilibrium.directed_neighbour_map()


def test_move_peer_validates_and_returns_new_metadata():
    peers = _population(6, random.Random(3))
    overlay = OverlayNetwork.build_incremental(
        peers, EmptyRectangleSelection(), rng=random.Random(5)
    )
    moved = overlay.move_peer(2, (1.0, 2.0))
    assert moved.coordinates == overlay.peer(2).coordinates
    assert tuple(moved.coordinates) == (1.0, 2.0)
    with pytest.raises(KeyError):
        overlay.move_peer(999, (0.0, 0.0))
    with pytest.raises(ValueError):
        overlay.move_peer(2, (1.0, 2.0, 3.0))


def test_move_touches_the_delta_stream():
    """A move touches the mover, its selectors and its selected targets."""
    peers = _population(10, random.Random(9))
    overlay = OverlayNetwork.build_incremental(
        peers, EmptyRectangleSelection(), rng=random.Random(5)
    )
    recorder = overlay.delta_stream()
    mover = 4
    selectors = {
        other for other in overlay.peer_ids
        if mover in overlay.selected_neighbours(other)
    }
    selected = set(overlay.selected_neighbours(mover))
    overlay.move_peer(mover, (3.0, 4.0))
    delta = recorder.drain()
    assert delta.joined == frozenset() and delta.departed == frozenset()
    assert delta.touched == frozenset({mover} | selectors | selected)
