"""Property-based cross-checks: incremental engine vs full-sweep convergence.

The engine's correctness argument (see :mod:`repro.overlay.incremental`) is
that a partial round installs exactly what a full synchronous sweep would,
so both paths follow the same trajectory to the same fixed point.  These
tests let hypothesis hunt for counterexamples over random populations and
churn scripts, under full knowledge and under a small gossip radius.

Populations honour the paper's distinct-coordinate assumption (each axis is
a set of pairwise-distinct values), which is what the vectorised selection
paths rely on; the workload generators enforce the same invariant.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.overlay.network import OverlayNetwork
from repro.overlay.peer import make_peer
from repro.overlay.selection.empty_rectangle import EmptyRectangleSelection
from repro.overlay.selection.k_closest import KClosestSelection
from repro.overlay.selection.orthogonal import OrthogonalHyperplanesSelection


def _populations(min_size=2, max_size=16, max_dimension=3):
    """Random populations with pairwise-distinct per-axis coordinates."""

    @st.composite
    def build(draw):
        count = draw(st.integers(min_value=min_size, max_value=max_size))
        dimension = draw(st.integers(min_value=2, max_value=max_dimension))
        axes = [
            draw(
                st.lists(
                    st.integers(min_value=0, max_value=9999),
                    min_size=count,
                    max_size=count,
                    unique=True,
                )
            )
            for _ in range(dimension)
        ]
        return [
            make_peer(index, tuple(float(axis[index]) / 8 for axis in axes))
            for index in range(count)
        ]

    return build()


_SELECTIONS = st.sampled_from(
    [
        EmptyRectangleSelection,
        lambda: OrthogonalHyperplanesSelection(k=1),
        lambda: OrthogonalHyperplanesSelection(k=2),
        lambda: KClosestSelection(k=2),
    ]
)

_RADII = st.sampled_from([None, 2, 3])


@settings(max_examples=40, deadline=None)
@given(
    peers=_populations(),
    selection_factory=_SELECTIONS,
    gossip_radius=_RADII,
    seed=st.integers(min_value=0, max_value=999),
    columnar=st.booleans(),
    vectorised=st.booleans(),
)
def test_insertion_convergence_matches_full_sweep(
    peers, selection_factory, gossip_radius, seed, columnar, vectorised
):
    # Under full knowledge the engine's candidate bookkeeping has two
    # representations (implicit columnar / explicit dicts); draw both so the
    # byte-identity hunt covers the representation boundary too.  Gossip
    # overlays only have the explicit one.  The vectorised-round flag is
    # drawn as well: plan_round-batched rounds and the per-peer loop must
    # land on the same fixed point on every arm.
    fast = OverlayNetwork.build_incremental(
        peers,
        selection_factory(),
        gossip_radius=gossip_radius,
        rng=random.Random(seed),
        incremental=True,
        columnar=columnar if gossip_radius is None else None,
        vectorised_rounds=vectorised,
    )
    slow = OverlayNetwork.build_incremental(
        peers,
        selection_factory(),
        gossip_radius=gossip_radius,
        rng=random.Random(seed),
        incremental=False,
    )
    assert fast.directed_neighbour_map() == slow.directed_neighbour_map()


@settings(max_examples=25, deadline=None)
@given(
    peers=_populations(min_size=4, max_size=14),
    selection_factory=_SELECTIONS,
    gossip_radius=_RADII,
    script_seed=st.integers(min_value=0, max_value=999),
    columnar=st.booleans(),
    vectorised=st.booleans(),
)
def test_churn_script_matches_full_sweep_at_every_step(
    peers, selection_factory, gossip_radius, script_seed, columnar, vectorised
):
    """Random interleavings of joins and departures stay in lockstep."""
    rng = random.Random(script_seed)
    fast = OverlayNetwork(
        selection_factory(),
        gossip_radius=gossip_radius,
        columnar=columnar if gossip_radius is None else None,
        vectorised_rounds=vectorised,
    )
    slow = OverlayNetwork(selection_factory(), gossip_radius=gossip_radius)
    alive = []
    pending = list(peers)
    while pending or (alive and rng.random() < 0.5):
        depart = alive and (not pending or rng.random() < 0.3)
        if depart:
            victim = rng.choice(alive)
            alive.remove(victim)
            fast.remove_and_converge(victim, incremental=True)
            slow.remove_and_converge(victim, incremental=False)
        else:
            peer = pending.pop()
            bootstrap = {rng.choice(alive)} if alive else set()
            fast.insert_and_converge(peer, bootstrap=bootstrap, incremental=True)
            slow.insert_and_converge(peer, bootstrap=bootstrap, incremental=False)
            alive.append(peer.peer_id)
        assert fast.directed_neighbour_map() == slow.directed_neighbour_map()


@settings(max_examples=40, deadline=None)
@given(peers=_populations(min_size=3, max_size=18))
def test_select_many_additive_agrees_with_full_selection(peers):
    """The vectorised skyline-update rule equals select() on the grown set."""
    joiner, existing = peers[-1], peers[:-1]
    selection = EmptyRectangleSelection()
    equilibrium = selection.compute_equilibrium(existing)
    updates = [
        (
            reference,
            [p for p in existing if p.peer_id in equilibrium[reference.peer_id]],
            [joiner],
        )
        for reference in existing
    ]
    delta_results = selection.select_many_additive(updates)
    for reference in existing:
        expected = selection.select(
            reference, [p for p in peers if p.peer_id != reference.peer_id]
        )
        got = delta_results.get(reference.peer_id)
        if got is None:
            assert expected == sorted(equilibrium[reference.peer_id])
        else:
            assert sorted(got) == expected
