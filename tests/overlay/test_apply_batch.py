"""Batched-epoch convergence: apply_batch semantics and equivalence.

The batched path's correctness story: applying a whole epoch of membership
events and converging once reaches the same fixed point (and, through the
delta stream, the byte-identical maintained stability tree) as converging
after every single event.  Hypothesis hunts for counterexamples over random
batched traces; unit tests pin the delta-stream contract on the degenerate
paths (emptying the overlay, leave+rejoin inside one epoch) and the
engine-invalidation contract of the :class:`ConvergenceError` path.
"""

import random
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.trees import tree_metrics
from repro.multicast.incremental import StabilityTreeMaintainer
from repro.multicast.stability import StabilityTreeBuilder
from repro.overlay.network import (
    BatchJoin,
    BatchLeave,
    BatchMove,
    ConvergenceError,
    OverlayNetwork,
)
from repro.overlay.peer import make_peer
from repro.overlay.selection.empty_rectangle import EmptyRectangleSelection
from repro.overlay.selection.k_closest import KClosestSelection
from repro.overlay.selection.orthogonal import OrthogonalHyperplanesSelection


def _peers(count, dimension=2):
    """Small fixed population with pairwise-distinct per-axis coordinates."""
    return [
        make_peer(index, tuple(float(index * dimension + axis) for axis in range(dimension)))
        for index in range(count)
    ]


# ----------------------------------------------------------------------
# apply_batch semantics
# ----------------------------------------------------------------------
class TestApplyBatch:
    def test_empty_batch_is_a_no_op(self):
        overlay = OverlayNetwork(EmptyRectangleSelection())
        assert overlay.apply_batch([]) == 0
        assert overlay.peer_count == 0

    def test_shorthand_events(self):
        peers = _peers(4)
        overlay = OverlayNetwork(EmptyRectangleSelection())
        # PeerInfo is a join, a bare int is a leave.
        rounds = overlay.apply_batch(peers)
        assert rounds >= 1
        assert overlay.peer_ids == [0, 1, 2, 3]
        overlay.apply_batch([3])
        assert overlay.peer_ids == [0, 1, 2]

    def test_batch_move_relocates_and_reconverges(self):
        peers = _peers(5)
        overlay = OverlayNetwork(EmptyRectangleSelection())
        overlay.apply_batch(peers)
        new_coordinates = (100.0, 100.0)
        rounds = overlay.apply_batch([BatchMove(2, new_coordinates)])
        assert rounds >= 1
        assert tuple(overlay.peer(2).coordinates) == new_coordinates
        # The post-move fixed point matches an overlay built at the moved
        # coordinates from scratch.
        rebuilt = OverlayNetwork(EmptyRectangleSelection())
        rebuilt.apply_batch(
            [
                replace(peer, coordinates=new_coordinates) if peer.peer_id == 2 else peer
                for peer in peers
            ]
        )
        assert overlay.directed_neighbour_map() == rebuilt.directed_neighbour_map()

    def test_unsupported_event_rejected(self):
        overlay = OverlayNetwork(EmptyRectangleSelection())
        with pytest.raises(TypeError):
            overlay.apply_batch(["join"])

    def test_batch_emptying_the_overlay_skips_convergence(self):
        peers = _peers(3)
        overlay = OverlayNetwork(EmptyRectangleSelection())
        overlay.apply_batch(peers)
        assert overlay.apply_batch([0, 1, 2]) == 0
        assert overlay.peer_count == 0

    def test_join_may_bootstrap_off_an_earlier_join_in_the_same_batch(self):
        peers = _peers(3)
        overlay = OverlayNetwork(EmptyRectangleSelection())
        overlay.apply_batch(
            [
                BatchJoin(peers[0], bootstrap=frozenset()),
                BatchJoin(peers[1], bootstrap=frozenset({0})),
                BatchJoin(peers[2], bootstrap=frozenset({1})),
            ]
        )
        assert overlay.peer_ids == [0, 1, 2]

    def test_leave_then_rejoin_inside_one_batch_is_well_formed(self):
        peers = _peers(5)
        overlay = OverlayNetwork(EmptyRectangleSelection())
        overlay.apply_batch(peers)
        overlay.apply_batch(
            [BatchLeave(2), BatchJoin(peers[2], bootstrap=frozenset({0}))]
        )
        assert overlay.peer_ids == [0, 1, 2, 3, 4]


# ----------------------------------------------------------------------
# Delta-stream contract on the degenerate paths
# ----------------------------------------------------------------------
class TestDeltaStreamDegenerates:
    def test_remove_and_converge_to_empty_still_reports_the_leave(self):
        peers = _peers(2)
        overlay = OverlayNetwork(EmptyRectangleSelection())
        overlay.apply_batch(peers)
        recorder = overlay.delta_stream()
        overlay.remove_and_converge(1, incremental=True)
        assert overlay.remove_and_converge(0, incremental=True) == 0
        delta = recorder.drain()
        assert delta.departed == frozenset({0, 1})
        assert delta.joined == frozenset()

    def test_maintainer_survives_draining_down_to_empty(self):
        peers = _peers(3)
        overlay = OverlayNetwork(EmptyRectangleSelection())
        maintainer = StabilityTreeMaintainer(overlay)
        overlay.apply_batch(peers)
        maintainer.refresh()
        for peer_id in (2, 1, 0):
            overlay.remove_and_converge(peer_id, incremental=True)
        delta = maintainer.refresh()
        assert delta.departed == frozenset({0, 1, 2})
        assert maintainer.engine.peer_count == 0
        assert maintainer.full_rebuilds == 1

    def test_leave_plus_rejoin_in_one_epoch_appears_as_both(self):
        peers = _peers(5)
        overlay = OverlayNetwork(EmptyRectangleSelection())
        overlay.apply_batch(peers)
        recorder = overlay.delta_stream()
        overlay.apply_batch(
            [BatchLeave(2), BatchJoin(peers[2], bootstrap=frozenset({0}))]
        )
        delta = recorder.drain()
        assert 2 in delta.departed and 2 in delta.joined

    def test_join_plus_leave_in_one_epoch_cancels(self):
        peers = _peers(5)
        overlay = OverlayNetwork(EmptyRectangleSelection())
        overlay.apply_batch(peers[:4])
        recorder = overlay.delta_stream()
        overlay.apply_batch(
            [BatchJoin(peers[4], bootstrap=frozenset({0})), BatchLeave(4)]
        )
        delta = recorder.drain()
        assert 4 not in delta.joined and 4 not in delta.departed

    def test_leave_rejoin_epoch_keeps_the_maintained_tree_byte_identical(self):
        peers = _peers(6, dimension=3)
        overlay = OverlayNetwork(OrthogonalHyperplanesSelection(k=2))
        maintainer = StabilityTreeMaintainer(overlay)
        overlay.apply_batch(peers)
        maintainer.refresh()
        overlay.apply_batch(
            [BatchLeave(3), BatchJoin(peers[3], bootstrap=frozenset({0}))]
        )
        maintainer.refresh()
        expected = StabilityTreeBuilder().build(overlay.snapshot())
        assert maintainer.forest().preferred == dict(expected.preferred)


# ----------------------------------------------------------------------
# ConvergenceError invalidates the engine (regression)
# ----------------------------------------------------------------------
def _chain_overlay():
    """A bootstrap chain under a small gossip radius: needs 2 rounds."""
    overlay = OverlayNetwork(KClosestSelection(k=2), gossip_radius=2)
    for index, peer in enumerate(
        make_peer(i, (float(i), float(i % 3))) for i in range(10)
    ):
        overlay.add_peer(peer, bootstrap={index - 1} if index else ())
    return overlay


class TestConvergenceErrorRecovery:
    def test_engine_is_invalidated_on_the_exception_path(self):
        overlay = _chain_overlay()
        with pytest.raises(ConvergenceError):
            overlay.converge(incremental=True, max_rounds=1)
        assert overlay._engine is None  # noqa: SLF001 - the regression is internal

    def test_subsequent_converge_reaches_the_true_fixed_point(self):
        overlay = _chain_overlay()
        with pytest.raises(ConvergenceError):
            overlay.converge(incremental=True, max_rounds=1)
        overlay.converge(incremental=True)

        # The reference arm fails the same way mid-trajectory (the first
        # incremental round equals the first full sweep) and continues on
        # full sweeps; both recoveries must land on the same fixed point.
        reference = _chain_overlay()
        with pytest.raises(ConvergenceError):
            reference.converge(incremental=False, max_rounds=1)
        reference.converge(incremental=False)
        assert overlay.directed_neighbour_map() == reference.directed_neighbour_map()


# ----------------------------------------------------------------------
# Hypothesis: batched epochs == per-event convergence
# ----------------------------------------------------------------------
def _populations(min_size=4, max_size=14, max_dimension=3):
    """Random populations with pairwise-distinct per-axis coordinates."""

    @st.composite
    def build(draw):
        count = draw(st.integers(min_value=min_size, max_value=max_size))
        dimension = draw(st.integers(min_value=2, max_value=max_dimension))
        axes = [
            draw(
                st.lists(
                    st.integers(min_value=0, max_value=9999),
                    min_size=count,
                    max_size=count,
                    unique=True,
                )
            )
            for _ in range(dimension)
        ]
        return [
            make_peer(index, tuple(float(axis[index]) / 8 for axis in axes))
            for index in range(count)
        ]

    return build()


_SELECTIONS = st.sampled_from(
    [
        EmptyRectangleSelection,
        lambda: OrthogonalHyperplanesSelection(k=2),
        lambda: KClosestSelection(k=2),
    ]
)


def _random_batched_script(peers, rng):
    """A random trace: join/leave events partitioned into random epochs.

    Bootstrap contacts are pre-chosen against the evolving alive set, so the
    batched and the per-event replay perform byte-identical membership
    operations and only the convergence cadence differs.  Leaves and rejoins
    may share an epoch with their counterpart event.
    """
    batches = []
    alive = []
    pending = list(peers)
    departed = []
    while pending or (alive and rng.random() < 0.4):
        batch = []
        for _ in range(rng.randint(1, 4)):
            roll = rng.random()
            if alive and (roll < 0.25 or not (pending or departed)):
                victim = rng.choice(alive)
                alive.remove(victim)
                batch.append(BatchLeave(victim))
                departed.append(victim)
            elif pending or departed:
                if departed and (not pending or roll < 0.4):
                    peer_id = departed.pop(rng.randrange(len(departed)))
                    peer = next(p for p in peers if p.peer_id == peer_id)
                else:
                    peer = pending.pop()
                bootstrap = frozenset({rng.choice(alive)}) if alive else frozenset()
                batch.append(BatchJoin(peer, bootstrap=bootstrap))
                alive.append(peer.peer_id)
            else:
                break
        if batch:
            batches.append(batch)
    return batches


@settings(max_examples=25, deadline=None)
@given(
    peers=_populations(),
    selection_factory=_SELECTIONS,
    script_seed=st.integers(min_value=0, max_value=999),
    columnar=st.booleans(),
)
def test_batched_epochs_match_per_event_convergence(
    peers, selection_factory, script_seed, columnar
):
    """Per-epoch apply_batch == per-event converge, overlay and tree alike.

    After every epoch the batched overlay must equal the per-event one
    (under full knowledge the fixed point is a function of the surviving
    population), and the two maintained stability trees -- refreshed once
    per epoch vs once per event -- must be byte-identical, including the
    streaming metric bundles whenever the forest is a single tree.  The
    batched arm draws the engine's candidate representation (implicit
    columnar vs explicit dicts) so the tree-maintenance byte-identity hunt
    crosses the representation boundary; the per-event arm stays on the
    default.
    """
    rng = random.Random(script_seed)
    batches = _random_batched_script(peers, rng)

    fast = OverlayNetwork(selection_factory(), columnar=columnar)
    slow = OverlayNetwork(selection_factory())
    fast_maintainer = StabilityTreeMaintainer(fast)
    slow_maintainer = StabilityTreeMaintainer(slow)

    for batch in batches:
        fast.apply_batch(batch)
        fast_maintainer.refresh()
        for event in batch:
            slow.apply_batch((event,), incremental=True)
            slow_maintainer.refresh()

        assert fast.directed_neighbour_map() == slow.directed_neighbour_map()
        fast_forest = fast_maintainer.forest()
        slow_forest = slow_maintainer.forest()
        assert dict(fast_forest.preferred) == dict(slow_forest.preferred)
        assert dict(fast_forest.lifetimes) == dict(slow_forest.lifetimes)
        if fast.peer_count and fast_forest.is_single_tree():
            assert fast_maintainer.metrics() == slow_maintainer.metrics()

    # Both maintainers paid exactly one snapshot-scale rebuild: the bootstrap.
    assert fast_maintainer.full_rebuilds == 1
    assert slow_maintainer.full_rebuilds == 1
    # And the maintained tree equals the from-scratch snapshot build.
    if fast.peer_count:
        expected = StabilityTreeBuilder().build(fast.snapshot())
        assert fast_maintainer.forest().preferred == dict(expected.preferred)
        if fast_maintainer.forest().is_single_tree():
            assert fast_maintainer.metrics() == tree_metrics(
                expected.to_multicast_tree()
            )


@settings(max_examples=25, deadline=None)
@given(
    peers=_populations(),
    selection_factory=_SELECTIONS,
    gossip_radius=st.sampled_from([None, 2, 3]),
    script_seed=st.integers(min_value=0, max_value=999),
    columnar=st.booleans(),
)
def test_batched_incremental_matches_batched_full_sweep(
    peers, selection_factory, gossip_radius, script_seed, columnar
):
    """apply_batch(incremental=True) == apply_batch(incremental=False).

    The engine's partial rounds install exactly what a full sweep would, so
    the two convergence paths follow the same trajectory from the same
    post-batch state -- under full knowledge (in both candidate
    representations) and bounded gossip radii alike.
    """
    rng = random.Random(script_seed)
    batches = _random_batched_script(peers, rng)
    fast = OverlayNetwork(
        selection_factory(),
        gossip_radius=gossip_radius,
        columnar=columnar if gossip_radius is None else None,
    )
    slow = OverlayNetwork(selection_factory(), gossip_radius=gossip_radius)
    for batch in batches:
        fast.apply_batch(batch, incremental=True)
        slow.apply_batch(batch, incremental=False)
        assert fast.directed_neighbour_map() == slow.directed_neighbour_map()
