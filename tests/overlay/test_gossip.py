"""Unit tests for repro.overlay.gossip."""

import pytest

from repro.geometry.point import Point
from repro.overlay.gossip import (
    AnnouncementStore,
    ExistenceAnnouncement,
    knowledge_sets,
    peers_within_hops,
)
from repro.overlay.peer import NetworkAddress


def make_announcement(origin=1, issued_at=0.0, hops=2):
    return ExistenceAnnouncement(
        origin=origin,
        coordinates=Point((1.0, 2.0)),
        address=NetworkAddress("10.0.0.1", 7001),
        issued_at=issued_at,
        remaining_hops=hops,
    )


class TestExistenceAnnouncement:
    def test_forwarded_decrements_hops(self):
        announcement = make_announcement(hops=2)
        forwarded = announcement.forwarded()
        assert forwarded.remaining_hops == 1
        assert forwarded.origin == announcement.origin
        assert forwarded.issued_at == announcement.issued_at

    def test_forwarding_without_budget_fails(self):
        with pytest.raises(ValueError):
            make_announcement(hops=0).forwarded()

    def test_negative_hops_rejected(self):
        with pytest.raises(ValueError):
            make_announcement(hops=-1)


class TestAnnouncementStore:
    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            AnnouncementStore(0.0)

    def test_latest_announcement_wins(self):
        store = AnnouncementStore(window=10.0)
        store.record(make_announcement(origin=1, issued_at=1.0))
        store.record(make_announcement(origin=1, issued_at=5.0))
        known = store.known_peers(now=6.0)
        assert known[1].issued_at == 5.0
        assert len(store) == 1

    def test_old_announcements_expire(self):
        store = AnnouncementStore(window=5.0)
        store.record(make_announcement(origin=1, issued_at=0.0))
        store.record(make_announcement(origin=2, issued_at=8.0))
        known = store.known_peers(now=10.0)
        assert set(known) == {2}

    def test_prune_removes_expired_entries(self):
        store = AnnouncementStore(window=5.0)
        store.record(make_announcement(origin=1, issued_at=0.0))
        store.record(make_announcement(origin=2, issued_at=9.0))
        store.prune(now=10.0)
        assert len(store) == 1

    def test_forget_removes_origin(self):
        store = AnnouncementStore(window=5.0)
        store.record(make_announcement(origin=3, issued_at=1.0))
        store.forget(3)
        assert store.known_peers(now=2.0) == {}


class TestBoundedHopReachability:
    @pytest.fixture()
    def line_graph(self):
        # 0 - 1 - 2 - 3 - 4
        return {0: {1}, 1: {0, 2}, 2: {1, 3}, 3: {2, 4}, 4: {3}}

    def test_radius_one_is_direct_neighbours(self, line_graph):
        assert peers_within_hops(line_graph, 2, 1) == {1, 3}

    def test_radius_two(self, line_graph):
        assert peers_within_hops(line_graph, 0, 2) == {1, 2}

    def test_large_radius_reaches_everyone(self, line_graph):
        assert peers_within_hops(line_graph, 0, 10) == {1, 2, 3, 4}

    def test_source_is_excluded(self, line_graph):
        assert 2 not in peers_within_hops(line_graph, 2, 3)

    def test_unknown_source_raises(self, line_graph):
        with pytest.raises(KeyError):
            peers_within_hops(line_graph, 99, 2)

    def test_negative_radius_rejected(self, line_graph):
        with pytest.raises(ValueError):
            peers_within_hops(line_graph, 0, -1)

    def test_knowledge_sets_cover_every_peer(self, line_graph):
        sets = knowledge_sets(line_graph, 2)
        assert set(sets) == set(line_graph)
        assert sets[0] == {1, 2}
        assert sets[2] == {0, 1, 3, 4}

    def test_radius_zero_gives_empty_sets(self, line_graph):
        sets = knowledge_sets(line_graph, 0)
        assert all(not value for value in sets.values())
