"""Unit and integration tests for repro.overlay.network.OverlayNetwork."""

import pytest

from repro.overlay.network import ConvergenceError, OverlayNetwork
from repro.overlay.peer import make_peer
from repro.overlay.selection.empty_rectangle import EmptyRectangleSelection
from repro.overlay.selection.orthogonal import OrthogonalHyperplanesSelection
from repro.workloads.peers import generate_peers


class TestMembership:
    def test_add_and_remove_peers(self):
        overlay = OverlayNetwork(EmptyRectangleSelection())
        overlay.add_peer(make_peer(0, (0.0, 0.0)))
        overlay.add_peer(make_peer(1, (1.0, 1.0)))
        assert overlay.peer_count == 2
        assert 0 in overlay and 1 in overlay
        removed = overlay.remove_peer(0)
        assert removed.peer_id == 0
        assert overlay.peer_count == 1
        assert 0 not in overlay

    def test_duplicate_peer_rejected(self):
        overlay = OverlayNetwork(EmptyRectangleSelection())
        overlay.add_peer(make_peer(0, (0.0, 0.0)))
        with pytest.raises(ValueError):
            overlay.add_peer(make_peer(0, (1.0, 1.0)))

    def test_dimension_mismatch_rejected(self):
        overlay = OverlayNetwork(EmptyRectangleSelection())
        overlay.add_peer(make_peer(0, (0.0, 0.0)))
        with pytest.raises(ValueError):
            overlay.add_peer(make_peer(1, (1.0, 1.0, 1.0)))

    def test_unknown_bootstrap_rejected(self):
        overlay = OverlayNetwork(EmptyRectangleSelection())
        overlay.add_peer(make_peer(0, (0.0, 0.0)))
        with pytest.raises(KeyError):
            overlay.add_peer(make_peer(1, (1.0, 1.0)), bootstrap={42})

    def test_remove_unknown_peer(self):
        overlay = OverlayNetwork(EmptyRectangleSelection())
        with pytest.raises(KeyError):
            overlay.remove_peer(3)

    def test_default_bootstrap_is_lowest_id(self):
        overlay = OverlayNetwork(EmptyRectangleSelection())
        overlay.add_peer(make_peer(5, (0.0, 0.0)))
        overlay.add_peer(make_peer(7, (1.0, 1.0)))
        assert overlay.selected_neighbours(7) == frozenset({5})

    def test_removal_strips_links(self):
        overlay = OverlayNetwork(EmptyRectangleSelection())
        overlay.add_peer(make_peer(0, (0.0, 0.0)))
        overlay.add_peer(make_peer(1, (1.0, 1.0)), bootstrap={0})
        overlay.remove_peer(0)
        assert overlay.selected_neighbours(1) == frozenset()

    def test_gossip_radius_validation(self):
        with pytest.raises(ValueError):
            OverlayNetwork(EmptyRectangleSelection(), gossip_radius=0)


class TestConvergence:
    def test_full_knowledge_convergence_matches_equilibrium(self):
        peers = generate_peers(20, 2, seed=5)
        incremental = OverlayNetwork(EmptyRectangleSelection())
        for peer in peers:
            incremental.insert_and_converge(peer)
        equilibrium = OverlayNetwork.build_equilibrium(peers, EmptyRectangleSelection())
        assert incremental.directed_neighbour_map() == equilibrium.directed_neighbour_map()

    def test_gossip_limited_convergence_matches_equilibrium_for_large_radius(self):
        peers = generate_peers(15, 2, seed=9)
        limited = OverlayNetwork.build_incremental(
            peers, EmptyRectangleSelection(), gossip_radius=6
        )
        equilibrium = OverlayNetwork.build_equilibrium(peers, EmptyRectangleSelection())
        assert limited.snapshot().edges() == equilibrium.snapshot().edges()

    def test_converge_returns_round_count(self):
        peers = generate_peers(10, 2, seed=1)
        overlay = OverlayNetwork(EmptyRectangleSelection())
        for peer in peers:
            overlay.add_peer(peer)
        rounds = overlay.converge()
        assert rounds >= 1
        # A second convergence call finds the fixed point immediately.
        assert overlay.converge() == 1

    def test_convergence_error_reports_the_round_budget(self):
        error = ConvergenceError(7)
        assert error.rounds == 7
        assert "7" in str(error)

    def test_fresh_bulk_population_needs_more_than_one_round(self):
        """Dropping 12 unconnected peers in at once cannot settle in a single round."""
        peers = generate_peers(12, 2, seed=2)
        overlay = OverlayNetwork(EmptyRectangleSelection())
        for peer in peers:
            overlay.add_peer(peer, bootstrap=())
        assert overlay.reselect_round() is True
        overlay.converge()
        assert overlay.reselect_round() is False

    def test_max_rounds_validation(self):
        overlay = OverlayNetwork(EmptyRectangleSelection())
        overlay.add_peer(make_peer(0, (0.0, 0.0)))
        with pytest.raises(ValueError):
            overlay.converge(max_rounds=0)

    def test_remove_and_converge(self):
        peers = generate_peers(12, 2, seed=3)
        overlay = OverlayNetwork.build_equilibrium(peers, EmptyRectangleSelection())
        overlay.remove_and_converge(peers[0].peer_id)
        remaining = generate_peers(12, 2, seed=3)[1:]
        expected = OverlayNetwork.build_equilibrium(remaining, EmptyRectangleSelection())
        assert overlay.directed_neighbour_map() == expected.directed_neighbour_map()


class TestEquilibriumBuilder:
    def test_duplicate_ids_rejected(self):
        peers = [make_peer(0, (0.0, 0.0)), make_peer(0, (1.0, 1.0))]
        with pytest.raises(ValueError):
            OverlayNetwork.build_equilibrium(peers, EmptyRectangleSelection())

    def test_mixed_dimension_population_rejected(self):
        """The bulk builder validates dimensions the way add_peer does."""
        peers = [
            make_peer(0, (0.0, 0.0)),
            make_peer(1, (1.0, 1.0)),
            make_peer(2, (2.0, 2.0, 2.0)),
        ]
        with pytest.raises(ValueError, match="dimension"):
            OverlayNetwork.build_equilibrium(peers, EmptyRectangleSelection())

    def test_snapshot_contains_all_peers(self, peers_2d):
        overlay = OverlayNetwork.build_equilibrium(peers_2d, EmptyRectangleSelection())
        snapshot = overlay.snapshot()
        assert snapshot.peer_count == len(peers_2d)
        assert set(snapshot.peers) == {p.peer_id for p in peers_2d}

    def test_orthogonal_equilibrium_is_connected(self):
        peers = generate_peers(40, 3, seed=17)
        overlay = OverlayNetwork.build_equilibrium(peers, OrthogonalHyperplanesSelection(k=1))
        assert overlay.snapshot().is_connected()

    def test_knowledge_set_full_knowledge(self, peers_2d):
        overlay = OverlayNetwork.build_equilibrium(peers_2d, EmptyRectangleSelection())
        knowledge = overlay.knowledge_set(peers_2d[0].peer_id)
        assert len(knowledge) == len(peers_2d) - 1

    def test_knowledge_set_unknown_peer(self, peers_2d):
        overlay = OverlayNetwork.build_equilibrium(peers_2d, EmptyRectangleSelection())
        with pytest.raises(KeyError):
            overlay.knowledge_set(10_000)


class TestGossipLimitedKnowledge:
    def test_knowledge_set_respects_radius(self):
        peers = [make_peer(i, (float(i), float(i % 2))) for i in range(5)]
        overlay = OverlayNetwork(EmptyRectangleSelection(), gossip_radius=1)
        for peer in peers:
            overlay.add_peer(peer)
        # Build a line topology by hand through bootstrap-only neighbours.
        for index in range(1, 5):
            overlay._neighbours[index] = {index - 1}  # noqa: SLF001 - test shortcut
        overlay._neighbours[0] = set()  # noqa: SLF001
        knowledge_ids = {p.peer_id for p in overlay.knowledge_set(2)}
        assert knowledge_ids == {1, 3}
