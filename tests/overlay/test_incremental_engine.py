"""Tests for the incremental reselection engine and the batched select APIs.

The engine's contract is exact equivalence with the full-sweep reference
path: same directed neighbour maps after every membership event, under full
knowledge and under a bounded gossip radius.  These tests pin that contract
on deterministic workloads; the hypothesis cross-checks live in
``test_incremental_properties.py``.
"""

import random

import pytest

from repro.overlay.gossip import (
    changed_edge_endpoints,
    knowledge_set_deltas,
    knowledge_sets,
    peers_within_hops_of_any,
)
from repro.overlay.incremental import (
    RESELECT_ADDITIVE,
    RESELECT_FULL,
    RESELECT_SKIP,
    classify_reselect,
)
from repro.overlay.network import OverlayNetwork
from repro.overlay.peer import make_peer
from repro.overlay.selection.base import NeighbourSelectionMethod
from repro.overlay.selection.empty_rectangle import EmptyRectangleSelection
from repro.overlay.selection.k_closest import KClosestSelection
from repro.overlay.selection.orthogonal import OrthogonalHyperplanesSelection
from repro.workloads.peers import generate_peers


def _paired_overlays(selection_factory, peers, *, gossip_radius=None, seed=3):
    """The same insertion sequence on the incremental and full-sweep paths."""
    fast = OverlayNetwork.build_incremental(
        peers,
        selection_factory(),
        gossip_radius=gossip_radius,
        rng=random.Random(seed),
        incremental=True,
    )
    slow = OverlayNetwork.build_incremental(
        peers,
        selection_factory(),
        gossip_radius=gossip_radius,
        rng=random.Random(seed),
        incremental=False,
    )
    return fast, slow


class TestFixedPointEquivalence:
    @pytest.mark.parametrize(
        "selection_factory",
        [
            EmptyRectangleSelection,
            lambda: OrthogonalHyperplanesSelection(k=2),
            lambda: KClosestSelection(k=3),
        ],
        ids=["empty-rectangle", "orthogonal", "k-closest"],
    )
    @pytest.mark.parametrize("gossip_radius", [None, 2], ids=["full", "radius2"])
    def test_insertions_reach_the_full_sweep_fixed_point(
        self, selection_factory, gossip_radius
    ):
        peers = generate_peers(24, 2, seed=31)
        fast, slow = _paired_overlays(
            selection_factory, peers, gossip_radius=gossip_radius
        )
        assert fast.directed_neighbour_map() == slow.directed_neighbour_map()

    @pytest.mark.parametrize("gossip_radius", [None, 2], ids=["full", "radius2"])
    def test_departures_reach_the_full_sweep_fixed_point(self, gossip_radius):
        peers = generate_peers(22, 3, seed=8)
        fast, slow = _paired_overlays(
            EmptyRectangleSelection, peers, gossip_radius=gossip_radius
        )
        for victim in [peer.peer_id for peer in peers[::4]]:
            fast.remove_and_converge(victim, incremental=True)
            slow.remove_and_converge(victim, incremental=False)
            assert fast.directed_neighbour_map() == slow.directed_neighbour_map()

    def test_interleaved_churn_matches_full_sweep(self):
        peers = generate_peers(30, 2, seed=55)
        fast = OverlayNetwork(EmptyRectangleSelection())
        slow = OverlayNetwork(EmptyRectangleSelection())
        rng = random.Random(7)
        alive = []
        for peer in peers:
            bootstrap = {rng.choice(alive)} if alive else set()
            fast.insert_and_converge(peer, bootstrap=bootstrap, incremental=True)
            slow.insert_and_converge(peer, bootstrap=bootstrap, incremental=False)
            alive.append(peer.peer_id)
            if len(alive) > 5 and rng.random() < 0.35:
                victim = rng.choice(alive)
                alive.remove(victim)
                fast.remove_and_converge(victim, incremental=True)
                slow.remove_and_converge(victim, incremental=False)
            assert fast.directed_neighbour_map() == slow.directed_neighbour_map()

    def test_incremental_matches_the_equilibrium_builder(self):
        peers = generate_peers(25, 2, seed=5)
        overlay = OverlayNetwork.build_incremental(
            peers, EmptyRectangleSelection(), incremental=True
        )
        equilibrium = OverlayNetwork.build_equilibrium(peers, EmptyRectangleSelection())
        assert overlay.directed_neighbour_map() == equilibrium.directed_neighbour_map()


class TestEngineLifecycle:
    def test_converged_overlay_has_no_dirty_peers(self):
        peers = generate_peers(15, 2, seed=2)
        overlay = OverlayNetwork.build_incremental(
            peers, EmptyRectangleSelection(), incremental=True
        )
        assert overlay._engine is not None  # noqa: SLF001 - white-box check
        assert overlay._engine.dirty_peers == frozenset()  # noqa: SLF001

    def test_membership_events_dirty_the_engine(self):
        peers = generate_peers(12, 2, seed=9)
        overlay = OverlayNetwork.build_incremental(
            peers, EmptyRectangleSelection(), incremental=True
        )
        overlay.add_peer(make_peer(100, (0.123, 0.456)))
        engine = overlay._engine  # noqa: SLF001
        assert 100 in engine.dirty_peers
        overlay.converge(incremental=True)
        assert engine.dirty_peers == frozenset()

    def test_full_sweep_round_invalidates_the_engine(self):
        peers = generate_peers(14, 2, seed=4)
        overlay = OverlayNetwork.build_incremental(
            peers, EmptyRectangleSelection(), incremental=True
        )
        overlay.reselect_round()
        assert overlay._engine is None  # noqa: SLF001
        # A later incremental convergence bootstraps a fresh engine and still
        # lands on the correct fixed point.
        overlay.insert_and_converge(make_peer(200, (0.321, 0.654)), incremental=True)
        expected = OverlayNetwork.build_equilibrium(
            peers + [make_peer(200, (0.321, 0.654))], EmptyRectangleSelection()
        )
        assert overlay.directed_neighbour_map() == expected.directed_neighbour_map()

    def test_incremental_converge_reports_rounds(self):
        peers = generate_peers(10, 2, seed=1)
        overlay = OverlayNetwork(EmptyRectangleSelection())
        for peer in peers:
            overlay.add_peer(peer)
        rounds = overlay.converge(incremental=True)
        assert rounds >= 1
        assert overlay.converge(incremental=True) == 1


class TestSelectManyAgreement:
    @pytest.mark.parametrize(
        "selection_factory",
        [
            EmptyRectangleSelection,
            lambda: OrthogonalHyperplanesSelection(k=2),
            lambda: KClosestSelection(k=4),
        ],
        ids=["empty-rectangle", "orthogonal", "k-closest"],
    )
    @pytest.mark.parametrize("count", [10, 80])
    def test_select_many_matches_the_per_peer_loop(self, selection_factory, count):
        peers = generate_peers(count, 3, seed=count)
        selection = selection_factory()
        candidates_by_peer = {
            reference.peer_id: [p for p in peers if p.peer_id != reference.peer_id]
            for reference in peers
        }
        batched = selection.select_many(peers, candidates_by_peer)
        for reference in peers:
            expected = selection.select(
                reference, candidates_by_peer[reference.peer_id]
            )
            assert sorted(batched[reference.peer_id]) == sorted(expected)

    def test_select_many_additive_matches_full_reselection(self):
        peers = generate_peers(60, 2, seed=77)
        joiner, existing = peers[-1], peers[:-1]
        selection = EmptyRectangleSelection()
        equilibrium = selection.compute_equilibrium(existing)
        updates = []
        for reference in existing:
            selected = [p for p in existing if p.peer_id in equilibrium[reference.peer_id]]
            updates.append((reference, selected, [joiner]))
        delta_results = selection.select_many_additive(updates)
        assert delta_results is not None
        for reference in existing:
            full = selection.select(
                reference, [p for p in peers if p.peer_id != reference.peer_id]
            )
            previous = sorted(equilibrium[reference.peer_id])
            got = delta_results.get(reference.peer_id)
            if got is None:
                # Omitted references must genuinely be unchanged.
                assert full == previous
            else:
                assert sorted(got) == full

    def test_select_many_additive_handles_multiple_gains(self):
        peers = generate_peers(40, 2, seed=13)
        gained, existing = peers[-3:], peers[:-3]
        selection = EmptyRectangleSelection()
        equilibrium = selection.compute_equilibrium(existing)
        updates = []
        for reference in existing:
            selected = [p for p in existing if p.peer_id in equilibrium[reference.peer_id]]
            updates.append((reference, selected, list(gained)))
        delta_results = selection.select_many_additive(updates)
        for reference in existing:
            full = selection.select(
                reference, [p for p in peers if p.peer_id != reference.peer_id]
            )
            got = delta_results.get(reference.peer_id)
            result = sorted(got) if got is not None else sorted(equilibrium[reference.peer_id])
            assert result == full

    def test_base_select_many_additive_is_unimplemented(self):
        # The abstract base has no specialised delta rule; the hyperplane
        # family now does (the per-region top-K update), so an empty batch
        # yields an empty dict ("no changes"), not the None fallback marker.
        class _Plain(NeighbourSelectionMethod):
            def select(self, reference, candidates):  # pragma: no cover - stub
                return []

        assert _Plain().select_many_additive([]) is None
        assert OrthogonalHyperplanesSelection(k=1).select_many_additive([]) == {}

    def test_hyperplane_select_many_additive_matches_full_reselection(self):
        peers = generate_peers(60, 3, seed=78)
        joiner, existing = peers[-1], peers[:-1]
        for selection in (
            OrthogonalHyperplanesSelection(k=1),
            OrthogonalHyperplanesSelection(k=2),
            KClosestSelection(k=3),
        ):
            equilibrium = selection.compute_equilibrium(existing)
            updates = []
            for reference in existing:
                selected = [
                    p for p in existing if p.peer_id in equilibrium[reference.peer_id]
                ]
                updates.append((reference, selected, [joiner]))
            delta_results = selection.select_many_additive(updates)
            assert delta_results is not None
            for reference in existing:
                full = sorted(
                    selection.select(
                        reference, [p for p in peers if p.peer_id != reference.peer_id]
                    )
                )
                got = delta_results.get(reference.peer_id)
                if got is None:
                    assert full == sorted(equilibrium[reference.peer_id])
                else:
                    assert sorted(got) == full


class TestGossipDeltas:
    def test_changed_edge_endpoints_detects_edge_and_membership_changes(self):
        old = {0: {1}, 1: {0}, 2: set()}
        new = {0: {1, 2}, 1: {0}, 2: {0}, 3: set()}
        assert changed_edge_endpoints(old, new) == {0, 2, 3}

    def test_no_changes_means_no_endpoints(self):
        adjacency = {0: {1}, 1: {0}}
        assert changed_edge_endpoints(adjacency, adjacency) == set()

    def test_multi_source_bfs_includes_sources_and_respects_radius(self):
        line = {i: {i - 1, i + 1} for i in range(1, 5)}
        line[0] = {1}
        line[5] = {4}
        assert peers_within_hops_of_any(line, [0], 2) == {0, 1, 2}
        assert peers_within_hops_of_any(line, [0, 5], 1) == {0, 1, 4, 5}
        assert peers_within_hops_of_any(line, [99], 3) == set()

    def test_knowledge_set_deltas_only_reports_real_changes(self):
        old = {0: {1}, 1: {0, 2}, 2: {1, 3}, 3: {2, 4}, 4: {3}}
        known = knowledge_sets(old, 2)
        new = {0: {1}, 1: {0, 2}, 2: {1, 3}, 3: {2, 4}, 4: {3, 0}}
        deltas = knowledge_set_deltas(old, new, 2, known)
        fresh = knowledge_sets(new, 2)
        assert deltas  # the new 0-4 edge changes several footprints
        for peer_id, reachable in deltas.items():
            assert reachable == fresh[peer_id]
            assert reachable != known[peer_id]
        # Peers absent from the deltas really are unchanged.
        for peer_id in set(new) - set(deltas):
            assert fresh[peer_id] == known[peer_id]

    def test_knowledge_set_deltas_ignores_untouched_graph(self):
        adjacency = {0: {1}, 1: {0, 2}, 2: {1}}
        known = knowledge_sets(adjacency, 2)
        assert knowledge_set_deltas(adjacency, adjacency, 2, known) == {}


class TestClassifyReselect:
    """The shared full/skip/additive decision rule."""

    def test_no_history_forces_full(self):
        assert classify_reselect(None, set(), set(), set(), True) == RESELECT_FULL

    def test_empty_delta_skips_for_any_method(self):
        last = frozenset({1, 2, 3})
        for path_independent in (True, False):
            verdict = classify_reselect(last, set(), set(), {2}, path_independent)
            assert verdict == RESELECT_SKIP

    def test_lost_selected_candidate_forces_full(self):
        last = frozenset({1, 2, 3})
        assert classify_reselect(last, set(), {2}, {2, 3}, True) == RESELECT_FULL

    def test_lost_never_selected_candidate_skips_when_path_independent(self):
        last = frozenset({1, 2, 3})
        assert classify_reselect(last, set(), {1}, {2, 3}, True) == RESELECT_SKIP
        assert classify_reselect(last, set(), {1}, {2, 3}, False) == RESELECT_FULL

    def test_pure_gain_is_additive_when_path_independent(self):
        last = frozenset({1, 2})
        assert classify_reselect(last, {9}, set(), {1}, True) == RESELECT_ADDITIVE
        assert classify_reselect(last, {9}, set(), {1}, False) == RESELECT_FULL

    def test_gain_with_harmless_loss_is_additive(self):
        last = frozenset({1, 2, 3})
        verdict = classify_reselect(last, {9}, {1}, {2, 3}, True)
        assert verdict == RESELECT_ADDITIVE
