"""Unit tests for repro.overlay.peer."""

import pytest

from repro.geometry.point import Point
from repro.overlay.peer import NetworkAddress, PeerInfo, make_peer


class TestNetworkAddress:
    def test_valid_address(self):
        address = NetworkAddress("10.0.0.1", 7000)
        assert str(address) == "10.0.0.1:7000"

    def test_empty_host_rejected(self):
        with pytest.raises(ValueError):
            NetworkAddress("", 7000)

    @pytest.mark.parametrize("port", [0, -1, 65536, 100000])
    def test_invalid_port_rejected(self, port):
        with pytest.raises(ValueError):
            NetworkAddress("10.0.0.1", port)

    def test_addresses_are_ordered_and_hashable(self):
        a = NetworkAddress("10.0.0.1", 7000)
        b = NetworkAddress("10.0.0.1", 7001)
        assert a < b
        assert len({a, b, NetworkAddress("10.0.0.1", 7000)}) == 2


class TestPeerInfo:
    def test_coordinates_are_coerced_to_point(self):
        peer = PeerInfo(0, (1.0, 2.0), NetworkAddress("h", 1000))
        assert isinstance(peer.coordinates, Point)
        assert peer.dimension == 2

    def test_negative_peer_id_rejected(self):
        with pytest.raises(ValueError):
            PeerInfo(-1, (1.0,), NetworkAddress("h", 1000))

    def test_negative_lifetime_rejected(self):
        with pytest.raises(ValueError):
            PeerInfo(0, (1.0,), NetworkAddress("h", 1000), lifetime=-5.0)

    def test_with_lifetime_coordinate_replaces_first_axis(self):
        peer = PeerInfo(3, (9.0, 2.0, 5.0), NetworkAddress("h", 1000), lifetime=77.0)
        embedded = peer.with_lifetime_coordinate()
        assert tuple(embedded.coordinates) == (77.0, 2.0, 5.0)
        assert embedded.lifetime == 77.0
        assert embedded.peer_id == 3

    def test_with_lifetime_coordinate_requires_lifetime(self):
        peer = PeerInfo(3, (9.0, 2.0), NetworkAddress("h", 1000))
        with pytest.raises(ValueError):
            peer.with_lifetime_coordinate()

    def test_peer_info_is_frozen(self):
        peer = PeerInfo(0, (1.0,), NetworkAddress("h", 1000))
        with pytest.raises(AttributeError):
            peer.peer_id = 7  # type: ignore[misc]


class TestMakePeer:
    def test_fabricates_unique_addresses(self):
        peers = [make_peer(i, (float(i), float(i))) for i in range(50)]
        addresses = {(p.address.host, p.address.port) for p in peers}
        assert len(addresses) == 50

    def test_respects_explicit_host_and_port(self):
        peer = make_peer(1, (0.0,), host="192.168.0.1", port=9999)
        assert peer.address == NetworkAddress("192.168.0.1", 9999)

    def test_lifetime_is_carried_through(self):
        peer = make_peer(1, (0.0,), lifetime=123.0)
        assert peer.lifetime == 123.0
