"""Unit and property tests for the empty-rectangle selection method."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.overlay.peer import make_peer
from repro.overlay.selection.empty_rectangle import (
    EmptyRectangleSelection,
    brute_force_empty_rectangle_neighbours,
)
from repro.workloads.peers import generate_peers


class TestSmallConfigurations:
    def test_two_peers_always_neighbours(self):
        a = make_peer(0, (0.0, 0.0))
        b = make_peer(1, (1.0, 1.0))
        assert EmptyRectangleSelection().select(a, [b]) == [1]

    def test_blocking_peer_removes_the_far_neighbour(self):
        reference = make_peer(0, (0.0, 0.0))
        blocker = make_peer(1, (1.0, 1.0))
        blocked = make_peer(2, (2.0, 2.0))
        chosen = EmptyRectangleSelection().select(reference, [blocker, blocked])
        assert chosen == [1]

    def test_peers_in_different_quadrants_do_not_block_each_other(self):
        reference = make_peer(0, (0.0, 0.0))
        north_east = make_peer(1, (2.0, 2.0))
        south_west = make_peer(2, (-1.0, -1.0))
        chosen = EmptyRectangleSelection().select(reference, [north_east, south_west])
        assert chosen == [1, 2]

    def test_no_candidates(self):
        reference = make_peer(0, (0.0, 0.0))
        assert EmptyRectangleSelection().select(reference, []) == []
        assert EmptyRectangleSelection().select(reference, [reference]) == []

    def test_selection_is_symmetric_at_full_knowledge(self, peers_2d):
        selection = EmptyRectangleSelection()
        neighbours = selection.compute_equilibrium(peers_2d)
        for peer_id, selected in neighbours.items():
            for other in selected:
                assert peer_id in neighbours[other]


class TestAgainstBruteForce:
    @pytest.mark.parametrize("dimension", [2, 3, 4])
    @pytest.mark.parametrize("count", [5, 15, 30])
    def test_select_matches_brute_force(self, dimension, count):
        peers = generate_peers(count, dimension, seed=dimension * 100 + count)
        selection = EmptyRectangleSelection()
        for reference in peers[:10]:
            candidates = [p for p in peers if p.peer_id != reference.peer_id]
            fast = selection.select(reference, candidates)
            slow = brute_force_empty_rectangle_neighbours(reference, candidates)
            assert fast == slow

    @pytest.mark.parametrize("dimension", [2, 3])
    def test_equilibrium_matches_per_peer_selection(self, dimension):
        peers = generate_peers(25, dimension, seed=dimension)
        selection = EmptyRectangleSelection()
        equilibrium = selection.compute_equilibrium(peers)
        for reference in peers:
            candidates = [p for p in peers if p.peer_id != reference.peer_id]
            assert equilibrium[reference.peer_id] == set(selection.select(reference, candidates))


coordinate = st.floats(min_value=0.0, max_value=1000.0, allow_nan=False)


@st.composite
def distinct_point_sets(draw, dimension=2, min_size=2, max_size=12):
    count = draw(st.integers(min_value=min_size, max_value=max_size))
    axes = []
    for _ in range(dimension):
        values = draw(
            st.lists(coordinate, min_size=count, max_size=count, unique=True)
        )
        axes.append(values)
    return [tuple(axes[d][i] for d in range(dimension)) for i in range(count)]


class TestEmptyRectangleProperties:
    @given(distinct_point_sets(dimension=2))
    @settings(max_examples=60, deadline=None)
    def test_fast_path_equals_definition_2d(self, coordinates):
        peers = [make_peer(i, c) for i, c in enumerate(coordinates)]
        selection = EmptyRectangleSelection()
        reference = peers[0]
        candidates = peers[1:]
        assert selection.select(reference, candidates) == (
            brute_force_empty_rectangle_neighbours(reference, candidates)
        )

    @given(distinct_point_sets(dimension=3, max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_fast_path_equals_definition_3d(self, coordinates):
        peers = [make_peer(i, c) for i, c in enumerate(coordinates)]
        selection = EmptyRectangleSelection()
        reference = peers[0]
        candidates = peers[1:]
        assert selection.select(reference, candidates) == (
            brute_force_empty_rectangle_neighbours(reference, candidates)
        )

    @given(distinct_point_sets(dimension=2, min_size=3))
    @settings(max_examples=40, deadline=None)
    def test_a_nearest_candidate_is_always_selected(self, coordinates):
        """Some candidate at minimal L1 distance can never be blocked.

        (Any peer inside the bounding box of the reference and a candidate is
        at most as far away in L1, so a blocked minimal-distance candidate
        would have to be blocked by another minimal-distance candidate.)
        """
        peers = [make_peer(i, c) for i, c in enumerate(coordinates)]
        reference = peers[0]
        candidates = peers[1:]
        distances = {
            p.peer_id: sum(
                abs(a - b) for a, b in zip(p.coordinates, reference.coordinates)
            )
            for p in candidates
        }
        minimum = min(distances.values())
        nearest_ids = {pid for pid, d in distances.items() if d == minimum}
        chosen = EmptyRectangleSelection().select(reference, candidates)
        assert nearest_ids & set(chosen)


class TestConnectivity:
    """The empty-rectangle overlay at full knowledge is always connected.

    Every peer keeps its nearest peer in each non-empty orthant, and in
    particular its globally nearest peer, which is a classical sufficient
    condition for connectivity of proximity graphs on distinct points.
    """

    @pytest.mark.parametrize("dimension", [2, 3, 4, 5])
    def test_connected_for_random_populations(self, dimension):
        from repro.overlay.network import OverlayNetwork

        peers = generate_peers(60, dimension, seed=dimension * 7)
        overlay = OverlayNetwork.build_equilibrium(peers, EmptyRectangleSelection())
        assert overlay.snapshot().is_connected()
