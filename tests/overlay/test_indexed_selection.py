"""Property-based cross-checks: index-backed selection vs the scan paths.

The spatial index exists to *replace* the candidate-set scans, so the whole
contract is byte-identity: a selection method given ``index=`` must produce
the same selection as the same method given the materialised candidate
list, and an :class:`~repro.overlay.network.OverlayNetwork` that owns an
index must follow the identical convergence trajectory -- same per-step
neighbour maps, same round counts -- to the identical fixed point and
byte-identical maintained stability tree as the scan-path overlay, under
arbitrary interleavings of joins, leaves and batched epochs.

Populations honour the paper's distinct-coordinate assumption (the same
strategy the engine cross-checks use); distinct first coordinates double as
distinct lifetimes, so the stability tree is well-defined throughout.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.index import SpatialIndex
from repro.multicast.incremental import StabilityTreeMaintainer
from repro.overlay.network import BatchJoin, ConvergenceError, OverlayNetwork
from repro.overlay.peer import make_peer
from repro.overlay.selection.empty_rectangle import EmptyRectangleSelection
from repro.overlay.selection.k_closest import KClosestSelection
from repro.overlay.selection.orthogonal import OrthogonalHyperplanesSelection
from repro.overlay.selection.sign_vectors import SignCoefficientHyperplanesSelection


def _populations(min_size=2, max_size=16, max_dimension=3):
    """Random populations with pairwise-distinct per-axis coordinates."""

    @st.composite
    def build(draw):
        count = draw(st.integers(min_value=min_size, max_value=max_size))
        dimension = draw(st.integers(min_value=2, max_value=max_dimension))
        axes = [
            draw(
                st.lists(
                    st.integers(min_value=0, max_value=9999),
                    min_size=count,
                    max_size=count,
                    unique=True,
                )
            )
            for _ in range(dimension)
        ]
        return [
            make_peer(index, tuple(float(axis[index]) / 8 for axis in axes))
            for index in range(count)
        ]

    return build()


_SELECTIONS = st.sampled_from(
    [
        EmptyRectangleSelection,
        lambda: OrthogonalHyperplanesSelection(k=1),
        lambda: OrthogonalHyperplanesSelection(k=2),
        lambda: OrthogonalHyperplanesSelection(k=2, distance="l1"),
        lambda: SignCoefficientHyperplanesSelection(k=1),
        lambda: KClosestSelection(k=2),
        lambda: KClosestSelection(k=3, distance="linf"),
    ]
)


@settings(max_examples=60, deadline=None)
@given(peers=_populations(min_size=2, max_size=18), selection_factory=_SELECTIONS)
def test_indexed_select_equals_scan_select(peers, selection_factory):
    """``select(index=)`` == ``select(candidates)`` for every reference peer.

    The index holds the whole population including the reference (the
    overlay's maintenance contract); the scan receives the same population
    as a candidate list.  Byte-identical output lists are required -- same
    ids in the same order -- as is agreement of the batched ``select_many``
    entry point the convergence engine uses.
    """
    selection = selection_factory()
    assert selection.supports_index
    index = SpatialIndex()
    for peer in peers:
        index.insert(peer.peer_id, peer.coordinates)
    batched = selection.select_many(peers, {}, index=index)
    for reference in peers:
        scan = selection.select(reference, peers)
        fast = selection.select(reference, (), index=index)
        assert fast == scan  # byte-identical: same ids, same emission order
        assert batched[reference.peer_id] == fast


@settings(max_examples=30, deadline=None)
@given(
    peers=_populations(min_size=4, max_size=14),
    selection_factory=_SELECTIONS,
    script_seed=st.integers(min_value=0, max_value=999),
)
def test_indexed_overlay_tracks_scan_overlay_under_churn(
    peers, selection_factory, script_seed
):
    """Join/leave/batch schedules stay in lockstep: maps, rounds and trees.

    Both overlays replay the identical schedule -- single insertions and
    departures through the per-event path, plus whole epochs through
    ``apply_batch`` -- with live stability-tree maintainers attached.  After
    every step the directed neighbour maps, the convergence round counts
    and the maintained parent maps must agree exactly, and the owned index
    must hold exactly the alive population.
    """
    rng = random.Random(script_seed)
    fast = OverlayNetwork(selection_factory(), use_index=True)
    slow = OverlayNetwork(selection_factory(), use_index=False)
    maintainers = None
    alive = []
    pending = list(peers)
    while pending or (alive and rng.random() < 0.4):
        action = rng.random()
        if alive and len(alive) >= 2 and action < 0.2:
            # One batched epoch: a couple of leaves and joins, one converge.
            events = []
            for victim in rng.sample(alive, min(2, len(alive) - 1)):
                events.append(victim)
                alive.remove(victim)
            while pending and rng.random() < 0.6:
                joiner = pending.pop()
                bootstrap = frozenset({rng.choice(alive)}) if alive else frozenset()
                events.append(BatchJoin(joiner, bootstrap=bootstrap))
                alive.append(joiner.peer_id)
            fast_rounds = fast.apply_batch(events, incremental=True)
            slow_rounds = slow.apply_batch(events, incremental=True)
        elif alive and (not pending or action < 0.35):
            victim = rng.choice(alive)
            alive.remove(victim)
            fast_rounds = fast.remove_and_converge(victim, incremental=True)
            slow_rounds = slow.remove_and_converge(victim, incremental=True)
        else:
            joiner = pending.pop()
            bootstrap = {rng.choice(alive)} if alive else set()
            fast_rounds = fast.insert_and_converge(
                joiner, bootstrap=bootstrap, incremental=True
            )
            slow_rounds = slow.insert_and_converge(
                joiner, bootstrap=bootstrap, incremental=True
            )
            alive.append(joiner.peer_id)
        if maintainers is None and fast.peer_count:
            maintainers = (StabilityTreeMaintainer(fast), StabilityTreeMaintainer(slow))
        assert fast_rounds == slow_rounds
        assert fast.directed_neighbour_map() == slow.directed_neighbour_map()
        assert fast.index is not None and slow.index is None
        assert fast.index.ids() == fast.peer_ids
        if maintainers is not None:
            fast_tree, slow_tree = maintainers
            fast_tree.refresh()
            slow_tree.refresh()
            assert fast_tree.engine.parent_map() == slow_tree.engine.parent_map()


@settings(max_examples=15, deadline=None)
@given(
    peers=_populations(min_size=4, max_size=12),
    selection_factory=_SELECTIONS,
    gossip_radius=st.sampled_from([2, 3]),
    seed=st.integers(min_value=0, max_value=999),
)
def test_bounded_gossip_radius_falls_back_to_scans(
    peers, selection_factory, gossip_radius, seed
):
    """Under a gossip radius the index never answers selections.

    Candidate sets are per-peer bounded-hop subsets there, so the overlay
    must scan; forcing the index on anyway must change nothing -- it is
    maintained but unused.
    """
    fast = OverlayNetwork.build_incremental(
        peers,
        selection_factory(),
        gossip_radius=gossip_radius,
        rng=random.Random(seed),
        use_index=True,
    )
    slow = OverlayNetwork.build_incremental(
        peers,
        selection_factory(),
        gossip_radius=gossip_radius,
        rng=random.Random(seed),
        use_index=False,
    )
    assert fast._selection_index() is None  # the fast path is gated off
    assert fast.index is not None and fast.index.ids() == fast.peer_ids
    assert fast.directed_neighbour_map() == slow.directed_neighbour_map()


@settings(max_examples=20, deadline=None)
@given(peers=_populations(min_size=3, max_size=14), selection_factory=_SELECTIONS)
def test_build_equilibrium_populates_the_owned_index(peers, selection_factory):
    """The bulk equilibrium builder must leave the index membership-exact.

    ``build_equilibrium`` fills the peer map directly rather than through
    ``add_peer``; a stale-empty index there would silently poison every
    later indexed convergence, so membership is part of the contract.
    """
    overlay = OverlayNetwork.build_equilibrium(peers, selection_factory())
    assert overlay.index is not None
    assert overlay.index.ids() == overlay.peer_ids
    # A follow-up indexed convergence sits at the same fixed point a scan
    # overlay reaches from the same state.
    rounds = overlay.converge(incremental=True)
    scan = OverlayNetwork.build_equilibrium(peers, selection_factory(), use_index=False)
    scan_rounds = scan.converge(incremental=True)
    assert rounds == scan_rounds
    assert overlay.directed_neighbour_map() == scan.directed_neighbour_map()


def test_convergence_error_invalidation_matches_scan_path():
    """The PR 4 ``ConvergenceError`` contract holds on the indexed path.

    A too-small ``max_rounds`` raises on both arms; the aborted engines are
    invalidated (next incremental convergence rebootstraps all-dirty), the
    owned index -- maintained by membership, untouched by convergence
    failures -- still mirrors the population exactly, and the recovery
    convergence lands both arms on the identical fixed point.
    """
    rng = random.Random(42)
    peers = [
        make_peer(i, (float(v) / 8, float(w) / 8))
        for i, (v, w) in enumerate(
            zip(rng.sample(range(9999), 30), rng.sample(range(9999), 30))
        )
    ]
    fast = OverlayNetwork(EmptyRectangleSelection(), use_index=True)
    slow = OverlayNetwork(EmptyRectangleSelection(), use_index=False)
    for overlay in (fast, slow):
        for peer in peers[:20]:
            overlay.add_peer(peer)
        overlay.converge(incremental=True)
    for overlay in (fast, slow):
        for peer in peers[20:]:
            overlay.add_peer(peer)
        with pytest.raises(ConvergenceError):
            overlay.converge(max_rounds=1, incremental=True)
    assert fast.index is not None
    assert fast.index.ids() == fast.peer_ids  # membership survived the abort
    fast_rounds = fast.converge(incremental=True)
    slow_rounds = slow.converge(incremental=True)
    assert fast_rounds == slow_rounds
    assert fast.directed_neighbour_map() == slow.directed_neighbour_map()


def test_index_drains_to_empty_with_the_overlay():
    """Removing every peer leaves an empty but alive index."""
    peers = [make_peer(i, (float(i), float(i * 7 % 13))) for i in range(8)]
    overlay = OverlayNetwork(EmptyRectangleSelection(), use_index=True)
    for peer in peers:
        overlay.insert_and_converge(peer, incremental=True)
    for peer in peers:
        overlay.remove_and_converge(peer.peer_id, incremental=True)
    assert overlay.peer_count == 0
    assert overlay.index is not None and len(overlay.index) == 0
    assert overlay.index.dimension == 2  # retained for the next join
    overlay.insert_and_converge(make_peer(99, (1.0, 2.0)), incremental=True)
    assert overlay.index.ids() == [99]
    # An empty overlay accepts a population of any dimension; the index must
    # follow rather than reject the first joiner of the new population.
    overlay.remove_and_converge(99, incremental=True)
    overlay.insert_and_converge(make_peer(7, (1.0, 2.0, 3.0)), incremental=True)
    assert overlay.index.dimension == 3
    assert overlay.index.ids() == [7]


def test_unsupported_methods_never_receive_an_index():
    """A selection without an indexed path keeps the overlay on scans."""

    class ArbitraryDistance(OrthogonalHyperplanesSelection):
        def __init__(self):
            super().__init__(k=1, distance=lambda a, b: sum(abs(x - y) for x, y in zip(a, b)))

    overlay = OverlayNetwork(ArbitraryDistance(), use_index=True)
    assert not overlay.selection.supports_index
    assert overlay._selection_index() is None
    for peer in [make_peer(i, (float(i), float(9 - i))) for i in range(6)]:
        overlay.insert_and_converge(peer, incremental=True)
    with pytest.raises(TypeError, match="no index-backed selection path"):
        overlay.selection.select_many([], {}, index=overlay.index)
    with pytest.raises(TypeError, match="no index-backed selection path"):
        overlay.selection.select_many_additive([], index=overlay.index)
