"""Unit tests for the Hyperplanes selection family and the registry."""

import pytest

from repro.geometry.hyperplane import HyperplaneSet
from repro.overlay.selection.empty_rectangle import EmptyRectangleSelection
from repro.overlay.peer import make_peer
from repro.overlay.selection import (
    HyperplanesSelection,
    KClosestSelection,
    OrthogonalHyperplanesSelection,
    SignCoefficientHyperplanesSelection,
    available_methods,
    make_selection_method,
)
from repro.workloads.peers import generate_peers


def peer_grid():
    """Reference peer at the origin plus one candidate in every quadrant."""
    reference = make_peer(0, (0.0, 0.0))
    candidates = [
        make_peer(1, (1.0, 1.0)),
        make_peer(2, (5.0, 5.0)),
        make_peer(3, (-1.0, 1.5)),
        make_peer(4, (-4.0, 4.0)),
        make_peer(5, (2.0, -1.0)),
        make_peer(6, (-3.0, -3.0)),
    ]
    return reference, candidates


class TestOrthogonalHyperplanesSelection:
    def test_keeps_k_closest_per_quadrant(self):
        reference, candidates = peer_grid()
        selection = OrthogonalHyperplanesSelection(k=1)
        chosen = selection.select(reference, candidates)
        assert set(chosen) == {1, 3, 5, 6}

    def test_larger_k_keeps_more_per_quadrant(self):
        reference, candidates = peer_grid()
        selection = OrthogonalHyperplanesSelection(k=2)
        chosen = selection.select(reference, candidates)
        assert set(chosen) == {1, 2, 3, 4, 5, 6}

    def test_reference_is_never_selected(self):
        reference, candidates = peer_grid()
        selection = OrthogonalHyperplanesSelection(k=3)
        chosen = selection.select(reference, candidates + [reference])
        assert reference.peer_id not in chosen

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            OrthogonalHyperplanesSelection(k=0)

    def test_distance_function_changes_ranking(self):
        reference = make_peer(0, (0.0, 0.0))
        # Same quadrant: L1 prefers (3, 0.5) (3.5 < 4); L-infinity prefers (2, 2) (2 < 3).
        candidates = [make_peer(1, (2.0, 2.0)), make_peer(2, (3.0, 0.5))]
        by_l1 = OrthogonalHyperplanesSelection(k=1, distance="l1").select(reference, candidates)
        by_linf = OrthogonalHyperplanesSelection(k=1, distance="linf").select(
            reference, candidates
        )
        assert by_l1 == [2]
        assert by_linf == [1]

    def test_equilibrium_matches_generic_path(self, peers_2d):
        selection = OrthogonalHyperplanesSelection(k=2)
        fast = selection.compute_equilibrium(peers_2d)
        generic = HyperplanesSelection(HyperplaneSet.orthogonal, k=2).compute_equilibrium(
            peers_2d
        )
        assert fast == generic

    def test_equilibrium_empty_population(self):
        assert OrthogonalHyperplanesSelection(k=1).compute_equilibrium([]) == {}


class TestKClosestSelection:
    def test_single_region_keeps_globally_closest(self):
        reference, candidates = peer_grid()
        chosen = KClosestSelection(k=2).select(reference, candidates)
        assert set(chosen) == {1, 3}

    def test_k_larger_than_population(self):
        reference, candidates = peer_grid()
        chosen = KClosestSelection(k=100).select(reference, candidates)
        assert set(chosen) == {c.peer_id for c in candidates}


class TestSignCoefficientSelection:
    def test_keeps_at_least_the_orthogonal_neighbours(self):
        reference, candidates = peer_grid()
        orthogonal = set(OrthogonalHyperplanesSelection(k=1).select(reference, candidates))
        sign = set(SignCoefficientHyperplanesSelection(k=1).select(reference, candidates))
        # Finer regions can only keep more peers.
        assert len(sign) >= len(orthogonal)

    def test_selects_nothing_without_candidates(self):
        reference, _ = peer_grid()
        assert SignCoefficientHyperplanesSelection(k=1).select(reference, []) == []


class TestGenericHyperplanesSelection:
    def test_factory_dimension_mismatch_is_detected(self):
        selection = HyperplanesSelection(lambda dim: HyperplaneSet.orthogonal(dim + 1), k=1)
        reference, candidates = peer_grid()
        with pytest.raises(ValueError):
            selection.select(reference, candidates)

    def test_candidate_dimension_mismatch_is_detected(self):
        selection = OrthogonalHyperplanesSelection(k=1)
        reference = make_peer(0, (0.0, 0.0))
        with pytest.raises(ValueError):
            selection.select(reference, [make_peer(1, (1.0, 2.0, 3.0))])

    def test_duplicate_candidate_ids_are_ignored(self):
        selection = OrthogonalHyperplanesSelection(k=1)
        reference = make_peer(0, (0.0, 0.0))
        duplicate = make_peer(1, (1.0, 1.0))
        chosen = selection.select(reference, [duplicate, duplicate])
        assert chosen == [1]


class TestRegistry:
    def test_available_methods(self):
        assert set(available_methods()) == {
            "empty-rectangle",
            "orthogonal",
            "sign-coefficients",
            "k-closest",
        }

    @pytest.mark.parametrize(
        "name,expected_type",
        [
            ("orthogonal", OrthogonalHyperplanesSelection),
            ("Orthogonal_Hyperplanes", OrthogonalHyperplanesSelection),
            ("sign", SignCoefficientHyperplanesSelection),
            ("k-closest", KClosestSelection),
            ("h0", KClosestSelection),
        ],
    )
    def test_lookup_with_aliases(self, name, expected_type):
        method = make_selection_method(name, k=3)
        assert isinstance(method, expected_type)
        assert method.k == 3

    def test_empty_rectangle_ignores_parameters(self):
        method = make_selection_method("empty-rectangle", k=5)
        assert type(method).__name__ == "EmptyRectangleSelection"

    def test_unknown_method(self):
        with pytest.raises(ValueError, match="unknown selection method"):
            make_selection_method("voronoi")


class TestSelectAdditive:
    """The single-reference additive API used by the message-level simulator."""

    def _pair(self, selection, count=40, dimension=2, seed=17, split=28):
        peers = generate_peers(count, dimension, seed=seed)
        reference, others = peers[0], peers[1:]
        initial, gained = others[: split - 1], others[split - 1 :]
        selected_ids = set(selection.select(reference, initial))
        selected = [peer for peer in initial if peer.peer_id in selected_ids]
        return reference, others, selected, list(gained)

    def test_matches_the_full_selection_with_a_delta_rule(self):
        selection = EmptyRectangleSelection()
        reference, others, selected, gained = self._pair(selection)
        additive = selection.select_additive(reference, selected, gained)
        assert sorted(additive) == sorted(selection.select(reference, others))

    def test_matches_the_full_selection_via_fallback(self):
        # The hyperplane family is path independent but has no vectorised
        # delta rule: select_additive falls back to selected + gained.
        selection = OrthogonalHyperplanesSelection(k=2)
        reference, others, selected, gained = self._pair(selection, dimension=3)
        additive = selection.select_additive(reference, selected, gained)
        assert sorted(additive) == sorted(selection.select(reference, others))

    def test_unchanged_selection_is_returned_as_is(self):
        selection = EmptyRectangleSelection()
        reference = make_peer(0, (0.0, 0.0))
        selected = [make_peer(1, (1.0, 1.0))]
        # A gained candidate boxed out by the selected one: no change.
        additive = selection.select_additive(reference, selected, [make_peer(2, (5.0, 5.0))])
        assert additive == [1]
