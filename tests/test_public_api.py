"""Smoke tests for the top-level public API (the README quickstart)."""

import repro


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} is exported but missing"

    def test_readme_quickstart(self):
        peers = repro.generate_peers(count=60, dimension=2, seed=7)
        overlay = repro.OverlayNetwork.build_equilibrium(
            peers, repro.EmptyRectangleSelection()
        )
        result = repro.SpacePartitionTreeBuilder().build(overlay.snapshot(), root=0)
        assert result.messages_sent == len(peers) - 1
        assert result.delivered_everywhere

    def test_stability_quickstart(self):
        peers = repro.generate_peers_with_lifetimes(count=60, dimension=3, seed=7)
        overlay = repro.OverlayNetwork.build_equilibrium(
            peers, repro.OrthogonalHyperplanesSelection(k=2)
        )
        tree = repro.build_stability_tree(overlay.snapshot())
        report = repro.simulate_departures(
            tree, sorted(tree.nodes(), key=lambda p: peers[p].lifetime)
        )
        assert report.is_stable
