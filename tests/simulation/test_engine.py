"""Unit tests for the discrete-event engine."""

import pytest

from repro.simulation.engine import SimulationEngine


class TestScheduling:
    def test_events_run_in_time_order(self):
        engine = SimulationEngine()
        order = []
        engine.schedule(2.0, lambda: order.append("late"))
        engine.schedule(1.0, lambda: order.append("early"))
        engine.run()
        assert order == ["early", "late"]
        assert engine.now == 2.0

    def test_simultaneous_events_run_in_scheduling_order(self):
        engine = SimulationEngine()
        order = []
        for label in ("a", "b", "c"):
            engine.schedule(1.0, lambda l=label: order.append(l))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_schedule_after_is_relative_to_now(self):
        engine = SimulationEngine()
        times = []
        engine.schedule(1.0, lambda: engine.schedule_after(0.5, lambda: times.append(engine.now)))
        engine.run()
        assert times == [1.5]

    def test_cannot_schedule_in_the_past(self):
        engine = SimulationEngine()
        engine.schedule(1.0, lambda: None)
        engine.run()
        with pytest.raises(ValueError):
            engine.schedule(0.5, lambda: None)

    def test_negative_delay_rejected(self):
        engine = SimulationEngine()
        with pytest.raises(ValueError):
            engine.schedule_after(-1.0, lambda: None)


class TestExecution:
    def test_run_until_horizon_leaves_later_events_pending(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(1.0, lambda: fired.append(1.0))
        engine.schedule(5.0, lambda: fired.append(5.0))
        executed = engine.run(until=2.0)
        assert executed == 1
        assert fired == [1.0]
        assert engine.now == 2.0
        assert engine.pending_events == 1
        engine.run()
        assert fired == [1.0, 5.0]

    def test_horizon_is_inclusive(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(2.0, lambda: fired.append(2.0))
        engine.run(until=2.0)
        assert fired == [2.0]

    def test_max_events_budget(self):
        engine = SimulationEngine()
        fired = []
        for i in range(5):
            engine.schedule(float(i), lambda i=i: fired.append(i))
        executed = engine.run(max_events=3)
        assert executed == 3
        assert fired == [0, 1, 2]

    def test_step_on_empty_queue_returns_none(self):
        assert SimulationEngine().step() is None

    def test_event_counters(self):
        engine = SimulationEngine()
        engine.schedule(0.0, lambda: None)
        engine.schedule(1.0, lambda: None)
        assert engine.pending_events == 2
        engine.run()
        assert engine.processed_events == 2
        assert engine.pending_events == 0

    def test_events_can_schedule_new_events(self):
        engine = SimulationEngine()
        results = []

        def chain(depth):
            results.append(depth)
            if depth < 3:
                engine.schedule_after(1.0, lambda: chain(depth + 1))

        engine.schedule(0.0, lambda: chain(0))
        engine.run()
        assert results == [0, 1, 2, 3]
        assert engine.now == 3.0
