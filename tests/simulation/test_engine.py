"""Unit tests for the discrete-event engine."""

import pytest

from repro.simulation.engine import SimulationEngine


class TestScheduling:
    def test_events_run_in_time_order(self):
        engine = SimulationEngine()
        order = []
        engine.schedule(2.0, lambda: order.append("late"))
        engine.schedule(1.0, lambda: order.append("early"))
        engine.run()
        assert order == ["early", "late"]
        assert engine.now == 2.0

    def test_simultaneous_events_run_in_scheduling_order(self):
        engine = SimulationEngine()
        order = []
        for label in ("a", "b", "c"):
            engine.schedule(1.0, lambda l=label: order.append(l))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_schedule_after_is_relative_to_now(self):
        engine = SimulationEngine()
        times = []
        engine.schedule(1.0, lambda: engine.schedule_after(0.5, lambda: times.append(engine.now)))
        engine.run()
        assert times == [1.5]

    def test_cannot_schedule_in_the_past(self):
        engine = SimulationEngine()
        engine.schedule(1.0, lambda: None)
        engine.run()
        with pytest.raises(ValueError):
            engine.schedule(0.5, lambda: None)

    def test_negative_delay_rejected(self):
        engine = SimulationEngine()
        with pytest.raises(ValueError):
            engine.schedule_after(-1.0, lambda: None)


class TestExecution:
    def test_run_until_horizon_leaves_later_events_pending(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(1.0, lambda: fired.append(1.0))
        engine.schedule(5.0, lambda: fired.append(5.0))
        executed = engine.run(until=2.0)
        assert executed == 1
        assert fired == [1.0]
        assert engine.now == 2.0
        assert engine.pending_events == 1
        engine.run()
        assert fired == [1.0, 5.0]

    def test_horizon_is_inclusive(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(2.0, lambda: fired.append(2.0))
        engine.run(until=2.0)
        assert fired == [2.0]

    def test_max_events_budget(self):
        engine = SimulationEngine()
        fired = []
        for i in range(5):
            engine.schedule(float(i), lambda i=i: fired.append(i))
        executed = engine.run(max_events=3)
        assert executed == 3
        assert fired == [0, 1, 2]

    def test_step_on_empty_queue_returns_none(self):
        assert SimulationEngine().step() is None

    def test_event_counters(self):
        engine = SimulationEngine()
        engine.schedule(0.0, lambda: None)
        engine.schedule(1.0, lambda: None)
        assert engine.pending_events == 2
        engine.run()
        assert engine.processed_events == 2
        assert engine.pending_events == 0

    def test_events_can_schedule_new_events(self):
        engine = SimulationEngine()
        results = []

        def chain(depth):
            results.append(depth)
            if depth < 3:
                engine.schedule_after(1.0, lambda: chain(depth + 1))

        engine.schedule(0.0, lambda: chain(0))
        engine.run()
        assert results == [0, 1, 2, 3]
        assert engine.now == 3.0


class TestHorizonSemantics:
    """``run(until=...)`` must land the clock on the horizon uniformly."""

    def test_empty_queue_still_advances_to_the_horizon(self):
        engine = SimulationEngine()
        executed = engine.run(until=7.5)
        assert executed == 0
        assert engine.now == 7.5

    def test_drained_queue_advances_to_the_horizon(self):
        engine = SimulationEngine()
        engine.schedule(1.0, lambda: None)
        engine.run(until=10.0)
        assert engine.now == 10.0

    def test_horizon_never_moves_the_clock_backwards(self):
        engine = SimulationEngine()
        engine.schedule(5.0, lambda: None)
        engine.run()
        assert engine.now == 5.0
        engine.run(until=2.0)
        assert engine.now == 5.0

    def test_max_events_exhaustion_does_not_jump_to_the_horizon(self):
        # Exhausting the budget pauses the run mid-stream; jumping the clock
        # to the horizon would make resumed events appear to run in the past.
        engine = SimulationEngine()
        for i in range(4):
            engine.schedule(float(i), lambda: None)
        engine.run(until=100.0, max_events=2)
        assert engine.now == 1.0
        engine.run(until=100.0)
        assert engine.now == 100.0


class TestCancellation:
    def test_cancelled_event_never_executes(self):
        engine = SimulationEngine()
        fired = []
        event = engine.schedule(1.0, lambda: fired.append("cancelled"))
        engine.schedule(2.0, lambda: fired.append("kept"))
        assert engine.cancel(event) is True
        engine.run()
        assert fired == ["kept"]
        assert engine.processed_events == 1
        assert engine.cancelled_events == 1

    def test_cancel_is_idempotent(self):
        engine = SimulationEngine()
        event = engine.schedule(1.0, lambda: None)
        assert engine.cancel(event) is True
        assert engine.cancel(event) is False
        assert engine.cancelled_events == 1

    def test_cancel_after_execution_reports_false(self):
        engine = SimulationEngine()
        event = engine.schedule(1.0, lambda: None)
        engine.run()
        assert engine.cancel(event) is False

    def test_pending_events_excludes_cancelled(self):
        engine = SimulationEngine()
        event = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        assert engine.pending_events == 2
        engine.cancel(event)
        assert engine.pending_events == 1

    def test_run_over_only_tombstones_reaches_the_horizon(self):
        engine = SimulationEngine()
        events = [engine.schedule(float(i), lambda: None) for i in range(3)]
        for event in events:
            engine.cancel(event)
        executed = engine.run(until=9.0)
        assert executed == 0
        assert engine.now == 9.0
        assert engine.pending_events == 0

    def test_cancellation_preserves_ordering_of_surviving_events(self):
        engine = SimulationEngine()
        order = []
        engine.schedule(1.0, lambda: order.append("a"))
        doomed = engine.schedule(1.0, lambda: order.append("x"))
        engine.schedule(1.0, lambda: order.append("b"))
        engine.cancel(doomed)
        engine.run()
        assert order == ["a", "b"]

    def test_callback_can_cancel_a_later_event(self):
        engine = SimulationEngine()
        fired = []
        timer = engine.schedule(5.0, lambda: fired.append("timeout"))
        engine.schedule(1.0, lambda: engine.cancel(timer))
        engine.run()
        assert fired == []
        assert engine.pending_events == 0
