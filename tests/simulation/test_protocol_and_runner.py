"""Integration tests: the message-level protocol against the offline builders.

The figure benchmarks use the offline (full-knowledge equilibrium) builders;
these tests are the evidence that the message-level protocol -- joins,
gossip, reselection, construction requests -- produces the same topologies
and trees on small instances, which is what justifies the substitution
documented in DESIGN.md.
"""

import pytest

from repro.multicast.space_partition import SpacePartitionTreeBuilder
from repro.overlay.network import OverlayNetwork
from repro.overlay.selection.empty_rectangle import EmptyRectangleSelection
from repro.overlay.selection.orthogonal import OrthogonalHyperplanesSelection
from repro.simulation.protocol import CONSTRUCT, GossipConfig, PeerProcess, TreeRecorder
from repro.simulation.runner import run_gossip_overlay, run_multicast_over_gossip_overlay
from repro.workloads.peers import generate_peers, generate_peers_with_lifetimes


class TestGossipConfig:
    def test_defaults_are_valid(self):
        config = GossipConfig()
        assert config.broadcast_radius >= 2
        assert config.tmax > config.gossip_period

    def test_broadcast_radius_below_two_rejected(self):
        with pytest.raises(ValueError):
            GossipConfig(broadcast_radius=1)

    def test_tmax_must_exceed_gossip_period(self):
        with pytest.raises(ValueError):
            GossipConfig(gossip_period=5.0, tmax=5.0)

    def test_periods_must_be_positive(self):
        with pytest.raises(ValueError):
            GossipConfig(gossip_period=0.0)


class TestTreeRecorder:
    def test_duplicate_deliveries_are_counted_not_recorded(self):
        recorder = TreeRecorder(root=0)
        assert recorder.record_delivery(1, 0) is True
        assert recorder.record_delivery(1, 2) is False
        assert recorder.duplicate_deliveries == 1
        assert recorder.to_tree().parent(1) == 0
        assert recorder.reached_peers() == {0, 1}


class TestGossipOverlayConvergence:
    def test_converges_to_the_full_knowledge_equilibrium(self):
        peers = generate_peers(22, 2, seed=11)
        simulated = run_gossip_overlay(
            peers, EmptyRectangleSelection(), settle_time=40.0, seed=1
        )
        equilibrium = OverlayNetwork.build_equilibrium(peers, EmptyRectangleSelection())
        assert simulated.snapshot().edges() == equilibrium.snapshot().edges()

    def test_orthogonal_selection_also_converges(self):
        peers = generate_peers_with_lifetimes(18, 2, seed=5)
        simulated = run_gossip_overlay(
            peers, OrthogonalHyperplanesSelection(k=1), settle_time=40.0, seed=2
        )
        snapshot = simulated.snapshot()
        assert snapshot.is_connected()
        assert snapshot.peer_count == 18

    def test_gossip_traffic_is_accounted(self):
        peers = generate_peers(10, 2, seed=3)
        simulated = run_gossip_overlay(peers, EmptyRectangleSelection(), settle_time=10.0)
        assert simulated.overlay_stats.count("announce") > 0
        assert simulated.overlay_stats.messages_sent >= simulated.overlay_stats.count("announce")

    def test_preferred_neighbours_follow_the_lifetime_rule(self):
        peers = generate_peers_with_lifetimes(15, 2, seed=9)
        simulated = run_gossip_overlay(
            peers, OrthogonalHyperplanesSelection(k=2), settle_time=40.0, seed=4
        )
        lifetimes = {p.peer_id: p.coordinates[0] for p in peers}
        preferred = simulated.preferred_neighbours()
        longest_lived = max(lifetimes, key=lifetimes.get)
        assert preferred[longest_lived] is None
        for peer_id, parent in preferred.items():
            if parent is not None:
                assert lifetimes[parent] > lifetimes[peer_id]

    def test_invalid_runner_parameters(self):
        peers = generate_peers(4, 2, seed=0)
        with pytest.raises(ValueError):
            run_gossip_overlay(peers, EmptyRectangleSelection(), join_interval=0.0)


class TestMessageLevelConstruction:
    def test_matches_the_offline_builder_and_sends_n_minus_1_messages(self):
        peers = generate_peers(20, 2, seed=21)
        simulated = run_gossip_overlay(
            peers, EmptyRectangleSelection(), settle_time=40.0, seed=3
        )
        root = peers[0].peer_id
        outcome = run_multicast_over_gossip_overlay(simulated, root)

        assert outcome.construction_messages == len(peers) - 1
        assert outcome.result.duplicate_deliveries == 0
        assert outcome.result.delivered_everywhere
        assert outcome.network_stats.count(CONSTRUCT) == len(peers) - 1

        offline = SpacePartitionTreeBuilder().build(simulated.snapshot(), root)
        assert outcome.result.tree.parent_map() == offline.tree.parent_map()

    def test_unknown_root_rejected(self):
        peers = generate_peers(6, 2, seed=2)
        simulated = run_gossip_overlay(peers, EmptyRectangleSelection(), settle_time=10.0)
        with pytest.raises(KeyError):
            run_multicast_over_gossip_overlay(simulated, root=404)

    def test_back_to_back_sessions_do_not_share_state(self):
        peers = generate_peers(16, 2, seed=13)
        simulated = run_gossip_overlay(
            peers, EmptyRectangleSelection(), settle_time=40.0, seed=5
        )
        first = run_multicast_over_gossip_overlay(simulated, peers[0].peer_id)
        second = run_multicast_over_gossip_overlay(simulated, peers[1].peer_id)
        assert first.result.tree.root == peers[0].peer_id
        assert second.result.tree.root == peers[1].peer_id
        assert second.result.delivered_everywhere
        assert second.construction_messages == len(peers) - 1

    def test_in_flight_messages_from_a_previous_session_are_ignored(self):
        peers = generate_peers(16, 2, seed=17)
        simulated = run_gossip_overlay(
            peers, EmptyRectangleSelection(), settle_time=40.0, seed=6
        )
        # Cut the first session short so its construction messages are still
        # in flight when the second session starts.
        truncated = run_multicast_over_gossip_overlay(
            simulated, peers[0].peer_id, extra_time=0.0
        )
        assert not truncated.result.delivered_everywhere
        second = run_multicast_over_gossip_overlay(simulated, peers[1].peer_id)
        # Without session isolation the stale messages would be recorded into
        # the second recorder as spurious parents/duplicates.
        assert second.result.tree.root == peers[1].peer_id
        assert second.result.delivered_everywhere
        assert second.result.duplicate_deliveries == 0


class TestPeerProcessLifecycle:
    def test_join_twice_rejected(self):
        from repro.simulation.engine import SimulationEngine
        from repro.simulation.network import SimulatedNetwork

        engine = SimulationEngine()
        network = SimulatedNetwork(engine)
        peers = generate_peers(2, 2, seed=1)
        process = PeerProcess(
            peers[0],
            engine=engine,
            network=network,
            selection=EmptyRectangleSelection(),
            config=GossipConfig(),
        )
        process.join([peers[1]])
        with pytest.raises(RuntimeError):
            process.join([])

    def test_departed_peer_stops_participating(self):
        peers = generate_peers(8, 2, seed=7)
        simulated = run_gossip_overlay(peers, EmptyRectangleSelection(), settle_time=20.0)
        victim = peers[3].peer_id
        simulated.processes[victim].leave()
        assert not simulated.processes[victim].is_alive
        assert not simulated.network.is_registered(victim)

    def test_construction_before_joining_rejected(self):
        from repro.simulation.engine import SimulationEngine
        from repro.simulation.network import SimulatedNetwork

        engine = SimulationEngine()
        network = SimulatedNetwork(engine)
        peers = generate_peers(1, 2, seed=1)
        process = PeerProcess(
            peers[0],
            engine=engine,
            network=network,
            selection=EmptyRectangleSelection(),
            config=GossipConfig(),
        )
        with pytest.raises(RuntimeError):
            process.initiate_construction(TreeRecorder(peers[0].peer_id))
