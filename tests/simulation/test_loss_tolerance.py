"""Reordering and duplicate-delivery edge cases of the loss-tolerant protocol.

A real network reorders and duplicates.  The protocol's defences:

* link notices carry ``(life, seq)`` stamps and receivers apply them in
  order, so a ``link-open`` overtaken by its ``link-close`` cannot
  resurrect the link, and a departure notice retransmitted from a peer's
  *previous* life cannot evict the links of its rejoined life;
* reliable messages travel in :class:`ReliablePayload` envelopes -- the
  receiver acks every copy (acks may be lost too) but processes only the
  first, so a retransmitted construction request is never recorded twice;
* a leave-then-rejoin under loss settles with the rejoined peer woven back
  in, even while the old life's blind departure retransmissions are still
  in flight.
"""

from repro.multicast.zones import initial_zone
from repro.overlay.peer import make_peer
from repro.overlay.selection.empty_rectangle import EmptyRectangleSelection
from repro.simulation.engine import SimulationEngine
from repro.simulation.netmodel import LinkModel
from repro.simulation.network import SimulatedNetwork
from repro.simulation.protocol import (
    ACK,
    CONSTRUCT,
    LINK_CLOSE,
    LINK_OPEN,
    ConstructionRequest,
    GossipConfig,
    LinkNotice,
    PeerProcess,
    ReliablePayload,
    TreeRecorder,
)
from repro.simulation.runner import run_gossip_overlay
from repro.workloads.peers import generate_peers_with_lifetimes

#: A sender id that never corresponds to a registered process: raw stamped
#: sends from it exercise the receiver-side logic in isolation.
GHOST = 99


def _lone_process(latency=0.0):
    """One joined peer on an otherwise empty network."""
    engine = SimulationEngine()
    network = SimulatedNetwork(engine, latency=latency)
    process = PeerProcess(
        make_peer(1, (5.0, 5.0)),
        engine=engine,
        network=network,
        selection=EmptyRectangleSelection(),
        config=GossipConfig(),
    )
    process.join([])
    return engine, network, process


class TestNoticeOrdering:
    def test_open_overtaken_by_its_close_cannot_resurrect_the_link(self):
        engine, network, process = _lone_process()
        # The close (seq=2) overtakes the open (seq=1) in flight.
        network.send(GHOST, 1, LINK_CLOSE, LinkNotice(life=1, seq=2))
        engine.run(until=engine.now + 1.0)
        network.send(GHOST, 1, LINK_OPEN, LinkNotice(life=1, seq=1))
        engine.run(until=engine.now + 1.0)
        assert GHOST not in process.link_targets

    def test_in_order_notices_apply_normally(self):
        engine, network, process = _lone_process()
        network.send(GHOST, 1, LINK_OPEN, LinkNotice(life=1, seq=1))
        engine.run(until=engine.now + 1.0)
        assert GHOST in process.link_targets
        network.send(GHOST, 1, LINK_CLOSE, LinkNotice(life=1, seq=2))
        engine.run(until=engine.now + 1.0)
        assert GHOST not in process.link_targets
        # A later re-open (higher seq) is fresh again.
        network.send(GHOST, 1, LINK_OPEN, LinkNotice(life=1, seq=3))
        engine.run(until=engine.now + 1.0)
        assert GHOST in process.link_targets

    def test_duplicate_notice_is_idempotent(self):
        engine, network, process = _lone_process()
        for _ in range(3):
            network.send(GHOST, 1, LINK_OPEN, LinkNotice(life=1, seq=1))
        engine.run(until=engine.now + 1.0)
        assert GHOST in process.link_targets

    def test_old_life_departure_cannot_evict_the_new_lifes_links(self):
        engine, network, process = _lone_process()
        # The ghost rejoined: its new life (life=2) opened a link.
        network.send(GHOST, 1, LINK_OPEN, LinkNotice(life=2, seq=1))
        engine.run(until=engine.now + 1.0)
        assert GHOST in process.link_targets
        # A blind departure retransmission from the ghost's previous life
        # arrives late.  Its stamp (1, 7) is behind (2, 1): discarded.
        network.send(
            GHOST, 1, LINK_CLOSE, LinkNotice(life=1, seq=7, departed_at=0.25)
        )
        engine.run(until=engine.now + 1.0)
        assert GHOST in process.link_targets

    def test_new_life_restarts_above_the_old_lifes_stamps(self):
        engine, network, process = _lone_process()
        network.send(GHOST, 1, LINK_CLOSE, LinkNotice(life=1, seq=9, departed_at=0.1))
        engine.run(until=engine.now + 1.0)
        # The next life's very first notice (life=2, seq=1) outranks any
        # stamp of life 1, however many retransmissions it reached.
        network.send(GHOST, 1, LINK_OPEN, LinkNotice(life=2, seq=1))
        engine.run(until=engine.now + 1.0)
        assert GHOST in process.link_targets


class TestDuplicateReliableDelivery:
    def test_retransmitted_construct_is_recorded_once_but_acked_each_time(self):
        engine, network, process = _lone_process()
        recorder = TreeRecorder(GHOST)
        process.attach_recorder(recorder)
        request = ConstructionRequest(session=recorder.session, zone=initial_zone(2))
        envelope = ReliablePayload(msg_id=5, payload=request)
        for _ in range(3):
            network.send(GHOST, 1, CONSTRUCT, envelope)
        engine.run(until=engine.now + 1.0)
        # Processed once: one recorded delivery, no duplicate bookkeeping
        # (the reliable layer suppressed the copies before the recorder).
        assert recorder.reached_peers() == {GHOST, 1}  # root + the one delivery
        assert recorder.duplicate_deliveries == 0
        # But every copy was acked -- the sender's first ack may be lost.
        assert network.stats.count(ACK) == 3

    def test_distinct_msg_ids_are_distinct_messages(self):
        engine, network, process = _lone_process()
        recorder = TreeRecorder(GHOST)
        process.attach_recorder(recorder)
        request = ConstructionRequest(session=recorder.session, zone=initial_zone(2))
        network.send(GHOST, 1, CONSTRUCT, ReliablePayload(msg_id=1, payload=request))
        network.send(GHOST, 1, CONSTRUCT, ReliablePayload(msg_id=2, payload=request))
        engine.run(until=engine.now + 1.0)
        # The second is a genuine (if redundant) delivery: the recorder sees
        # it and counts the duplicate, exactly as in the lossless protocol.
        assert recorder.duplicate_deliveries == 1
        assert network.stats.count(ACK) == 2


class TestRejoinUnderLoss:
    def test_leave_and_rejoin_settles_with_the_peer_woven_back_in(self):
        peers = generate_peers_with_lifetimes(10, 2, seed=21)
        simulated = run_gossip_overlay(
            peers,
            EmptyRectangleSelection(),
            network=LinkModel(0.01, loss_rate=0.1, seed=21),
            settle_time=25.0,
            seed=21,
        )
        victim = simulated.processes[peers[4].peer_id]
        victim.leave()
        # Rejoin while the old life's blind departure retransmissions are
        # still scheduled (backoff spans several seconds).
        simulated.engine.run(until=simulated.engine.now + 0.5)
        victim.join([peers[0]])
        simulated.engine.run(until=simulated.engine.now + 30.0)

        assert victim.is_alive
        assert victim.neighbours
        # The rejoined life's links survived the old life's late closes:
        # somebody links back to the victim, and nobody still holds a
        # departure tombstone that keeps it evicted.
        assert any(
            victim.peer_id in process.link_targets
            for peer_id, process in simulated.processes.items()
            if peer_id != victim.peer_id and process.is_alive
        )
        snapshot = simulated.alive_snapshot()
        assert victim.peer_id in snapshot.peers
        assert snapshot.is_connected()

    def test_departure_closes_are_not_acked(self):
        # Departure notices are blind repeats: the sender unregisters, so
        # receivers must not ack them (the acks would be undeliverable and
        # would inflate the dropped count forever).
        peers = generate_peers_with_lifetimes(8, 2, seed=5)
        simulated = run_gossip_overlay(
            peers, EmptyRectangleSelection(), settle_time=20.0, seed=5
        )
        acks_before = simulated.network.stats.count(ACK)
        simulated.processes[peers[3].peer_id].leave()
        simulated.engine.run(until=simulated.engine.now + 0.1)
        assert simulated.network.stats.count(ACK) == acks_before
