"""Churn lifecycle and dirty-set reselection of the message-level simulator.

Two families of guarantees:

* **Leave protocol** -- a departing peer closes its links explicitly, so no
  alive peer keeps routing traffic to it: link sets, announcements, known
  addresses and duplicate-suppression keys all drop the departed id, dropped
  message counts stop growing once the in-flight tail drains, and a
  post-churn construction session reaches every alive peer.
* **Dirty-set equivalence** -- the dirty-set reselect tick elides provably
  unchanged recomputations only, so a run with ``incremental_reselect=True``
  settles to the identical topology as the per-tick full-reselect run, under
  steady joins and under join/leave churn alike, while invoking the
  selection method over the full candidate set far less often.
"""

from typing import List, Sequence

import pytest

from repro.overlay.gossip import ExistenceAnnouncement
from repro.overlay.peer import PeerInfo
from repro.overlay.selection.empty_rectangle import EmptyRectangleSelection
from repro.overlay.selection.orthogonal import OrthogonalHyperplanesSelection
from repro.simulation.protocol import ANNOUNCE, GossipConfig
from repro.simulation.runner import run_gossip_overlay, run_multicast_over_gossip_overlay
from repro.workloads.churn import ChurnEvent, interleaved_join_leave_schedule
from repro.workloads.peers import generate_peers, generate_peers_with_lifetimes


class PathDependentWrapper(EmptyRectangleSelection):
    """The same selection rule, declared path *dependent*.

    Forces the dirty-set tick onto full recomputation for every non-empty
    delta, exercising the conservative fallback while keeping the actual
    selections comparable with the path-independent runs.
    """

    path_independent = False


def _settled_overlay(count=10, seed=3, settle_time=25.0, **kwargs):
    peers = generate_peers(count, 2, seed=seed)
    return peers, run_gossip_overlay(
        peers, EmptyRectangleSelection(), settle_time=settle_time, seed=seed, **kwargs
    )


class TestLeaveProtocol:
    def test_leave_unlinks_the_departed_peer_everywhere(self):
        peers, simulated = _settled_overlay()
        victim = peers[4].peer_id
        simulated.processes[victim].leave()
        # One latency tick delivers the link-close notices.
        simulated.engine.run(until=simulated.engine.now + 1.0)

        assert simulated.processes[victim].link_targets == set()
        for peer_id, process in simulated.processes.items():
            if peer_id == victim:
                continue
            assert victim not in process.link_targets
            assert process.preferred_neighbour != victim

    def test_stale_in_flight_announcements_cannot_resurrect_a_departed_peer(self):
        peers, simulated = _settled_overlay()
        victim = peers[4].peer_id
        victim_info = simulated.processes[victim].info
        observers = [
            simulated.processes[peer_id]
            for peer_id in sorted(simulated.processes[victim].link_targets)
        ]
        assert observers, "a settled peer should have link targets"
        stale = ExistenceAnnouncement(
            origin=victim,
            coordinates=victim_info.coordinates,
            address=victim_info.address,
            issued_at=simulated.engine.now,
            remaining_hops=2,
        )
        simulated.processes[victim].leave()
        simulated.engine.run(until=simulated.engine.now + 0.5)
        # A copy of the victim's last announcement, forwarded by a third
        # peer, arrives after the departure notice was processed.
        for observer in observers:
            simulated.network.send(victim, observer.peer_id, ANNOUNCE, stale)
        simulated.engine.run(until=simulated.engine.now + 3.0)
        for observer in observers:
            assert victim not in observer.link_targets
            assert victim not in observer.neighbours
            assert observer.last_candidates is not None
            assert victim not in observer.last_candidates

    def test_leave_is_idempotent(self):
        peers, simulated = _settled_overlay()
        victim = peers[2].peer_id
        simulated.processes[victim].leave()
        sent_after_first = simulated.network.stats.messages_sent
        simulated.processes[victim].leave()
        assert simulated.network.stats.messages_sent == sent_after_first

    def test_dropped_message_counts_stop_growing(self):
        peers, simulated = _settled_overlay()
        victim = peers[1].peer_id
        simulated.processes[victim].leave()
        # Drain the in-flight tail (messages already addressed to the victim
        # are dropped; the link-close notices stop new ones at the source).
        simulated.engine.run(until=simulated.engine.now + 3.0)
        dropped = simulated.network.stats.messages_dropped
        simulated.engine.run(until=simulated.engine.now + 15.0)
        assert simulated.network.stats.messages_dropped == dropped

    def test_post_churn_construction_reaches_all_alive_peers(self):
        peers, simulated = _settled_overlay(count=14, seed=11, settle_time=30.0)
        for victim in (peers[3].peer_id, peers[8].peer_id):
            simulated.processes[victim].leave()
        simulated.engine.run(until=simulated.engine.now + 10.0)

        alive = {p for p, proc in simulated.processes.items() if proc.is_alive}
        outcome = run_multicast_over_gossip_overlay(simulated, root=peers[0].peer_id)
        assert outcome.result.unreached_peers == set()
        assert set(outcome.result.tree.nodes()) == alive

    def test_seen_announcement_keys_are_pruned_with_tmax(self):
        config = GossipConfig(gossip_period=1.0, tmax=5.0)
        peers, simulated = _settled_overlay(count=8, settle_time=40.0, config=config)
        # Pruning runs amortised (once per Tmax), so up to two windows of
        # keys may be retained -- one key per origin per gossip period each
        # (plus in-flight slack).  Without pruning the count would be one
        # key per origin per gossip tick of the whole run (~40 per origin).
        per_origin_bound = 2 * (config.tmax / config.gossip_period) + 3
        for process in simulated.processes.values():
            assert process.seen_announcement_count <= len(peers) * per_origin_bound


class TestChurnSchedule:
    def test_unknown_peer_id_rejected(self):
        peers = generate_peers(4, 2, seed=0)
        events = [ChurnEvent(time=0.0, peer_id=99, kind="join")]
        with pytest.raises(ValueError):
            run_gossip_overlay(peers, EmptyRectangleSelection(), churn=events)

    def test_duplicate_joins_rejected(self):
        peers = generate_peers(4, 2, seed=0)
        events = [
            ChurnEvent(time=0.0, peer_id=peers[0].peer_id, kind="join"),
            ChurnEvent(time=2.0, peer_id=peers[0].peer_id, kind="join"),
        ]
        with pytest.raises(ValueError, match="duplicate joins"):
            run_gossip_overlay(peers, EmptyRectangleSelection(), churn=events)

    def test_rejoin_starts_from_a_fresh_joiner_state(self):
        peers, simulated = _settled_overlay()
        victim = simulated.processes[peers[4].peer_id]
        victim.leave()
        simulated.engine.run(until=simulated.engine.now + 1.0)
        victim.join([peers[0]])
        # Pre-leave knowledge is gone: only the bootstrap contact is known.
        assert victim.known_peer_count == 1
        assert victim.neighbours == {peers[0].peer_id}
        simulated.engine.run(until=simulated.engine.now + 20.0)
        # The rejoined peer is woven back into the overlay.
        assert victim.is_alive
        assert victim.neighbours
        assert any(
            victim.peer_id in process.link_targets
            for peer_id, process in simulated.processes.items()
            if peer_id != victim.peer_id
        )

    def test_immediate_rejoin_does_not_double_the_tick_chains(self):
        peers, simulated = _settled_overlay()
        victim = simulated.processes[peers[4].peer_id]
        victim.leave()
        # Re-join at the same engine instant: the previous life's tick
        # callbacks are still queued and must die off instead of running
        # alongside the new chains.
        victim.join([peers[0]])
        before = victim.reselect_ticks
        simulated.engine.run(until=simulated.engine.now + 10.0)
        ticks = victim.reselect_ticks - before
        # One chain ticks once per reselect_period (1s): ~10 ticks, not ~20.
        assert 9 <= ticks <= 11

    def test_leaves_without_a_join_are_ignored(self):
        peers = generate_peers(4, 2, seed=1)
        events = [
            ChurnEvent(time=0.0, peer_id=peers[0].peer_id, kind="join"),
            ChurnEvent(time=1.0, peer_id=peers[1].peer_id, kind="join"),
            ChurnEvent(time=2.0, peer_id=peers[2].peer_id, kind="leave"),
        ]
        simulated = run_gossip_overlay(
            peers, EmptyRectangleSelection(), churn=events, settle_time=5.0
        )
        assert set(simulated.processes) == {peers[0].peer_id, peers[1].peer_id}
        assert all(p.is_alive for p in simulated.processes.values())

    def test_alive_population_follows_the_schedule(self):
        count = 12
        peers = generate_peers(count, 2, seed=5)
        schedule = interleaved_join_leave_schedule(
            count, join_interval=1.5, leave_fraction=0.25, holdoff=4.0, seed=5
        )
        leavers = {e.peer_id for e in schedule if e.kind == "leave"}
        simulated = run_gossip_overlay(
            peers, EmptyRectangleSelection(), churn=schedule, settle_time=15.0, seed=2
        )
        alive = {p for p, proc in simulated.processes.items() if proc.is_alive}
        assert alive == {p.peer_id for p in peers} - leavers
        assert simulated.alive_snapshot().peer_count == count - len(leavers)


def _run_pair(
    peers: Sequence[PeerInfo],
    selection_factory,
    *,
    churn=None,
    settle_time=35.0,
    seed=7,
):
    runs = []
    for incremental in (True, False):
        runs.append(
            run_gossip_overlay(
                peers,
                selection_factory(),
                churn=churn,
                settle_time=settle_time,
                seed=seed,
                incremental_reselect=incremental,
            )
        )
    return runs


def _directed(result) -> dict:
    return {peer_id: proc.neighbours for peer_id, proc in result.processes.items()}


class TestDirtySetEquivalence:
    def test_steady_joins_settle_identically(self):
        peers = generate_peers(18, 2, seed=23)
        fast, slow = _run_pair(peers, EmptyRectangleSelection)
        assert _directed(fast) == _directed(slow)
        assert fast.snapshot().edges() == slow.snapshot().edges()
        assert fast.total_selection_invocations() < slow.total_selection_invocations()
        assert fast.total_reselect_skips() > 0
        assert slow.total_reselect_skips() == 0

    def test_join_leave_churn_settles_identically(self):
        count = 20
        peers = generate_peers(count, 2, seed=29)
        schedule = interleaved_join_leave_schedule(
            count, join_interval=2.0, leave_fraction=0.25, holdoff=6.0, seed=29
        )
        fast, slow = _run_pair(peers, EmptyRectangleSelection, churn=schedule)
        assert _directed(fast) == _directed(slow)
        assert fast.alive_snapshot().edges() == slow.alive_snapshot().edges()
        assert fast.total_selection_invocations() < slow.total_selection_invocations()

    def test_churn_equivalence_with_the_orthogonal_method(self):
        count = 16
        peers = generate_peers_with_lifetimes(count, 3, seed=31)
        schedule = interleaved_join_leave_schedule(
            count, join_interval=2.0, leave_fraction=0.2, holdoff=6.0, seed=31
        )
        fast, slow = _run_pair(
            peers, lambda: OrthogonalHyperplanesSelection(k=2), churn=schedule
        )
        assert _directed(fast) == _directed(slow)
        assert fast.preferred_neighbours() == slow.preferred_neighbours()

    def test_path_dependent_fallback_still_settles_identically(self):
        count = 14
        peers = generate_peers(count, 2, seed=37)
        schedule = interleaved_join_leave_schedule(
            count, join_interval=2.0, leave_fraction=0.2, holdoff=6.0, seed=37
        )
        fast, slow = _run_pair(peers, PathDependentWrapper, churn=schedule)
        assert _directed(fast) == _directed(slow)
        # Without path independence every non-empty delta recomputes in full;
        # only genuinely unchanged ticks are skipped -- and they still are.
        assert fast.total_additive_updates() == 0
        assert fast.total_reselect_skips() > 0

    def test_dirty_invariant_bookkeeping(self):
        peers, simulated = _settled_overlay(count=8, seed=41, settle_time=30.0)
        for process in simulated.processes.values():
            # Settled: the last installed candidate set is exactly the
            # current knowledge, and the selection came from it.
            assert process.last_candidates is not None
            assert process.neighbours <= process.last_candidates
        victim = peers[5].peer_id
        selectors = [
            process
            for peer_id, process in simulated.processes.items()
            if victim in process.neighbours
        ]
        assert selectors, "the settled overlay should have selectors of the victim"
        simulated.processes[victim].leave()
        simulated.engine.run(until=simulated.engine.now + 0.02)
        for process in selectors:
            # The departure mutated their installed selection, so the
            # invariant was reset; a selector either has not ticked yet
            # (history still cleared) or has already recomputed in full
            # against a candidate set without the victim.
            assert (
                process.last_candidates is None
                or victim not in process.last_candidates
            )
            assert victim not in process.neighbours


class TestLiveTreeMonitor:
    """The Section 3 tree maintained live from protocol events."""

    def test_monitor_matches_settled_preferred_links_under_churn(self):
        count = 24
        peers = generate_peers_with_lifetimes(count, 3, seed=43)
        schedule = interleaved_join_leave_schedule(
            count, join_interval=2.0, leave_fraction=0.25, holdoff=6.0, seed=43
        )
        result = run_gossip_overlay(
            peers,
            OrthogonalHyperplanesSelection(k=2),
            churn=schedule,
            settle_time=40.0,
            seed=43,
            maintain_tree=True,
        )
        monitor = result.tree_monitor
        assert monitor is not None
        alive = {pid for pid, process in result.processes.items() if process.is_alive}
        forest = monitor.forest()
        # The maintained forest covers exactly the alive peers and agrees
        # with every process's own preferred link at settle time.
        assert set(forest.preferred) == alive
        assert dict(forest.preferred) == {
            pid: result.processes[pid].preferred_neighbour for pid in alive
        }
        assert forest.parents_outlive_children()
        # One health sample per membership event, none of them rebuilt from
        # a snapshot (the engine only ever applied deltas).
        departures = sum(1 for event in schedule if event.kind == "leave")
        assert monitor.membership_events == count + departures
        assert len(monitor.health_series) == monitor.membership_events
        assert monitor.health_series[-1].size == len(alive)
        if forest.is_single_tree():
            metrics = monitor.engine.metrics()
            assert metrics.size == len(alive)

    def test_monitor_absent_by_default(self):
        _, result = _settled_overlay(count=6, seed=5, settle_time=15.0)
        assert result.tree_monitor is None
