"""The real-network model: distributions, loss, bandwidth and equivalence.

Three layers of guarantees:

* **Model unit behaviour** -- latency distributions respect their bounds,
  the loss draw drops the advertised fraction, bandwidth serialises a burst
  FIFO, and every stochastic draw comes from an independent per-directed-link
  seeded stream (RPL004: one link's traffic never perturbs another's draws).
* **Seeded equivalence** (the keystone) -- the degenerate model (constant
  latency, zero loss, no bandwidth cap) reproduces the legacy scalar-latency
  run *byte-identically*: same topology, same preferred neighbours, same
  message counts.  Hypothesis sweeps populations and seeds; a fixed-seed
  test pins the flagship configuration.
* **Loss tolerance** -- under i.i.d. loss the settled overlay still equals
  the full-knowledge analytic fixed point, and the dissemination probe
  reaches every alive peer (latencies then include the retransmission
  penalty).
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import numpy as np

from repro.geometry.rectangle import HyperRectangle, Interval
from repro.overlay.gossip import ExistenceAnnouncement
from repro.overlay.network import OverlayNetwork
from repro.overlay.peer import NetworkAddress, make_peer
from repro.overlay.selection.empty_rectangle import EmptyRectangleSelection
from repro.simulation.engine import SimulationEngine
from repro.simulation.netmodel import (
    HEADER_BYTES,
    ConstantLatency,
    LinkModel,
    LognormalLatency,
    UniformLatency,
    _payload_bytes,
    estimate_message_bytes,
)
from repro.simulation.protocol import (
    ConstructionRequest,
    LinkNotice,
    ProbeRequest,
    ReliablePayload,
)
from repro.simulation.network import SimulatedNetwork
from repro.simulation.runner import run_dissemination_probe, run_gossip_overlay
from repro.workloads.peers import generate_peers, generate_peers_with_lifetimes


# ----------------------------------------------------------------------
# Latency distributions
# ----------------------------------------------------------------------
class TestLatencyDistributions:
    def test_constant_consumes_no_randomness(self):
        distribution = ConstantLatency(0.02)
        # No generator is needed at all -- the degenerate fast path relies
        # on this staying true.
        assert distribution.sample(None) == 0.02

    def test_uniform_respects_bounds(self):
        distribution = UniformLatency(0.005, 0.03)
        rng = np.random.default_rng(1)
        samples = [distribution.sample(rng) for _ in range(200)]
        assert all(0.005 <= s <= 0.03 for s in samples)
        assert len(set(samples)) > 100  # actually random, not constant

    def test_lognormal_median_is_where_it_says(self):
        distribution = LognormalLatency(0.02, 0.5)
        rng = np.random.default_rng(2)
        samples = sorted(distribution.sample(rng) for _ in range(2001))
        assert samples[1000] == pytest.approx(0.02, rel=0.15)
        assert all(s > 0 for s in samples)

    def test_validation(self):
        with pytest.raises(ValueError):
            ConstantLatency(-0.1)
        with pytest.raises(ValueError):
            UniformLatency(-0.1, 0.2)
        with pytest.raises(ValueError):
            UniformLatency(0.3, 0.2)
        with pytest.raises(ValueError):
            LognormalLatency(0.0, 0.5)
        with pytest.raises(ValueError):
            LognormalLatency(0.02, -1.0)

    def test_describe(self):
        assert "constant" in ConstantLatency(0.01).describe()
        assert "uniform" in UniformLatency(0.0, 0.1).describe()
        assert "lognormal" in LognormalLatency(0.02, 0.5).describe()


# ----------------------------------------------------------------------
# Byte estimator
# ----------------------------------------------------------------------
class TestByteEstimator:
    def test_headers_and_kind_always_charged(self):
        assert estimate_message_bytes("ping", None) == HEADER_BYTES + 4

    def test_scalars_strings_and_collections(self):
        assert estimate_message_bytes("x", 7) == HEADER_BYTES + 1 + 8
        assert estimate_message_bytes("x", "abc") == HEADER_BYTES + 1 + 3
        assert estimate_message_bytes("x", (1.0, 2.0)) == HEADER_BYTES + 1 + 16

    def test_dataclasses_are_walked_recursively(self):
        info = make_peer(3, (1.0, 2.0))
        size = estimate_message_bytes("announce", info)
        # id + 2 coordinates + host string + port, at least.
        assert size > HEADER_BYTES + len("announce") + 3 * 8

    def test_mappings_count_keys_and_values(self):
        # Regression: a dict used to fall through to the scalar fallback
        # and count 8 bytes no matter what it carried.
        assert estimate_message_bytes("x", {}) == HEADER_BYTES + 1
        assert estimate_message_bytes("x", {"ab": (1.0, 2.0)}) == HEADER_BYTES + 1 + 2 + 16
        nested = {"k": {"inner": "abcd"}}
        assert estimate_message_bytes("x", nested) == HEADER_BYTES + 1 + 1 + 5 + 4

    def test_estimator_recurses_into_every_protocol_payload_dataclass(self):
        # Every payload dataclass the protocol actually puts on the wire:
        # the estimate must equal the sum over its fields (no payload class
        # silently hitting the 8-byte scalar fallback), and must exceed one
        # scalar whenever the class carries more than one scalar's worth.
        payloads = [
            LinkNotice(life=1, seq=3, departed_at=4.5),
            ProbeRequest(session=1, issued_at=2.0),
            ConstructionRequest(
                session=1,
                zone=HyperRectangle([Interval.closed(0.0, 1.0), Interval.closed(0.0, 1.0)]),
            ),
            ExistenceAnnouncement(
                origin=1,
                coordinates=(0.5, 0.5),
                address=NetworkAddress(host="127.0.0.1", port=4000),
                issued_at=0.0,
                remaining_hops=3,
            ),
        ]
        payloads.append(ReliablePayload(msg_id=7, payload=payloads[0]))
        for payload in payloads:
            total = _payload_bytes(payload)
            field_sum = sum(
                _payload_bytes(getattr(payload, field.name))
                for field in dataclasses.fields(payload)
            )
            assert total == field_sum, type(payload).__name__
            assert total > 8, type(payload).__name__


# ----------------------------------------------------------------------
# The link model
# ----------------------------------------------------------------------
class TestLinkModel:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            LinkModel(0.01, loss_rate=1.0)
        with pytest.raises(ValueError):
            LinkModel(0.01, loss_rate=-0.1)
        with pytest.raises(ValueError):
            LinkModel(0.01, bandwidth_bytes_per_second=0.0)

    def test_degenerate_detection(self):
        assert LinkModel(0.01).is_degenerate
        assert LinkModel(ConstantLatency(0.5)).is_degenerate
        assert not LinkModel(0.01, loss_rate=0.01).is_degenerate
        assert not LinkModel(UniformLatency(0.0, 0.1)).is_degenerate
        assert not LinkModel(0.01, bandwidth_bytes_per_second=1e6).is_degenerate

    def test_degenerate_delivery_is_exact_constant(self):
        model = LinkModel(0.25)
        assert model.delivery_time(1, 2, 1000, 3.0) == 3.25

    def test_loss_fraction_matches_the_rate(self):
        model = LinkModel(0.01, loss_rate=0.2, seed=5)
        outcomes = [model.delivery_time(0, 1, 100, 0.0) for _ in range(2000)]
        lost = sum(1 for outcome in outcomes if outcome is None)
        assert 0.15 < lost / len(outcomes) < 0.25

    def test_per_link_streams_are_independent(self):
        # Drawing heavily on link (0, 1) must not change what (2, 3) yields.
        quiet = LinkModel(UniformLatency(0.0, 1.0), seed=9)
        busy = LinkModel(UniformLatency(0.0, 1.0), seed=9)
        for _ in range(500):
            busy.delivery_time(0, 1, 100, 0.0)
        assert busy.delivery_time(2, 3, 100, 0.0) == quiet.delivery_time(2, 3, 100, 0.0)

    def test_streams_are_seed_deterministic(self):
        first = LinkModel(LognormalLatency(0.02, 0.5), loss_rate=0.1, seed=4)
        second = LinkModel(LognormalLatency(0.02, 0.5), loss_rate=0.1, seed=4)
        sequence = [first.delivery_time(1, 2, 64, 0.0) for _ in range(50)]
        assert sequence == [second.delivery_time(1, 2, 64, 0.0) for _ in range(50)]

    def test_bandwidth_serialises_a_burst_fifo(self):
        # 1000 bytes/s, zero propagation delay: three 500-byte messages sent
        # at t=0 drain at 0.5s spacing.
        model = LinkModel(0.0, bandwidth_bytes_per_second=1000.0, seed=0)
        times = [model.delivery_time(0, 1, 500, 0.0) for _ in range(3)]
        assert times == [pytest.approx(0.5), pytest.approx(1.0), pytest.approx(1.5)]
        # The queue belongs to the directed link: the reverse direction is idle.
        assert model.delivery_time(1, 0, 500, 0.0) == pytest.approx(0.5)

    def test_queue_drains_between_sends(self):
        model = LinkModel(0.0, bandwidth_bytes_per_second=1000.0, seed=0)
        assert model.delivery_time(0, 1, 500, 0.0) == pytest.approx(0.5)
        # Sent after the link went idle: no queueing delay.
        assert model.delivery_time(0, 1, 500, 10.0) == pytest.approx(10.5)

    def test_reset_rewinds_the_rng_streams(self):
        model = LinkModel(LognormalLatency(0.02, 0.5), loss_rate=0.1, seed=4)
        fresh = LinkModel(LognormalLatency(0.02, 0.5), loss_rate=0.1, seed=4)
        first = [model.delivery_time(1, 2, 64, 0.0) for _ in range(50)]
        model.reset()
        assert [model.delivery_time(1, 2, 64, 0.0) for _ in range(50)] == first
        assert first == [fresh.delivery_time(1, 2, 64, 0.0) for _ in range(50)]

    def test_reset_clears_bandwidth_frontiers(self):
        model = LinkModel(0.0, bandwidth_bytes_per_second=1000.0, seed=0)
        assert model.delivery_time(0, 1, 500, 0.0) == pytest.approx(0.5)
        assert model.delivery_time(0, 1, 500, 0.0) == pytest.approx(1.0)
        model.reset()
        # The absolute-time FIFO frontier is gone -- the link is not still
        # "busy until 1.0" from before the reset.
        assert model.delivery_time(0, 1, 500, 0.0) == pytest.approx(0.5)


class TestNetworkWithLinkModel:
    def test_lost_messages_are_counted_not_delivered(self):
        engine = SimulationEngine()
        network = SimulatedNetwork(engine, link_model=LinkModel(0.01, loss_rate=0.5, seed=3))
        received = []
        network.register(1, received.append)
        for _ in range(400):
            network.send(0, 1, "ping", None)
        engine.run()
        stats = network.stats
        assert stats.messages_sent == 400
        assert stats.messages_lost > 0
        assert stats.messages_lost + len(received) == 400
        assert stats.messages_delivered == len(received)

    def test_byte_accounting(self):
        engine = SimulationEngine()
        network = SimulatedNetwork(engine, link_model=LinkModel(0.01))
        network.register(1, lambda message: None)
        network.send(0, 1, "ping", None)
        engine.run()
        expected = estimate_message_bytes("ping", None)
        assert network.stats.bytes_sent == expected
        assert network.stats.bytes_delivered == expected
        assert network.stats.bytes_of("ping") == expected

    def test_latency_and_link_model_are_mutually_exclusive(self):
        engine = SimulationEngine()
        with pytest.raises(ValueError):
            SimulatedNetwork(engine, latency=0.01, link_model=LinkModel(0.01))

    def test_model_reuse_across_networks_is_rejected(self):
        model = LinkModel(0.01, loss_rate=0.1, seed=3)
        SimulatedNetwork(SimulationEngine(), link_model=model)
        with pytest.raises(ValueError, match="already attached"):
            SimulatedNetwork(SimulationEngine(), link_model=model)
        model.reset()
        SimulatedNetwork(SimulationEngine(), link_model=model)

    def test_reset_model_reruns_byte_identically(self):
        # Regression: the per-link RNG positions and absolute-time
        # busy_until frontiers used to survive silently into a second run,
        # so two "identical" runs sharing one model diverged.
        peers = generate_peers_with_lifetimes(10, 2, seed=6)
        model = LinkModel(
            UniformLatency(0.005, 0.02),
            loss_rate=0.05,
            bandwidth_bytes_per_second=50_000.0,
            seed=6,
        )
        first = run_gossip_overlay(
            peers, EmptyRectangleSelection(), network=model, settle_time=20.0, seed=6
        )
        model.reset()
        second = run_gossip_overlay(
            peers, EmptyRectangleSelection(), network=model, settle_time=20.0, seed=6
        )
        assert second.snapshot().edges() == first.snapshot().edges()
        assert second.overlay_stats.messages_sent == first.overlay_stats.messages_sent
        assert second.overlay_stats.by_kind == first.overlay_stats.by_kind
        assert second.engine.now == first.engine.now


# ----------------------------------------------------------------------
# Seeded equivalence (the keystone)
# ----------------------------------------------------------------------
def _run_pair(count, seed, settle_time=25.0):
    """The same seeded run under the legacy network and the degenerate model."""
    peers = generate_peers_with_lifetimes(count, 2, seed=seed)
    legacy = run_gossip_overlay(
        peers, EmptyRectangleSelection(), latency=0.01, settle_time=settle_time, seed=seed
    )
    modelled = run_gossip_overlay(
        peers,
        EmptyRectangleSelection(),
        network=LinkModel(ConstantLatency(0.01)),
        settle_time=settle_time,
        seed=seed,
    )
    return legacy, modelled


class TestSeededEquivalence:
    def test_degenerate_model_reproduces_the_legacy_run_byte_identically(self):
        legacy, modelled = _run_pair(count=18, seed=11)
        assert modelled.snapshot().edges() == legacy.snapshot().edges()
        assert modelled.preferred_neighbours() == legacy.preferred_neighbours()
        # Not merely the same fixed point: the identical message history.
        assert modelled.overlay_stats.messages_sent == legacy.overlay_stats.messages_sent
        assert modelled.overlay_stats.by_kind == legacy.overlay_stats.by_kind
        assert modelled.engine.now == legacy.engine.now

    @settings(max_examples=6, deadline=None)
    @given(
        count=st.integers(min_value=4, max_value=10),
        seed=st.integers(min_value=0, max_value=2**20),
    )
    def test_equivalence_holds_over_populations_and_seeds(self, count, seed):
        legacy, modelled = _run_pair(count=count, seed=seed, settle_time=15.0)
        assert modelled.snapshot().edges() == legacy.snapshot().edges()
        assert modelled.overlay_stats.messages_sent == legacy.overlay_stats.messages_sent
        assert modelled.overlay_stats.by_kind == legacy.overlay_stats.by_kind

    def test_lossy_overlay_still_reaches_the_analytic_fixed_point(self):
        peers = generate_peers(22, 2, seed=11)
        simulated = run_gossip_overlay(
            peers,
            EmptyRectangleSelection(),
            network=LinkModel(0.01, loss_rate=0.05, seed=7),
            settle_time=60.0,
            seed=1,
        )
        equilibrium = OverlayNetwork.build_equilibrium(peers, EmptyRectangleSelection())
        assert simulated.snapshot().edges() == equilibrium.snapshot().edges()
        # Loss actually happened; the protocol absorbed it.
        assert simulated.overlay_stats.messages_lost > 0


# ----------------------------------------------------------------------
# The dissemination probe
# ----------------------------------------------------------------------
class TestDisseminationProbe:
    def test_probe_reaches_every_peer_on_a_lossless_overlay(self):
        peers = generate_peers_with_lifetimes(12, 2, seed=3)
        simulated = run_gossip_overlay(
            peers, EmptyRectangleSelection(), settle_time=25.0, seed=3
        )
        probe = run_dissemination_probe(simulated)
        assert probe.unreached_peers == set()
        assert set(probe.latencies) == set(simulated.processes)
        assert probe.latencies[probe.root] == 0.0
        others = {p: v for p, v in probe.latencies.items() if p != probe.root}
        assert all(v > 0 for v in others.values())
        assert probe.statistics.count == len(peers)
        assert probe.statistics.p99 >= probe.statistics.p50

    def test_probe_root_defaults_to_the_maintained_tree_root(self):
        peers = generate_peers_with_lifetimes(10, 2, seed=5)
        simulated = run_gossip_overlay(
            peers, EmptyRectangleSelection(), settle_time=25.0, seed=5
        )
        probe = run_dissemination_probe(simulated)
        # The default root is the longest-lived peer without an alive parent:
        # its preferred-neighbour slot is empty.
        assert simulated.processes[probe.root].preferred_neighbour is None

    def test_probe_absorbs_loss_through_retransmission(self):
        peers = generate_peers_with_lifetimes(14, 2, seed=8)
        simulated = run_gossip_overlay(
            peers,
            EmptyRectangleSelection(),
            network=LinkModel(0.01, loss_rate=0.1, seed=8),
            settle_time=40.0,
            seed=8,
        )
        probe = run_dissemination_probe(simulated, extra_time=40.0)
        assert probe.unreached_peers == set()
        # The probe traffic is counted separately (stats were reset).
        assert probe.network_stats.count("probe") > 0

    def test_explicit_unknown_root_rejected(self):
        peers = generate_peers_with_lifetimes(6, 2, seed=2)
        simulated = run_gossip_overlay(
            peers, EmptyRectangleSelection(), settle_time=20.0, seed=2
        )
        with pytest.raises(KeyError):
            run_dissemination_probe(simulated, root=999)
