"""Unit tests for the simulated message network."""

import pytest

from repro.simulation.engine import SimulationEngine
from repro.simulation.network import SimulatedNetwork


@pytest.fixture()
def engine():
    return SimulationEngine()


class TestDelivery:
    def test_message_is_delivered_after_latency(self, engine):
        network = SimulatedNetwork(engine, latency=0.5)
        received = []
        network.register(1, lambda msg: received.append((engine.now, msg.payload)))
        network.send(0, 1, "ping", "hello")
        engine.run()
        assert received == [(0.5, "hello")]

    def test_latency_model_per_pair(self, engine):
        network = SimulatedNetwork(engine, latency=lambda s, r: 0.1 * (r - s))
        received = []
        network.register(3, lambda msg: received.append(engine.now))
        network.send(1, 3, "ping", None)
        engine.run()
        assert received == [pytest.approx(0.2)]

    def test_message_metadata(self, engine):
        network = SimulatedNetwork(engine, latency=0.0)
        captured = []
        network.register(2, captured.append)
        network.send(7, 2, "construct", {"zone": None})
        engine.run()
        message = captured[0]
        assert message.sender == 7
        assert message.recipient == 2
        assert message.kind == "construct"
        assert message.sent_at == 0.0

    def test_negative_constant_latency_rejected(self, engine):
        with pytest.raises(ValueError):
            SimulatedNetwork(engine, latency=-1.0)


class TestRegistration:
    def test_duplicate_registration_rejected(self, engine):
        network = SimulatedNetwork(engine)
        network.register(1, lambda msg: None)
        with pytest.raises(ValueError):
            network.register(1, lambda msg: None)

    def test_messages_to_unregistered_peers_are_dropped(self, engine):
        network = SimulatedNetwork(engine, latency=0.0)
        network.send(0, 99, "ping", None)
        engine.run()
        assert network.stats.messages_sent == 1
        assert network.stats.messages_dropped == 1
        assert network.stats.messages_delivered == 0

    def test_unregister_stops_delivery(self, engine):
        network = SimulatedNetwork(engine, latency=1.0)
        received = []
        network.register(1, lambda msg: received.append(msg))
        network.send(0, 1, "ping", None)
        network.unregister(1)
        engine.run()
        assert received == []
        assert network.stats.messages_dropped == 1
        assert not network.is_registered(1)


class TestCounters:
    def test_per_kind_counters(self, engine):
        network = SimulatedNetwork(engine, latency=0.0)
        network.register(1, lambda msg: None)
        for _ in range(3):
            network.send(0, 1, "announce", None)
        network.send(0, 1, "construct", None)
        engine.run()
        assert network.stats.count("announce") == 3
        assert network.stats.count("construct") == 1
        assert network.stats.count("unknown") == 0
        assert network.stats.messages_sent == 4
        assert network.stats.messages_delivered == 4

    def test_reset_stats(self, engine):
        network = SimulatedNetwork(engine, latency=0.0)
        network.register(1, lambda msg: None)
        network.send(0, 1, "announce", None)
        engine.run()
        network.reset_stats()
        assert network.stats.messages_sent == 0
        assert network.stats.by_kind == {}
