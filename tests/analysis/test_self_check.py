"""The pytest-collected self-check: ``src/repro`` must hold its contracts.

This is the enforcement point the ISSUE asks for: the tier-1 suite fails
the moment any module under ``src/repro`` mutates ``_neighbours`` without
notifying the delta stream, desynchronises the owned spatial index,
introduces unordered float accumulation into byte-identity code, or drifts
off the seeding contract -- *before* the hypothesis equivalence suites
would catch the divergence behaviourally.
"""

from pathlib import Path

from repro.analysis import lint_paths, validate_bench_directory

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC_REPRO = REPO_ROOT / "src" / "repro"
BENCH_RESULTS = REPO_ROOT / "benchmarks" / "results"


def test_src_repro_is_contract_clean():
    violations = lint_paths([SRC_REPRO])
    assert violations == [], "\n".join(v.render() for v in violations)


def test_src_repro_covers_every_module():
    # The walk must actually see the guarded modules (a path regression that
    # silently analyzed nothing would make the clean check vacuous).
    from repro.analysis.runner import iter_python_files

    files = {path.name for path in iter_python_files([SRC_REPRO])}
    assert {"network.py", "incremental.py", "index.py", "churn.py"} <= files
    assert len(files) > 30


def test_checked_in_bench_records_are_schema_valid():
    errors = validate_bench_directory([BENCH_RESULTS])
    assert errors == [], "\n".join(errors)
