"""The fixture corpus: every known-bad snippet flags, the clean corpus doesn't.

Each ``bad/`` fixture annotates its violations with trailing ``# expect:
RPL00x`` markers; the corpus test asserts the checker output matches those
(rule id *and* line) exactly -- no misses, no extras.  The ``clean/``
corpus holds near-miss shapes that must produce nothing.
"""

import re
from collections import Counter
from pathlib import Path

import pytest

from repro.analysis import lint_paths, main
from repro.analysis.checkers import ALL_RULES
from repro.analysis.core import PRAGMA_RULE_ID

FIXTURES = Path(__file__).resolve().parent / "fixtures"
BAD = sorted((FIXTURES / "bad").glob("*.py"))
CLEAN = sorted((FIXTURES / "clean").glob("*.py"))

_EXPECT = re.compile(r"#\s*expect:\s*(?P<codes>RPL\d{3}(?:\s*,\s*RPL\d{3})*)\s*$")


def expected_markers(path: Path):
    """``{(line, rule_id), ...}`` parsed from the fixture's expect markers."""
    expected = set()
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        match = _EXPECT.search(line)
        if match:
            for code in match.group("codes").split(","):
                expected.add((lineno, code.strip()))
    return expected


def test_corpus_is_present():
    assert len(BAD) >= 8 and len(CLEAN) >= 1
    # At least two known-violation snippets per rule id (ISSUE acceptance).
    rule_counts = Counter()
    for path in BAD:
        for _, rule_id in expected_markers(path):
            rule_counts[rule_id] += 1
    for rule in ALL_RULES:
        assert rule_counts[rule.rule_id] >= 2, rule.rule_id
    assert rule_counts[PRAGMA_RULE_ID] >= 1


@pytest.mark.parametrize("path", BAD, ids=lambda p: p.stem)
def test_bad_fixture_flags_exactly_its_markers(path):
    expected = expected_markers(path)
    assert expected, f"{path} carries no expect markers"
    actual = {(v.line, v.rule_id) for v in lint_paths([path])}
    assert actual == expected


@pytest.mark.parametrize("path", CLEAN, ids=lambda p: p.stem)
def test_clean_fixture_is_silent(path):
    violations = lint_paths([path])
    assert violations == [], "\n".join(v.render() for v in violations)


def test_cli_exits_nonzero_on_the_bad_corpus(capsys):
    assert main([str(FIXTURES / "bad")]) == 1
    assert "contract violation" in capsys.readouterr().out


def test_cli_exits_zero_on_the_clean_corpus(capsys):
    assert main([str(FIXTURES / "clean")]) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_json_format_is_machine_readable(capsys):
    import json

    assert main(["--format", "json", str(FIXTURES / "bad")]) == 1
    decoded = json.loads(capsys.readouterr().out)
    assert all({"rule", "path", "line", "message"} <= set(entry) for entry in decoded)
    assert any(entry["rule"] == "RPL001" for entry in decoded)


def test_repro_cli_lint_subcommand(capsys):
    from repro.cli import main as cli_main

    assert cli_main(["lint", str(FIXTURES / "bad")]) == 1
    assert cli_main(["lint", str(FIXTURES / "clean")]) == 0
    capsys.readouterr()
