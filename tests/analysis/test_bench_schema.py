"""The benchmark-record schema gate: malformed perf records fail fast."""

import json

from repro.analysis import main, validate_bench_directory, validate_bench_record

GOOD_RECORD = {
    "scenario": "index_scaling_full_convergence",
    "peer_count": 2000,
    "wall_seconds": 12.646,
    "speedup": 6.73,
    "speedup_floor": 5.0,
    "python": "3.11.7",
}


def test_good_record_passes():
    assert validate_bench_record(GOOD_RECORD) == []


def test_extra_keys_are_allowed():
    record = dict(GOOD_RECORD, dimension=2, recorded_at="2026-08-08T00:00:00Z")
    assert validate_bench_record(record) == []


def test_missing_required_key_fails():
    record = dict(GOOD_RECORD)
    del record["speedup_floor"]
    errors = validate_bench_record(record)
    assert any("speedup_floor" in error for error in errors)


def test_wrong_types_fail():
    assert validate_bench_record(dict(GOOD_RECORD, wall_seconds="fast"))
    assert validate_bench_record(dict(GOOD_RECORD, peer_count=2000.5))
    assert validate_bench_record(dict(GOOD_RECORD, scenario=""))
    assert validate_bench_record(dict(GOOD_RECORD, speedup=True))
    assert validate_bench_record(["not", "an", "object"])


def test_non_positive_measurements_fail():
    assert validate_bench_record(dict(GOOD_RECORD, wall_seconds=0))
    assert validate_bench_record(dict(GOOD_RECORD, peer_count=0))
    assert validate_bench_record(dict(GOOD_RECORD, speedup_floor=-1.0))


def test_peak_rss_is_optional_but_typed():
    """Records may omit peak_rss_mb, but a present value must be a positive
    number -- the memory trajectory is only comparable if it is."""
    assert validate_bench_record(GOOD_RECORD) == []  # omitted: fine
    assert validate_bench_record(dict(GOOD_RECORD, peak_rss_mb=512.3)) == []
    assert validate_bench_record(dict(GOOD_RECORD, peak_rss_mb=0))
    assert validate_bench_record(dict(GOOD_RECORD, peak_rss_mb="big"))
    assert validate_bench_record(dict(GOOD_RECORD, peak_rss_mb=True))


def test_network_latency_fields_are_optional_but_typed():
    """The real-network benchmark reports tail latency and wire volume;
    other scenarios omit both.  Present values must be well-formed."""
    assert validate_bench_record(GOOD_RECORD) == []  # omitted: fine
    assert (
        validate_bench_record(
            dict(GOOD_RECORD, p99_latency_s=1.38, bytes_sent=52_401_772)
        )
        == []
    )
    # Zero is legitimate for both: a lossless single-hop probe can measure
    # 0.0s, and a no-traffic arm sends no bytes.
    assert validate_bench_record(dict(GOOD_RECORD, p99_latency_s=0.0)) == []
    assert validate_bench_record(dict(GOOD_RECORD, bytes_sent=0)) == []
    assert validate_bench_record(dict(GOOD_RECORD, p99_latency_s=-0.1))
    assert validate_bench_record(dict(GOOD_RECORD, p99_latency_s="slow"))
    assert validate_bench_record(dict(GOOD_RECORD, bytes_sent=-1))
    assert validate_bench_record(dict(GOOD_RECORD, bytes_sent=1.5))
    assert validate_bench_record(dict(GOOD_RECORD, bytes_sent=True))


def test_directory_walk_reports_per_file(tmp_path):
    good = tmp_path / "BENCH_good.json"
    good.write_text(json.dumps(GOOD_RECORD))
    bad = tmp_path / "BENCH_bad.json"
    bad.write_text(json.dumps({"scenario": 42}))
    broken = tmp_path / "BENCH_broken.json"
    broken.write_text("{not json")
    ignored = tmp_path / "notes.json"
    ignored.write_text("{}")

    errors = validate_bench_directory([tmp_path])
    assert any("BENCH_bad.json" in error for error in errors)
    assert any("BENCH_broken.json" in error for error in errors)
    assert not any("BENCH_good.json" in error for error in errors)
    assert not any("notes.json" in error for error in errors)


def test_empty_directory_is_not_an_error(tmp_path):
    assert validate_bench_directory([tmp_path]) == []


def test_errors_carry_file_path_and_record_index(tmp_path):
    """A list-shaped BENCH file reports which record is bad, not just which
    file -- checked-in result files hold dozens of records."""
    series = tmp_path / "BENCH_series.json"
    series.write_text(
        json.dumps([GOOD_RECORD, dict(GOOD_RECORD, peer_count="many"), GOOD_RECORD])
    )
    errors = validate_bench_directory([tmp_path])
    assert len(errors) == 1
    assert "BENCH_series.json" in errors[0]
    assert "record[1]" in errors[0]
    assert "peer_count" in errors[0]


def test_cli_combines_lint_and_schema_exit_codes(tmp_path, capsys):
    clean_module = tmp_path / "clean.py"
    clean_module.write_text("VALUE = 1\n")
    bad = tmp_path / "BENCH_bad.json"
    bad.write_text(json.dumps({"scenario": 42}))

    assert main([str(clean_module), "--bench-schema", str(tmp_path)]) == 1
    captured = capsys.readouterr()
    assert "reprolint: clean" in captured.out
    assert "bench-schema:" in captured.err

    good = tmp_path / "BENCH_good.json"
    bad.unlink()
    good.write_text(json.dumps(GOOD_RECORD))
    assert main([str(clean_module), "--bench-schema", str(tmp_path)]) == 0
