"""Seeded-violation proofs: each rule catches a *real* regression.

For every rule id, these tests copy the actual guarded module into a
scratch ``src/repro`` mirror (so module-scoped rules resolve exactly as
they do in the repo), seed one realistic violation -- dropping the
notification ``add_peer`` gained in PR 4, bypassing the index maintenance
in a renamed ``remove_peer``, deleting the justified pragma over a real
accumulation -- and prove the checker reports it with the right rule id at
the right line.  The pristine copy is checked clean first, so a pass can
only come from the seeded delta.
"""

from pathlib import Path

import pytest

from repro.analysis import lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"


def _mirror(tmp_path: Path, relative: str, source: str) -> Path:
    """Write a module copy under a ``src/repro`` mirror, preserving its name."""
    target = tmp_path / "src" / "repro" / relative
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source, encoding="utf-8")
    return target


def _line_of(source: str, needle: str) -> int:
    for lineno, line in enumerate(source.splitlines(), start=1):
        if needle in line:
            return lineno
    raise AssertionError(f"needle {needle!r} not found")


def _seed(source: str, needle: str, replacement: str) -> str:
    assert needle in source, f"module drifted: {needle!r} no longer present"
    return source.replace(needle, replacement, 1)


@pytest.fixture()
def network_source() -> str:
    return (SRC / "overlay" / "network.py").read_text(encoding="utf-8")


@pytest.fixture()
def incremental_source() -> str:
    return (SRC / "overlay" / "incremental.py").read_text(encoding="utf-8")


@pytest.fixture()
def columnar_source() -> str:
    return (SRC / "overlay" / "columnar.py").read_text(encoding="utf-8")


@pytest.fixture()
def hyperplanes_source() -> str:
    return (SRC / "overlay" / "selection" / "hyperplanes.py").read_text(
        encoding="utf-8"
    )


def test_pristine_copies_are_clean(tmp_path, network_source):
    for relative, source_path in [
        ("overlay/network.py", None),
        ("geometry/index.py", SRC / "geometry" / "index.py"),
        ("workloads/churn.py", SRC / "workloads" / "churn.py"),
        ("overlay/incremental.py", SRC / "overlay" / "incremental.py"),
        ("overlay/columnar.py", SRC / "overlay" / "columnar.py"),
        (
            "overlay/selection/hyperplanes.py",
            SRC / "overlay" / "selection" / "hyperplanes.py",
        ),
        ("simulation/netmodel.py", SRC / "simulation" / "netmodel.py"),
    ]:
        source = network_source if source_path is None else source_path.read_text()
        copy = _mirror(tmp_path, relative, source)
        assert lint_paths([copy]) == []


def test_rpl001_catches_a_dropped_add_peer_notification(tmp_path, network_source):
    """Re-introduces the exact drift PR 4 fixed: a silent bootstrap install."""
    seeded = _seed(
        network_source,
        "self._notify_selection_change(peer.peer_id, set(), bootstrap_ids)",
        "pass  # seeded violation: bootstrap edges installed silently",
    )
    copy = _mirror(tmp_path, "overlay/network.py", seeded)
    violations = lint_paths([copy])
    expected_line = _line_of(
        seeded, "self._neighbours[peer.peer_id] = set(bootstrap_ids)"
    )
    assert [(v.rule_id, v.line) for v in violations] == [("RPL001", expected_line)]


def test_rpl001_catches_a_rogue_rewire_helper(tmp_path, network_source):
    seeded = network_source + (
        "\n\ndef rebalance(overlay, peer_id, targets):\n"
        '    """Seeded violation: installs a selection behind the recorders."""\n'
        "    overlay._neighbours[peer_id] = set(targets)\n"
    )
    copy = _mirror(tmp_path, "overlay/network.py", seeded)
    violations = lint_paths([copy])
    expected_line = _line_of(seeded, "overlay._neighbours[peer_id] = set(targets)")
    assert [(v.rule_id, v.line) for v in violations] == [("RPL001", expected_line)]


def test_rpl002_catches_membership_mutation_bypassing_the_index(
    tmp_path, network_source
):
    """Renaming remove_peer off the sanctioned list and dropping the index
    maintenance must flag every peer-map mutation in it."""
    seeded = _seed(network_source, "def remove_peer(", "def evict_peer(")
    seeded = _seed(
        seeded,
        "self._index.remove(peer_id)",
        "pass  # seeded violation: index maintenance dropped",
    )
    copy = _mirror(tmp_path, "overlay/network.py", seeded)
    violations = lint_paths([copy])
    expected_line = _line_of(seeded, "info = self._peers.pop(peer_id)")
    assert [(v.rule_id, v.line) for v in violations] == [("RPL002", expected_line)]


def test_rpl003_catches_unsuppressed_accumulation_in_the_index(tmp_path):
    """Deleting the justification over pareto_minima's L1 key re-flags it."""
    source = (SRC / "geometry" / "index.py").read_text(encoding="utf-8")
    pragma_line = next(
        line
        for line in source.splitlines()
        if "reprolint: disable=RPL003" in line
    )
    seeded = _seed(source, pragma_line + "\n", "")
    copy = _mirror(tmp_path, "geometry/index.py", seeded)
    violations = lint_paths([copy])
    expected_line = _line_of(seeded, "ordered = sorted(entries")
    assert [(v.rule_id, v.line) for v in violations] == [("RPL003", expected_line)]


def test_rpl003_catches_a_seeded_numpy_reduction(tmp_path):
    source = (SRC / "geometry" / "index.py").read_text(encoding="utf-8")
    seeded = source + (
        "\n\ndef _fast_l1(keys):\n"
        '    """Seeded violation: pairwise reduction in byte-identity code."""\n'
        "    return keys.sum(axis=1)\n"
    )
    copy = _mirror(tmp_path, "geometry/index.py", seeded)
    violations = lint_paths([copy])
    expected_line = _line_of(seeded, "return keys.sum(axis=1)")
    assert [(v.rule_id, v.line) for v in violations] == [("RPL003", expected_line)]


def test_rpl004_catches_the_unseeded_fallback_without_its_pragma(tmp_path):
    source = (SRC / "workloads" / "churn.py").read_text(encoding="utf-8")
    pragma_line = next(
        line
        for line in source.splitlines()
        if "reprolint: disable=RPL004" in line
    )
    seeded = _seed(source, pragma_line + "\n", "")
    copy = _mirror(tmp_path, "workloads/churn.py", seeded)
    violations = lint_paths([copy])
    expected_line = _line_of(seeded, "return random.Random()")
    assert [(v.rule_id, v.line) for v in violations] == [("RPL004", expected_line)]


def test_rpl004_catches_an_unseeded_per_link_rng_in_netmodel(tmp_path):
    """The network model's whole determinism story is the per-directed-link
    ``default_rng((seed, sender, recipient))`` streams; dropping the seed
    tuple makes every loss/latency draw irreproducible and must flag."""
    source = (SRC / "simulation" / "netmodel.py").read_text(encoding="utf-8")
    seeded = _seed(
        source,
        "np.random.default_rng((self._seed, sender, recipient))",
        "np.random.default_rng()",
    )
    copy = _mirror(tmp_path, "simulation/netmodel.py", seeded)
    violations = lint_paths([copy])
    expected_line = _line_of(seeded, "_LinkState(np.random.default_rng())")
    assert [(v.rule_id, v.line) for v in violations] == [("RPL004", expected_line)]


def test_rpl004_catches_a_seeded_wall_clock_read(tmp_path, network_source):
    seeded = network_source.replace(
        "import random\n",
        "import random\nimport time\n",
        1,
    ) + (
        "\n\ndef _stamp_join(overlay, peer):\n"
        '    """Seeded violation: wall-clock timestamp in overlay state."""\n'
        "    return (peer.peer_id, time.time())\n"
    )
    copy = _mirror(tmp_path, "overlay/network.py", seeded)
    violations = lint_paths([copy])
    expected_line = _line_of(seeded, "time.time())")
    assert [(v.rule_id, v.line) for v in violations] == [("RPL004", expected_line)]


def test_rpl005_catches_population_work_in_the_mirror_hot_path(
    tmp_path, incremental_source
):
    """Reading the full directed map inside the @hot_path mirror repair --
    instead of the one touched peer's selection -- reintroduces O(N) work
    per churn event."""
    seeded = _seed(
        incremental_source,
        "current = overlay.selected_neighbours(peer_id)",
        "current = frozenset(overlay.directed_neighbour_map()[peer_id])",
    )
    copy = _mirror(tmp_path, "overlay/incremental.py", seeded)
    violations = lint_paths([copy])
    expected_line = _line_of(
        seeded, "overlay.directed_neighbour_map()[peer_id]"
    )
    assert [(v.rule_id, v.line) for v in violations] == [("RPL005", expected_line)]


def test_rpl005_catches_an_implicit_set_silently_materialised(
    tmp_path, incremental_source
):
    """The columnar tentpole's regression shape: the engine's @hot_path
    ``note_join`` quietly rebuilding an explicit population-sized structure
    instead of delegating the O(1) implicit-representation write."""
    seeded = _seed(
        incremental_source,
        "self._view.note_join(peer_id)",
        "self._dirty_all = sorted(self._overlay._peers)",
    )
    copy = _mirror(tmp_path, "overlay/incremental.py", seeded)
    violations = lint_paths([copy])
    expected_line = _line_of(seeded, "sorted(self._overlay._peers)")
    assert [(v.rule_id, v.line) for v in violations] == [("RPL005", expected_line)]


def test_rpl005_catches_population_scheduling_in_plan_round(
    tmp_path, columnar_source
):
    """The vectorised round core's regression shape: ``plan_round`` swapping
    its mask-algebra dirty scan for a materialised population sort would put
    an O(N) Python pass back on every convergence round."""
    seeded = _seed(
        columnar_source,
        "scheduled_rows = self._dirty_row_array()",
        "scheduled_rows = np.asarray(sorted(self._rows.peer_ids))",
    )
    copy = _mirror(tmp_path, "overlay/columnar.py", seeded)
    violations = lint_paths([copy])
    expected_line = _line_of(seeded, "sorted(self._rows.peer_ids)")
    assert [(v.rule_id, v.line) for v in violations] == [("RPL005", expected_line)]


def test_rpl006_catches_a_seeded_stateful_select(tmp_path, hyperplanes_source):
    """Remembering the last reference peer makes select depend on call
    history, which path_independent=True forbids."""
    seeded = _seed(
        hyperplanes_source,
        "        others = self._exclude_reference(reference, candidates)\n",
        "        others = self._exclude_reference(reference, candidates)\n"
        "        self._last_reference = reference.peer_id\n",
    )
    copy = _mirror(tmp_path, "overlay/selection/hyperplanes.py", seeded)
    violations = lint_paths([copy])
    expected_line = _line_of(seeded, "self._last_reference = reference.peer_id")
    assert [(v.rule_id, v.line) for v in violations] == [("RPL006", expected_line)]


def test_rpl006_catches_a_seeded_mutable_global_read(tmp_path, hyperplanes_source):
    seeded = _seed(
        hyperplanes_source,
        "        others = self._exclude_reference(reference, candidates)\n",
        "        others = self._exclude_reference(reference, candidates)[\n"
        '            : _RUNTIME_LIMITS["max_candidates"]\n'
        "        ]\n",
    ) + '\n\n_RUNTIME_LIMITS = {"max_candidates": 1024}\n'
    copy = _mirror(tmp_path, "overlay/selection/hyperplanes.py", seeded)
    violations = lint_paths([copy])
    expected_line = _line_of(seeded, "_RUNTIME_LIMITS[")
    assert [(v.rule_id, v.line) for v in violations] == [("RPL006", expected_line)]


def test_rpl007_catches_a_swallowed_convergence_error(tmp_path, incremental_source):
    """An epoch driver that eats ConvergenceError resumes against the
    engine's mid-transaction worklists -- the bug class PR 4 fixed."""
    seeded = incremental_source + (
        "\n\ndef replay_epochs(overlay, epochs):\n"
        '    """Seeded violation: resumes with a stale incremental engine."""\n'
        "    for epoch in epochs:\n"
        "        try:\n"
        "            overlay.apply_batch(epoch)\n"
        "        except ConvergenceError:\n"
        "            continue\n"
        "    return overlay\n"
    )
    copy = _mirror(tmp_path, "overlay/incremental.py", seeded)
    violations = lint_paths([copy])
    expected_line = _line_of(seeded, "except ConvergenceError:")
    assert [(v.rule_id, v.line) for v in violations] == [("RPL007", expected_line)]
