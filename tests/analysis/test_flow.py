"""Unit tests for the interprocedural flow engine (call graph + queries).

Each test builds a tiny project with :meth:`FlowAnalysis.from_sources`
and checks one resolution mechanism in isolation: method dispatch through
``self``/MRO, cross-module import aliasing, attribute-constructor typing,
hot-path reachability, and -- most importantly -- that *unresolved* calls
degrade conservatively: they never satisfy an obligation and never extend
hot-path reachability.
"""

from repro.analysis import analyze_source
from repro.analysis.checkers import ALL_RULES
from repro.analysis.flow import FlowAnalysis


def _flow(**sources: str) -> FlowAnalysis:
    return FlowAnalysis.from_sources(
        {name.replace("_", "."): text for name, text in sources.items()}
    )


def test_self_dispatch_through_the_mro() -> None:
    flow = _flow(
        pkg_net='''
class Base:
    def _announce(self, peer_id):
        self._recorder.note_touch([peer_id])


class Derived(Base):
    def rewire(self, peer_id, targets):
        self._neighbours[peer_id] = set(targets)
        self._announce(peer_id)
'''
    )
    info = flow.function_by_key("pkg.net::Derived.rewire")
    assert info is not None
    assert "pkg.net::Base._announce" in info.callees
    assert not info.calls_unknown
    assert flow.transitively_notifies(info.node)


def test_import_aliasing_resolves_cross_module() -> None:
    flow = _flow(
        pkg_alpha='''
def announce(overlay, peer_id):
    overlay.notify_selection_change(peer_id, set(), set())
''',
        pkg_beta='''
from pkg.alpha import announce as tell
import pkg.alpha as helpers


def direct(overlay, peer_id):
    tell(overlay, peer_id)


def via_module(overlay, peer_id):
    helpers.announce(overlay, peer_id)
''',
    )
    for name in ("direct", "via_module"):
        info = flow.function_by_key(f"pkg.beta::{name}")
        assert info is not None, name
        assert info.callees == ["pkg.alpha::announce"], name
        assert not info.calls_unknown, name
        assert flow.transitively_notifies(info.node), name


def test_attribute_constructor_dispatch() -> None:
    flow = _flow(
        pkg_net='''
class Overlay:
    def __init__(self):
        self._index = SpatialIndex()
        self._peers = {}

    def relocate(self, peer_id, point):
        self._peers[peer_id] = point
        self._index.update_point(peer_id, point)


class SpatialIndex:
    def update_point(self, peer_id, point):
        self._grid_index = point
'''
    )
    info = flow.function_by_key("pkg.net::Overlay.relocate")
    assert info is not None
    assert "pkg.net::SpatialIndex.update_point" in flow.closure(info.key)
    assert flow.transitively_maintains_index(info.node)


def test_annotated_parameter_dispatch() -> None:
    flow = _flow(
        pkg_mod='''
class Engine:
    def step(self, delta):
        self._worklist = delta


def drive(engine: "Engine", delta):
    engine.step(delta)
'''
    )
    info = flow.function_by_key("pkg.mod::drive")
    assert info is not None
    assert info.callees == ["pkg.mod::Engine.step"]
    assert not info.calls_unknown


def test_unresolved_calls_degrade_without_satisfying_anything() -> None:
    flow = _flow(
        pkg_mod='''
def rewire(overlay, peer_id, bus):
    overlay._neighbours[peer_id] = set()
    bus.broadcast(peer_id)
'''
    )
    info = flow.function_by_key("pkg.mod::rewire")
    assert info is not None
    assert info.calls_unknown
    assert info.callees == []
    assert flow.closure(info.key) == frozenset({info.key})
    assert not flow.transitively_notifies(info.node)


def test_builtin_calls_are_not_unknown() -> None:
    flow = _flow(
        pkg_mod='''
def shape(values):
    return sorted(set(values), key=len)
'''
    )
    info = flow.function_by_key("pkg.mod::shape")
    assert info is not None
    assert not info.calls_unknown


def test_hot_reachability_stops_at_unresolved_calls() -> None:
    flow = _flow(
        pkg_mod='''
from repro.contracts import hot_path


class Engine:
    @hot_path
    def apply(self, delta):
        self._step(delta)
        self._bus.publish(delta)

    def _step(self, delta):
        self._pending = delta


def cold_helper(overlay):
    return overlay.snapshot()
'''
    )
    hot = flow.hot_reachable()
    assert hot["pkg.mod::Engine.apply"] == "Engine.apply"
    assert hot["pkg.mod::Engine._step"] == "Engine.apply"
    assert "pkg.mod::cold_helper" not in hot


def test_unknown_call_never_discharges_rpl001() -> None:
    source = '''
class OverlayNetwork:
    def __init__(self):
        self._neighbours: dict = {}
        self._index = object()

    def rewire(self, peer_id, targets, bus):
        self._neighbours[peer_id] = set(targets)
        bus.notify_everyone(peer_id)
'''
    violations = analyze_source(source, ALL_RULES, module="repro.overlay.fake")
    assert [v.rule_id for v in violations] == ["RPL001"]


def test_resolved_helper_discharges_rpl001_interprocedurally() -> None:
    source = '''
class OverlayNetwork:
    def __init__(self):
        self._neighbours: dict = {}
        self._index = object()
        self._recorders = []

    def _record(self, peer_id, old, new):
        for recorder in self._recorders:
            recorder.note_touch([peer_id])

    def rewire(self, peer_id, targets):
        old = self._neighbours[peer_id]
        self._neighbours[peer_id] = set(targets)
        self._record(peer_id, old, set(targets))
'''
    violations = analyze_source(source, ALL_RULES, module="repro.overlay.fake")
    assert violations == []
