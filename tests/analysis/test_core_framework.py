"""Unit coverage of the framework itself: pragmas, scoping, rendering."""

import textwrap

from repro.analysis import analyze_source, parse_pragmas
from repro.analysis.checkers import ALL_RULES
from repro.analysis.core import PARSE_RULE_ID, PRAGMA_RULE_ID, infer_module
from pathlib import Path


def _analyze(source, module=None):
    return analyze_source(textwrap.dedent(source), ALL_RULES, module=module)


class TestPragmas:
    def test_trailing_pragma_suppresses_its_line(self):
        violations = _analyze(
            """
            def f(weights):
                return sum(weights.values())  # reprolint: disable=RPL003 reason=justified for the test
            """
        )
        assert violations == []

    def test_standalone_pragma_suppresses_the_next_line(self):
        violations = _analyze(
            """
            def f(weights):
                # reprolint: disable=RPL003 reason=justified for the test
                return sum(weights.values())
            """
        )
        assert violations == []

    def test_pragma_only_suppresses_named_rules(self):
        violations = _analyze(
            """
            import random

            def f(weights):
                return sum(weights.values()), random.random()  # reprolint: disable=RPL003 reason=half a fix
            """
        )
        assert [v.rule_id for v in violations] == ["RPL004"]

    def test_bare_pragma_is_rpl000_and_does_not_suppress(self):
        violations = _analyze(
            """
            def f(weights):
                return sum(weights.values())  # reprolint: disable=RPL003
            """
        )
        assert sorted(v.rule_id for v in violations) == [PRAGMA_RULE_ID, "RPL003"]

    def test_empty_reason_is_rpl000(self):
        violations = _analyze(
            """
            x = 1  # reprolint: disable=RPL001 reason=
            """
        )
        assert [v.rule_id for v in violations] == [PRAGMA_RULE_ID]

    def test_rpl000_itself_cannot_be_suppressed(self):
        violations = _analyze(
            """
            x = 1  # reprolint: disable=RPL000
            """
        )
        assert [v.rule_id for v in violations] == [PRAGMA_RULE_ID]

    def test_parse_pragmas_reads_codes_and_reason(self):
        pragmas = parse_pragmas(
            "value = 1  # reprolint: disable=RPL001,RPL002 reason=because tested\n"
        )
        assert len(pragmas) == 1
        assert pragmas[0].codes == frozenset({"RPL001", "RPL002"})
        assert pragmas[0].reason == "because tested"
        assert not pragmas[0].standalone


class TestScoping:
    def test_byte_identity_guards_only_index_and_selection(self):
        source = """
        def f(weights):
            return sum(weights.values())
        """
        assert _analyze(source, module="repro.geometry.index")
        assert _analyze(source, module="repro.overlay.selection.empty_rectangle")
        assert _analyze(source, module="repro.metrics.reporting") == []

    def test_determinism_guards_every_module(self):
        source = """
        import random

        def f():
            return random.random()
        """
        assert _analyze(source, module="repro.metrics.reporting")
        assert _analyze(source, module=None)

    def test_infer_module(self):
        assert (
            infer_module(Path("src/repro/geometry/index.py"))
            == "repro.geometry.index"
        )
        assert infer_module(Path("src/repro/__init__.py")) == "repro"
        assert infer_module(Path("tests/analysis/fixtures/bad/x.py")) is None


class TestReporting:
    def test_syntax_error_is_reported_not_raised(self):
        violations = analyze_source("def broken(:\n", ALL_RULES, path="x.py")
        assert [v.rule_id for v in violations] == [PARSE_RULE_ID]

    def test_render_format(self):
        violations = _analyze(
            """
            import time

            def f():
                return time.time()
            """
        )
        assert len(violations) == 1
        rendered = violations[0].render()
        assert rendered.startswith("<string>:5: RPL004 ")

    def test_rule_registry_is_complete_and_ordered(self):
        assert [rule.rule_id for rule in ALL_RULES] == [
            "RPL001",
            "RPL002",
            "RPL003",
            "RPL004",
            "RPL005",
            "RPL006",
            "RPL007",
        ]
        for rule in ALL_RULES:
            assert rule.invariant and rule.name
