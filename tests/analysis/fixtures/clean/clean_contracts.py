"""Clean corpus: near-miss shapes that must NOT trip any checker.

Each function sits as close to a rule's trigger as possible while honouring
the contract, so a checker that over-reaches fails the negative test.
"""

import math
import random


class OverlayNetwork:
    def install(self, peer_id, selected):
        """Neighbour mutation paired with the public notification."""
        previous = self._neighbours[peer_id]
        self._neighbours[peer_id] = set(selected)
        self.notify_selection_change(peer_id, previous, set(selected))

    def evict_with_recorders(self, peer_id, selectors):
        """Direct recorder notification also satisfies the contract."""
        self._neighbours.pop(peer_id, set())
        for recorder in self._delta_recorders:
            recorder.note_leave(peer_id)
            recorder.note_touch(selectors)

    def add_peer(self, peer):
        """Sanctioned membership method: may mutate peer state freely."""
        self._peers[peer.peer_id] = peer
        self._index.insert(peer.peer_id, peer.coordinates)

    def relocate(self, peer_id, coordinates):
        """Unsanctioned mutator, but it keeps the owned index in sync."""
        self._peers[peer_id] = coordinates
        self._index.move(peer_id, coordinates)


class PeerProcess:
    """The simulator's private ``_neighbours`` set is not overlay state."""

    def adopt(self, selection):
        self._neighbours.clear()
        self._neighbours.update(selection)


def ordered_total(weights):
    """Explicitly ordered accumulation is the sanctioned spelling."""
    total = 0.0
    for key in sorted(weights):
        total += weights[key]
    return total


def sorted_sum(values):
    return sum(sorted(values))


def insensitive_total(values):
    return math.fsum(values)


def justified_key(coordinates):
    return sum(coordinates)  # reprolint: disable=RPL003 reason=fixed-arity coordinate tuple; left-to-right order is the canonical L1 key


def seeded_generator(seed=0, rng=None):
    """The rng-parameter seeding contract (PR 4)."""
    return rng if rng is not None else random.Random(seed)
