"""Clean: every obligation is satisfied one call level below the trigger.

This is the corpus proof that reprolint v2's rules are interprocedural:
pre-v2, every function here needed a pragma; now the call graph proves
them fine with none.
"""

from repro.contracts import hot_path


class OverlayNetwork:
    def __init__(self, selection):
        self._selection = selection
        self._peers = {}
        self._neighbours: dict = {}
        self._index = SpatialIndex()
        self._recorders = []

    def notify_selection_change(self, peer_id, old, new):
        for recorder in self._recorders:
            recorder.note_touch([peer_id])

    def _record_rewire(self, peer_id, old, new):
        # One level below the mutation: still discharges RPL001.
        self.notify_selection_change(peer_id, old, new)

    def rewire(self, peer_id, targets):
        old = self._neighbours[peer_id]
        self._neighbours[peer_id] = set(targets)
        self._record_rewire(peer_id, old, set(targets))

    def _reindex(self, peer_id, coordinates):
        # One level below the mutation: still discharges RPL002.
        self._index.move(peer_id, coordinates)

    def relocate(self, peer_id, info):
        self._peers[peer_id] = info
        self._reindex(peer_id, info.coordinates)


class SpatialIndex:
    def move(self, peer_id, coordinates):
        pass


class DeltaMirror:
    """A hot path whose closure provably stays O(changes)."""

    def __init__(self):
        self._selected = {}

    @hot_path
    def apply(self, delta):
        for peer_id in delta.touched:
            self._refresh_one(peer_id)

    def _refresh_one(self, peer_id):
        self._selected[peer_id] = frozenset()


class CachedSelection:
    """path_independent with a lazy cache: memoisation is allowed."""

    path_independent = True

    def __init__(self, k):
        self._k = k
        self._by_dimension = {}

    def select(self, peer, candidates):
        ranked = self._rank(candidates)
        self._by_dimension[peer.dimension] = ranked
        return ranked[: self._k]

    def _rank(self, candidates):
        return sorted(candidates, key=lambda c: c.peer_id)


def converge_with_recovery(overlay, events):
    """Catching ConvergenceError is fine when the engine is invalidated."""
    try:
        return overlay.apply_batch(events)
    except ConvergenceError:
        overlay.invalidate_engine()
        return None


class ConvergenceError(Exception):
    pass
