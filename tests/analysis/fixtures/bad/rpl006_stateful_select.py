"""Known-bad: a path_independent selection writes attributes after init.

Remembering the last query (or counting calls) makes the answer a
function of call history, which breaks the additive-delta shortcut the
marker licenses.
"""


class StatefulSelection:
    path_independent = True

    def __init__(self, k):
        self._k = k
        self._calls = 0

    def select(self, peer, candidates):
        self._calls += 1  # expect: RPL006
        self._last_peer = peer  # expect: RPL006
        return sorted(candidates, key=lambda c: c.peer_id)[: self._k]
