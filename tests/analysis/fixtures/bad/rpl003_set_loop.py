"""Known-bad: set/dict iteration feeding an accumulator or tie-break."""


def accumulate(ids):
    total = 0.0
    for value in {float(peer_id) for peer_id in ids}:  # expect: RPL003
        total += value
    return total


def closest(distances):
    best = (float("inf"), -1)
    for peer_id, distance in distances.items():  # expect: RPL003
        best = min(best, (distance, peer_id))
    return best
