"""Known-bad: a @hot_path closure iterates the full peer population.

The marked entry promises O(changes) work; the helper it provably calls
walks every peer, so both the direct and the transitively reached scans
are flagged where they happen.
"""

from repro.contracts import hot_path


class DeltaRecorder:
    def __init__(self, overlay):
        self._overlay = overlay
        self._touched = set()

    @hot_path
    def note_touch(self, peer_ids):
        self._touched.update(peer_ids)
        self._recheck_everyone()

    def _recheck_everyone(self):
        for peer_id in self._overlay._peers:  # expect: RPL005
            self._touched.discard(peer_id)

    @hot_path
    def drain(self):
        snapshot = self._overlay.directed_neighbour_map()  # expect: RPL005
        self._touched.clear()
        return snapshot
