"""Known-bad: mutates the neighbour map through a same-scope alias."""


def drop_edge(overlay, peer_id, target):
    """The alias does not launder the mutation."""
    neighbours = overlay._neighbours
    neighbours[peer_id].discard(target)  # expect: RPL001


def purge(overlay, peer_id):
    neighbours = overlay._neighbours
    del neighbours[peer_id]  # expect: RPL001
