"""Known-bad: interpreter-global and unseeded randomness."""

import random


def jitter():
    return random.random()  # expect: RPL004


def pick(items):
    return random.choice(items)  # expect: RPL004


def fresh_generator():
    return random.Random()  # expect: RPL004
