"""Known-bad: a @hot_path entry materialises O(N) id sets.

``set(...)`` / ``sorted(...)`` over the peer population allocates a
population-sized object on every churn event -- exactly the cost the
"Road to N>=100k" ROADMAP item forbids on hot paths.
"""

from repro.contracts import hot_path


class ReselectionMirror:
    def __init__(self, overlay):
        self._overlay = overlay
        self._known = frozenset()

    @hot_path
    def apply(self, delta):
        self._known = frozenset(delta.joined)
        current = set(self._overlay._peers)  # expect: RPL005
        return current - self._known

    @hot_path
    def checkpoint(self):
        return sorted(self._overlay.peer_ids)  # expect: RPL005
