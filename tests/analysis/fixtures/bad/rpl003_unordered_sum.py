"""Known-bad: order-sensitive float accumulation in byte-identity code."""

import numpy as np


def total_weight(weights):
    """Sums dict values in hash-iteration order."""
    return sum(weights.values())  # expect: RPL003


def grid_mass(cells):
    return np.sum(cells)  # expect: RPL003


def row_keys(matrix):
    return matrix.sum(axis=1)  # expect: RPL003
