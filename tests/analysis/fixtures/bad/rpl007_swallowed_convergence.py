"""Known-bad: ConvergenceError swallowed without invalidating the engine.

After an aborted convergence the incremental engine holds
mid-transaction worklists; resuming without ``invalidate_engine()`` (or a
re-raise) replays PR 4's bug class.
"""


def drive_epoch(overlay, events):
    try:
        overlay.apply_batch(events)
    except ConvergenceError:  # expect: RPL007
        pass
    return overlay


def insert_all(overlay, peers):
    for peer in peers:
        try:
            overlay.insert_and_converge(peer)
        except ConvergenceError:  # expect: RPL007
            continue
    return overlay
