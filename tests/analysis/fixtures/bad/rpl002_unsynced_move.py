"""Known-bad: rewrites peer coordinate/membership state, index untouched."""


class OverlayNetwork:
    def teleport(self, peer_id, replacement):
        """Swaps a peer record outside the sanctioned membership methods."""
        self._peers[peer_id] = replacement  # expect: RPL002

    def drift(self, peer, coordinates):
        peer.coordinates = coordinates  # expect: RPL002
