"""Known-bad: logging a ConvergenceError is not exception safety.

The handler observes the failure but resumes with the stale engine; only
invalidation or a re-raise discharges the obligation.  A mixed handler
tuple is still a catch.
"""


def converge_with_retry(overlay, attempts):
    for _ in range(attempts):
        try:
            return overlay.converge(incremental=True)
        except (ValueError, ConvergenceError) as error:  # expect: RPL007
            print("convergence failed:", error)
    return None


def drain_until_stable(overlay, batches):
    applied = 0
    for batch in batches:
        try:
            overlay.apply_batch(batch)
            applied += 1
        except ConvergenceError as error:  # expect: RPL007
            applied = note_failure(error, applied)
    return applied


def note_failure(error, applied):
    return applied
