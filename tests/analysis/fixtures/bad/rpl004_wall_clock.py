"""Known-bad: wall-clock reads and unseeded numpy randomness."""

import time

import numpy as np


def stamp():
    return time.time()  # expect: RPL004


def shuffle_in_place(values):
    np.random.shuffle(values)  # expect: RPL004


def unseeded_rng():
    return np.random.default_rng()  # expect: RPL004
