"""Known-bad: evicts membership through an alias, index untouched."""


def evict(overlay, peer_id):
    overlay._peers.pop(peer_id)  # expect: RPL002


def evict_many(overlay, peer_ids):
    peers = overlay._peers
    for peer_id in peer_ids:
        del peers[peer_id]  # expect: RPL002
