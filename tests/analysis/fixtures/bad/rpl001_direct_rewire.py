"""Known-bad: mutates OverlayNetwork._neighbours without notifying.

Every ``# expect: RPL00x`` marker names the rule and line the corpus test
asserts; these files are parsed by reprolint, never imported.
"""


class OverlayNetwork:
    def rewire(self, peer_id, targets):
        """Installs a selection but never tells the delta recorders."""
        self._neighbours[peer_id] = set(targets)  # expect: RPL001

    def grow(self, peer_id, target):
        self._neighbours[peer_id].add(target)  # expect: RPL001

    def shrink_all(self, peer_id):
        self._neighbours.pop(peer_id)  # expect: RPL001
