"""Known-bad: a path_independent select path reads mutable module state.

The registry dict can be mutated between calls, so two identical queries
may answer differently; configuration must be captured at construction
time instead.  The read is flagged even one call level below ``select``.
"""

_TUNING = {"bias": 0.5}


class TunedSelection:
    path_independent = True

    def __init__(self, k):
        self._k = k

    def select(self, peer, candidates):
        return self._ranked(peer, candidates)[: self._k]

    def _ranked(self, peer, candidates):
        bias = _TUNING["bias"]  # expect: RPL006
        return sorted(candidates, key=lambda c: c.peer_id + bias)
