"""Known-bad: a suppression without a justification is itself an error."""


def innocuous():
    marker = 1  # reprolint: disable=RPL003  # expect: RPL000
    return marker
