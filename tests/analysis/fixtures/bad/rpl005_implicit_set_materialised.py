"""Known-bad: a columnar-style view silently rematerialises the population.

The implicit candidate representation's whole point is that hot-path
membership notes are O(1) array writes; the regression shape is a
"columnar" method quietly falling back to an explicit O(N) id set -- a
comprehension over the peer map, or a set() built from its keys -- which
reintroduces the per-event population cost the representation exists to
kill.
"""

from repro.contracts import hot_path


class ColumnarCandidateState:
    def __init__(self, overlay):
        self._overlay = overlay
        self._epoch = 0
        self._exceptions = {}

    @hot_path
    def note_join(self, peer_id):
        self._epoch += 1
        candidates = [other for other in self._overlay._peers if other != peer_id]  # expect: RPL005
        self._exceptions[peer_id] = candidates

    @hot_path
    def note_leave(self, peer_id, selector_ids):
        self._epoch += 1
        survivors = set(self._overlay._peers.keys()) - {peer_id}  # expect: RPL005
        self._exceptions[peer_id] = survivors
