"""The reprolint CLI surface: selection flags, formats, exit codes, budget.

Exit-code contract under test (shared by ``python -m repro.analysis`` and
the ``lint`` subcommand of ``python -m repro``)::

    0  clean after filtering
    1  findings (contract violations, bench-schema errors, budget breach)
    2  parse-or-config error (unknown rule id, or RPL999 survived filtering)
"""

import json
from pathlib import Path

from repro.analysis import main
from repro.cli import main as repro_main

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC_REPRO = REPO_ROOT / "src" / "repro"

WALL_CLOCK = "import time\n\n\ndef stamp():\n    return time.time()\n"


def _violating(tmp_path: Path) -> Path:
    module = tmp_path / "stamped.py"
    module.write_text(WALL_CLOCK, encoding="utf-8")
    return module


def test_findings_exit_1_and_render_with_location(tmp_path, capsys):
    module = _violating(tmp_path)
    assert main([str(module)]) == 1
    out = capsys.readouterr().out
    assert f"{module}:5: RPL004" in out
    assert "1 contract violation" in out


def test_select_narrows_the_run(tmp_path, capsys):
    module = _violating(tmp_path)
    assert main([str(module), "--select", "RPL001,RPL002"]) == 0
    assert "reprolint: clean" in capsys.readouterr().out
    assert main([str(module), "--select", "RPL004"]) == 1


def test_ignore_drops_rule_ids(tmp_path):
    module = _violating(tmp_path)
    assert main([str(module), "--ignore", "RPL004"]) == 0
    # Repeatable and comma-separable, and select composes with ignore.
    assert main([str(module), "--select", "RPL004", "--ignore", "RPL004"]) == 0


def test_unknown_rule_id_is_a_config_error(tmp_path, capsys):
    module = _violating(tmp_path)
    assert main([str(module), "--select", "RPL042"]) == 2
    assert "unknown rule id 'RPL042'" in capsys.readouterr().err
    assert main([str(module), "--ignore", "nonsense"]) == 2


def test_unparseable_file_exits_2(tmp_path, capsys):
    module = tmp_path / "broken.py"
    module.write_text("def broken(:\n", encoding="utf-8")
    assert main([str(module)]) == 2
    assert "RPL999" in capsys.readouterr().out
    # ...unless the parse rule itself is filtered out.
    assert main([str(module), "--ignore", "RPL999"]) == 0


def test_sarif_output_is_valid_and_complete(tmp_path, capsys):
    module = _violating(tmp_path)
    assert main([str(module), "--format", "sarif"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["version"] == "2.1.0"
    run = report["runs"][0]
    assert run["tool"]["driver"]["name"] == "reprolint"
    declared = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    assert {f"RPL00{n}" for n in range(1, 8)} <= declared
    result = run["results"][0]
    assert result["ruleId"] == "RPL004"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"].endswith("stamped.py")
    assert location["region"]["startLine"] == 5


def test_runtime_budget_breach_fails(tmp_path, capsys):
    module = tmp_path / "clean.py"
    module.write_text("VALUE = 1\n", encoding="utf-8")
    assert main([str(module), "--max-seconds", "0"]) == 1
    assert "over the 0.00s budget" in capsys.readouterr().err


def test_whole_tree_lints_inside_the_ci_budget(capsys):
    # The CI latency budget: the full call-graph pass over src/repro must
    # stay under ten seconds, or the lint gate starts taxing every push.
    assert main([str(SRC_REPRO), "--max-seconds", "10"]) == 0
    assert "reprolint: clean" in capsys.readouterr().out


def test_cli_lint_subcommand_forwards_flags(tmp_path, capsys):
    module = _violating(tmp_path)
    assert repro_main(["lint", str(module), "--format", "json"]) == 1
    decoded = json.loads(capsys.readouterr().out)
    assert decoded[0]["rule"] == "RPL004"
    assert repro_main(["lint", str(module), "--ignore", "RPL004"]) == 0
    # --scale before the subcommand is tolerated (and irrelevant to lint).
    assert repro_main(["--scale", "smoke", "lint", str(module)]) == 1
    capsys.readouterr()


def test_list_rules_documents_the_new_contracts(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("RPL000", "RPL005", "RPL006", "RPL007"):
        assert rule_id in out
