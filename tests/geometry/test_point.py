"""Unit tests for repro.geometry.point."""

import math

import pytest

from repro.geometry.point import Point, as_point, validate_coordinates


class TestPointConstruction:
    def test_coordinates_are_stored_as_floats(self):
        point = Point((1, 2, 3))
        assert tuple(point) == (1.0, 2.0, 3.0)
        assert all(isinstance(value, float) for value in point)

    def test_dimension(self):
        assert Point((1.0,)).dimension == 1
        assert Point(range(5)).dimension == 5

    def test_empty_point_rejected(self):
        with pytest.raises(ValueError):
            Point(())

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            Point((1.0, float("nan")))

    def test_points_are_hashable_and_comparable_like_tuples(self):
        a = Point((1.0, 2.0))
        b = Point((1.0, 2.0))
        c = Point((2.0, 1.0))
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert a < c  # tuple ordering

    def test_point_accepts_generator(self):
        point = Point(x * 2 for x in range(3))
        assert tuple(point) == (0.0, 2.0, 4.0)


class TestPointOperations:
    def test_translate(self):
        point = Point((1.0, 2.0)).translate((3.0, -1.0))
        assert tuple(point) == (4.0, 1.0)

    def test_translate_dimension_mismatch(self):
        with pytest.raises(ValueError):
            Point((1.0, 2.0)).translate((1.0,))

    def test_relative_to(self):
        point = Point((5.0, 7.0)).relative_to((2.0, 10.0))
        assert tuple(point) == (3.0, -3.0)

    def test_relative_to_self_is_origin(self):
        point = Point((4.0, 4.0))
        assert tuple(point.relative_to(point)) == (0.0, 0.0)

    def test_relative_to_dimension_mismatch(self):
        with pytest.raises(ValueError):
            Point((1.0, 2.0)).relative_to((1.0, 2.0, 3.0))


class TestAsPoint:
    def test_existing_point_returned_unchanged(self):
        point = Point((1.0, 2.0))
        assert as_point(point) is point

    def test_sequences_are_converted(self):
        assert as_point([1, 2]) == Point((1.0, 2.0))
        assert as_point((3.5, 4.5)) == Point((3.5, 4.5))


class TestValidateCoordinates:
    def test_accepts_in_range_identifier(self):
        point = validate_coordinates((10.0, 20.0), dimension=2, minimum=0.0, maximum=100.0)
        assert point == Point((10.0, 20.0))

    def test_rejects_wrong_dimension(self):
        with pytest.raises(ValueError, match="2-dimensional"):
            validate_coordinates((1.0, 2.0, 3.0), dimension=2)

    def test_rejects_out_of_range_coordinate(self):
        with pytest.raises(ValueError, match="outside"):
            validate_coordinates((1.0, 200.0), dimension=2, maximum=100.0)

    def test_boundary_values_are_accepted(self):
        point = validate_coordinates((0.0, 100.0), dimension=2, maximum=100.0)
        assert tuple(point) == (0.0, 100.0)

    def test_default_upper_bound_is_infinite(self):
        point = validate_coordinates((math.pi * 1e9, 2.0), dimension=2)
        assert point.dimension == 2
