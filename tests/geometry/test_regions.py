"""Unit tests for repro.geometry.regions."""

import pytest

from repro.geometry.regions import (
    all_sign_vectors,
    group_by_orthant,
    orthant_rectangle,
    orthant_signs,
)


class TestOrthantSigns:
    def test_basic_classification(self):
        assert orthant_signs((0.0, 0.0), (1.0, -1.0)) == (1, -1)
        assert orthant_signs((5.0, 5.0), (1.0, 9.0)) == (-1, 1)

    def test_tie_break_default_is_positive(self):
        assert orthant_signs((1.0, 1.0), (1.0, 2.0)) == (1, 1)

    def test_tie_break_can_be_negative(self):
        assert orthant_signs((1.0, 1.0), (1.0, 2.0), zero_sign=-1) == (-1, 1)

    def test_invalid_tie_break_rejected(self):
        with pytest.raises(ValueError):
            orthant_signs((0.0,), (1.0,), zero_sign=0)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            orthant_signs((0.0, 0.0), (1.0,))


class TestOrthantRectangle:
    def test_rectangle_matches_signs(self):
        rect = orthant_rectangle((2.0, 3.0), (1, -1))
        assert rect.contains((5.0, 1.0))
        assert not rect.contains((1.0, 1.0))  # wrong side on axis 0
        assert not rect.contains((5.0, 4.0))  # wrong side on axis 1

    def test_reference_point_is_excluded(self):
        reference = (2.0, 3.0)
        for signs in all_sign_vectors(2):
            assert not orthant_rectangle(reference, signs).contains(reference)

    def test_distinct_orthants_are_disjoint(self):
        reference = (0.0, 0.0)
        rects = [orthant_rectangle(reference, signs) for signs in all_sign_vectors(2)]
        for i, a in enumerate(rects):
            for b in rects[i + 1 :]:
                assert a.is_disjoint_from(b)

    def test_zero_sign_rejected(self):
        with pytest.raises(ValueError):
            orthant_rectangle((0.0, 0.0), (1, 0))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            orthant_rectangle((0.0, 0.0), (1,))


class TestAllSignVectors:
    def test_counts(self):
        assert len(all_sign_vectors(1)) == 2
        assert len(all_sign_vectors(3)) == 8
        assert len(set(all_sign_vectors(4))) == 16

    def test_entries_are_signs(self):
        for vector in all_sign_vectors(3):
            assert set(vector) <= {-1, 1}

    def test_dimension_must_be_positive(self):
        with pytest.raises(ValueError):
            all_sign_vectors(0)


class TestGroupByOrthant:
    def test_groups_cover_all_points(self):
        reference = (0.0, 0.0)
        points = [(1.0, 1.0), (-2.0, 3.0), (4.0, -4.0), (2.0, 2.0)]
        groups = group_by_orthant(reference, points)
        assert sorted(index for members in groups.values() for index in members) == [0, 1, 2, 3]
        assert groups[(1, 1)] == [0, 3]

    def test_every_point_lies_in_its_group_rectangle(self):
        reference = (10.0, 20.0, 30.0)
        points = [(11.0, 19.0, 35.0), (5.0, 25.0, 29.0), (12.0, 22.0, 31.0)]
        groups = group_by_orthant(reference, points)
        for signs, members in groups.items():
            rect = orthant_rectangle(reference, signs)
            for index in members:
                assert rect.contains(points[index])
