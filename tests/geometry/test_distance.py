"""Unit tests for repro.geometry.distance."""

import math

import pytest

from repro.geometry.distance import (
    chebyshev_distance,
    euclidean_distance,
    get_distance,
    manhattan_distance,
    minkowski_distance,
)

A = (1.0, 2.0, 3.0)
B = (4.0, 0.0, 3.0)


class TestDistanceValues:
    def test_manhattan(self):
        assert manhattan_distance(A, B) == pytest.approx(5.0)

    def test_euclidean(self):
        assert euclidean_distance(A, B) == pytest.approx(math.sqrt(13.0))

    def test_chebyshev(self):
        assert chebyshev_distance(A, B) == pytest.approx(3.0)

    def test_minkowski_generalises_the_others(self):
        assert minkowski_distance(A, B, p=1.0) == pytest.approx(manhattan_distance(A, B))
        assert minkowski_distance(A, B, p=2.0) == pytest.approx(euclidean_distance(A, B))
        assert minkowski_distance(A, B, p=float("inf")) == pytest.approx(
            chebyshev_distance(A, B)
        )

    def test_distance_to_self_is_zero(self):
        for fn in (manhattan_distance, euclidean_distance, chebyshev_distance):
            assert fn(A, A) == 0.0

    def test_symmetry(self):
        for fn in (manhattan_distance, euclidean_distance, chebyshev_distance):
            assert fn(A, B) == pytest.approx(fn(B, A))


class TestDistanceErrors:
    def test_dimension_mismatch_raises(self):
        for fn in (manhattan_distance, euclidean_distance, chebyshev_distance):
            with pytest.raises(ValueError):
                fn((1.0, 2.0), (1.0, 2.0, 3.0))

    def test_minkowski_rejects_order_below_one(self):
        with pytest.raises(ValueError):
            minkowski_distance(A, B, p=0.5)


class TestRegistry:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("l1", manhattan_distance),
            ("manhattan", manhattan_distance),
            ("L2", euclidean_distance),
            ("Euclidean", euclidean_distance),
            ("linf", chebyshev_distance),
            ("chebyshev", chebyshev_distance),
        ],
    )
    def test_lookup_by_name(self, name, expected):
        assert get_distance(name) is expected

    def test_unknown_name_raises_with_known_names(self):
        with pytest.raises(ValueError, match="unknown distance"):
            get_distance("hamming")
