"""Property-based equivalence: every spatial-index query vs its brute-force twin.

The index's load-bearing contract (see :mod:`repro.geometry.index`) is that
every query returns exactly what the scan it replaces would -- same
comparisons, same tie-breaks -- at every moment of an arbitrary
``insert`` / ``remove`` / ``move`` history.  These tests let hypothesis hunt
for counterexamples: random mutation scripts over coordinates drawn from a
deliberately small lattice (so duplicate coordinates, collinear
configurations, and points exactly on query boundaries all occur), with the
tree rebuilt, tombstoned and buffered states all reachable, then every query
cross-checked against the literal ``brute_force_*`` reference over a plain
dict mirror.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.geometry.hyperplane import Hyperplane, HyperplaneSet
from repro.geometry.index import (
    SpatialIndex,
    brute_force_halfspace,
    brute_force_nearest_k,
    brute_force_orthant_skyline,
    brute_force_range,
    brute_force_region_top_k,
)
from repro.geometry.rectangle import HyperRectangle, Interval

# A small lattice provokes the degenerate geometry the paper assumes away:
# duplicate points, shared per-axis values, points exactly on boundaries.
_COORDINATE = st.integers(min_value=0, max_value=10).map(lambda v: v / 2.0)

_ORDERS = st.sampled_from([1.0, 2.0, float("inf")])


@st.composite
def _histories(draw, max_dimension=3, max_operations=40):
    """A mutation script and the resulting live ``id -> coords`` mirror."""
    dimension = draw(st.integers(min_value=1, max_value=max_dimension))
    coords = st.tuples(*([_COORDINATE] * dimension))
    operations = []
    alive = []
    next_id = 0
    for _ in range(draw(st.integers(min_value=1, max_value=max_operations))):
        kind = draw(st.sampled_from(["insert", "insert", "insert", "remove", "move"]))
        if kind == "insert" or not alive:
            operations.append(("insert", next_id, draw(coords)))
            alive.append(next_id)
            next_id += 1
        elif kind == "remove":
            victim = draw(st.sampled_from(alive))
            operations.append(("remove", victim, None))
            alive.remove(victim)
        else:
            victim = draw(st.sampled_from(alive))
            operations.append(("move", victim, draw(coords)))
    return dimension, operations


def _replay(operations):
    """Apply a script to a fresh index and a plain dict mirror.

    A query is poked in periodically *during* the history: the k-d tree is
    built lazily on first query, so without this every final query would run
    against a freshly built tree and the tombstone/buffer dynamisation --
    the riskiest code in the index -- would never be on the hook.  With it,
    mutations after the poke land in the tombstone set and the insert
    buffer, and the final cross-checked queries must fold them in exactly.
    """
    index = SpatialIndex()
    mirror = {}
    for step, (kind, point_id, coords) in enumerate(operations):
        if kind == "insert":
            index.insert(point_id, coords)
            mirror[point_id] = coords
        elif kind == "remove":
            index.remove(point_id)
            del mirror[point_id]
        else:
            index.move(point_id, coords)
            mirror[point_id] = coords
        if step % 7 == 2 and mirror:
            some_id = next(iter(mirror))
            assert index.nearest_k(index.point(some_id), 1) == (
                brute_force_nearest_k(mirror, mirror[some_id], 1)
            )
    return index, mirror


@st.composite
def _rectangles(draw, dimension):
    intervals = []
    for _ in range(dimension):
        bounds = sorted((draw(_COORDINATE), draw(_COORDINATE)))
        style = draw(st.sampled_from(["closed", "open", "above", "below", "all"]))
        if style == "closed":
            intervals.append(Interval.closed(*bounds))
        elif style == "open":
            intervals.append(Interval.open(*bounds))
        elif style == "above":
            intervals.append(Interval.greater_than(bounds[0]))
        elif style == "below":
            intervals.append(Interval.less_than(bounds[1]))
        else:
            intervals.append(Interval.unbounded())
    return HyperRectangle(intervals)


@settings(max_examples=60, deadline=None)
@given(history=_histories(), data=st.data())
def test_range_matches_brute_force(history, data):
    dimension, operations = history
    index, mirror = _replay(operations)
    rectangle = data.draw(_rectangles(dimension))
    assert index.range(rectangle) == brute_force_range(mirror, rectangle)


@settings(max_examples=60, deadline=None)
@given(history=_histories(), data=st.data())
def test_nearest_k_matches_brute_force(history, data):
    dimension, operations = history
    index, mirror = _replay(operations)
    origin = tuple(data.draw(_COORDINATE) for _ in range(dimension))
    k = data.draw(st.integers(min_value=1, max_value=6))
    order = data.draw(_ORDERS)
    exclude = (
        set(data.draw(st.sets(st.sampled_from(sorted(mirror)), max_size=2)))
        if mirror
        else set()
    )
    assert index.nearest_k(origin, k, order=order, exclude=exclude) == (
        brute_force_nearest_k(mirror, origin, k, order=order, exclude=exclude)
    )


@settings(max_examples=60, deadline=None)
@given(history=_histories(), data=st.data())
def test_halfspace_matches_brute_force(history, data):
    dimension, operations = history
    index, mirror = _replay(operations)
    coefficients = data.draw(
        st.tuples(*([st.sampled_from([-1.0, 0.0, 1.0, 0.5])] * dimension)).filter(
            lambda c: any(v != 0.0 for v in c)
        )
    )
    plane = Hyperplane(coefficients)
    sign = data.draw(st.sampled_from([-1, 0, 1]))
    reference = (
        tuple(data.draw(_COORDINATE) for _ in range(dimension))
        if data.draw(st.booleans())
        else None
    )
    assert index.halfspace_candidates(plane, sign, reference=reference) == (
        brute_force_halfspace(mirror, plane, sign, reference=reference)
    )


@settings(max_examples=60, deadline=None)
@given(history=_histories(), data=st.data())
def test_orthant_skyline_matches_brute_force(history, data):
    dimension, operations = history
    index, mirror = _replay(operations)
    origin = tuple(data.draw(_COORDINATE) for _ in range(dimension))
    signs = tuple(
        data.draw(st.sampled_from([-1, 1])) for _ in range(dimension)
    )
    exclude = (
        set(data.draw(st.sets(st.sampled_from(sorted(mirror)), max_size=2)))
        if mirror
        else set()
    )
    assert index.orthant_skyline(origin, signs, exclude=exclude) == (
        brute_force_orthant_skyline(mirror, origin, signs, exclude=exclude)
    )


@settings(max_examples=60, deadline=None)
@given(history=_histories(max_dimension=2), data=st.data())
def test_region_top_k_matches_brute_force(history, data):
    dimension, operations = history
    index, mirror = _replay(operations)
    origin = tuple(data.draw(_COORDINATE) for _ in range(dimension))
    k = data.draw(st.integers(min_value=1, max_value=4))
    order = data.draw(_ORDERS)
    hyperplane_set = data.draw(
        st.sampled_from(
            [
                None,
                HyperplaneSet.empty(dimension),
                HyperplaneSet.orthogonal(dimension),
                HyperplaneSet.sign_coefficients(dimension),
            ]
        )
    )
    assert index.region_top_k(origin, hyperplane_set, k, order=order) == (
        brute_force_region_top_k(mirror, origin, hyperplane_set, k, order=order)
    )


@settings(max_examples=25, deadline=None)
@given(history=_histories(max_operations=60), data=st.data())
def test_queries_stay_exact_after_drain_and_regrowth(history, data):
    """Drain the index to empty, regrow it, and cross-check again.

    This walks the full dynamisation surface in one script: tombstones from
    the drain, a rebuilt (possibly empty) tree, then buffered re-inserts --
    and the degenerate empty-index state in the middle, where every query
    must return nothing rather than fail.
    """
    dimension, operations = history
    index, mirror = _replay(operations)
    whole = HyperRectangle.whole_space(dimension)
    for point_id in sorted(mirror):
        index.remove(point_id)
    assert len(index) == 0
    assert index.dimension == dimension  # retained across the drain
    assert index.range(whole) == []
    assert index.nearest_k((0.0,) * dimension, 3) == []
    assert index.orthant_skyline((0.0,) * dimension, (1,) * dimension) == []
    assert index.region_top_k((0.0,) * dimension, None, 2) == {}
    regrown = {}
    for offset in range(data.draw(st.integers(min_value=0, max_value=8))):
        coords = tuple(data.draw(_COORDINATE) for _ in range(dimension))
        index.insert(1000 + offset, coords)
        regrown[1000 + offset] = coords
    assert index.range(whole) == brute_force_range(regrown, whole)
    origin = tuple(data.draw(_COORDINATE) for _ in range(dimension))
    assert index.nearest_k(origin, 4) == brute_force_nearest_k(regrown, origin, 4)


def test_duplicate_coordinates_are_first_class():
    """Several ids at the identical point: all indexed, ties resolved by id."""
    index = SpatialIndex()
    for point_id in (5, 1, 9, 3):
        index.insert(point_id, (2.0, 2.0))
    index.insert(7, (4.0, 2.0))
    mirror = {5: (2.0, 2.0), 1: (2.0, 2.0), 9: (2.0, 2.0), 3: (2.0, 2.0), 7: (4.0, 2.0)}
    assert index.range(HyperRectangle.bounding_box((2.0, 2.0), (2.0, 2.0))) == [1, 3, 5, 9]
    # (distance, id) ranking: duplicates of the origin come first, id order.
    assert index.nearest_k((2.0, 2.0), 3) == [1, 3, 5]
    assert index.nearest_k((2.0, 2.0), 3, exclude={1, 3}) == [5, 9, 7]
    # Mutual non-strict dominance between identical points: the scan keeps
    # the first in (L1 magnitude, id) order, and so must the index.
    got = index.orthant_skyline((1.0, 1.0), (1, 1))
    assert got == brute_force_orthant_skyline(mirror, (1.0, 1.0), (1, 1))
    assert got == [1]


def test_collinear_points_skyline_and_regions():
    """All points on one axis-parallel line -- zero-extent boxes everywhere."""
    index = SpatialIndex()
    mirror = {}
    for point_id in range(24):
        coords = (float(point_id), 3.0)
        index.insert(point_id, coords)
        mirror[point_id] = coords
    origin = (10.5, 3.0)
    for signs in ((1, 1), (-1, -1), (1, -1), (-1, 1)):
        assert index.orthant_skyline(origin, signs) == (
            brute_force_orthant_skyline(mirror, origin, signs)
        )
    hyperplane_set = HyperplaneSet.orthogonal(2)
    assert index.region_top_k(origin, hyperplane_set, 2) == (
        brute_force_region_top_k(mirror, origin, hyperplane_set, 2)
    )
    plane = Hyperplane((0.0, 1.0))
    # Every point is exactly on this plane through (anything, 3.0).
    assert index.halfspace_candidates(plane, 0, reference=(0.0, 3.0)) == list(range(24))
    assert index.halfspace_candidates(plane, 1, reference=(0.0, 3.0)) == []


def test_maintenance_error_paths():
    index = SpatialIndex()
    index.insert(1, (0.0, 0.0))
    with pytest.raises(ValueError, match="already indexed"):
        index.insert(1, (1.0, 1.0))
    with pytest.raises(ValueError, match="dimension"):
        index.insert(2, (1.0, 1.0, 1.0))
    with pytest.raises(KeyError):
        index.remove(99)
    with pytest.raises(KeyError):
        index.move(99, (1.0, 1.0))
    with pytest.raises(ValueError, match="dimension"):
        index.move(1, (1.0, 1.0, 1.0))
    assert 1 in index and index.point(1) == (0.0, 0.0)  # rejected move is a no-op
    with pytest.raises(ValueError, match="dimension"):
        index.range(HyperRectangle.whole_space(3))
    with pytest.raises(ValueError, match="orthant signs"):
        index.orthant_skyline((0.0, 0.0), (1, 0))
    with pytest.raises(ValueError, match="k must be"):
        index.region_top_k((0.0, 0.0), None, 0)
    with pytest.raises(ValueError, match="Minkowski"):
        index.nearest_k((0.0, 0.0), 1, order=3.0)
    assert index.point(1) == (0.0, 0.0)
    assert 1 in index and 99 not in index


def test_stale_tree_answers_through_tombstones_and_buffer():
    """Below the rebuild threshold, queries must fold stale state in exactly.

    After the tree is built, a small wave of removes/inserts/moves stays
    under the rebuild threshold -- so every query here is answered by a
    *stale* tree plus the tombstone set and insert buffer, the merge paths
    a lazy rebuild would silently paper over.  ``rebuilds`` staying at 1
    proves no rebuild bailed them out.
    """
    index = SpatialIndex()
    mirror = {}
    for point_id in range(60):
        coords = (float(point_id % 11), float(point_id % 7), float(point_id) / 3)
        index.insert(point_id, coords)
        mirror[point_id] = coords
    index.nearest_k((0.0, 0.0, 0.0), 1)  # builds the tree
    assert index.rebuilds == 1
    for point_id in range(0, 20, 2):  # 10 tombstones
        index.remove(point_id)
        del mirror[point_id]
    for offset in range(10):  # 10 buffered inserts
        coords = (float(offset) / 2, 3.5, float(offset))
        index.insert(100 + offset, coords)
        mirror[100 + offset] = coords
    for point_id in (1, 3, 5):  # moves: tombstone + buffer for one id
        coords = (9.25, float(point_id), 0.75)
        index.move(point_id, coords)
        mirror[point_id] = coords
    origin = (4.0, 3.0, 2.0)
    assert index.nearest_k(origin, 7) == brute_force_nearest_k(mirror, origin, 7)
    for signs in ((1, 1, 1), (-1, 1, -1)):
        assert index.orthant_skyline(origin, signs) == (
            brute_force_orthant_skyline(mirror, origin, signs)
        )
    hyperplane_set = HyperplaneSet.orthogonal(3)
    assert index.region_top_k(origin, hyperplane_set, 2) == (
        brute_force_region_top_k(mirror, origin, hyperplane_set, 2)
    )
    plane = Hyperplane((1.0, -1.0, 0.5))
    assert index.halfspace_candidates(plane, 1, reference=origin) == (
        brute_force_halfspace(mirror, plane, 1, reference=origin)
    )
    assert index.range(HyperRectangle.whole_space(3)) == sorted(mirror)
    assert index.rebuilds == 1  # everything above ran against the stale tree


def test_rebuild_amortisation_is_observable():
    """Churn past the stale threshold forces a rebuild; queries stay exact."""
    index = SpatialIndex()
    mirror = {}
    for point_id in range(200):
        coords = (float(point_id % 17), float(point_id % 13))
        index.insert(point_id, coords)
        mirror[point_id] = coords
    index.nearest_k((0.0, 0.0), 1)  # builds the tree
    built = index.rebuilds
    for point_id in range(100):
        index.remove(point_id)
        del mirror[point_id]
    origin = (8.0, 6.0)
    assert index.nearest_k(origin, 5) == brute_force_nearest_k(mirror, origin, 5)
    assert index.rebuilds > built  # the deletion wave crossed the threshold
    assert not math.isnan(index.point(150)[0])
