"""Property-based tests (hypothesis) for the geometric substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.distance import (
    chebyshev_distance,
    euclidean_distance,
    manhattan_distance,
)
from repro.geometry.rectangle import HyperRectangle, Interval
from repro.geometry.regions import all_sign_vectors, orthant_rectangle, orthant_signs

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)


def points(dimension: int):
    return st.tuples(*([finite] * dimension))


# ---------------------------------------------------------------------------
# Distance functions
# ---------------------------------------------------------------------------
@given(points(3), points(3))
def test_distance_symmetry_and_nonnegativity(a, b):
    for fn in (manhattan_distance, euclidean_distance, chebyshev_distance):
        assert fn(a, b) >= 0.0
        assert abs(fn(a, b) - fn(b, a)) <= 1e-9 * max(1.0, abs(fn(a, b)))


@given(points(3), points(3), points(3))
def test_triangle_inequality(a, b, c):
    for fn in (manhattan_distance, euclidean_distance, chebyshev_distance):
        assert fn(a, c) <= fn(a, b) + fn(b, c) + 1e-6


@given(points(4), points(4))
def test_norm_ordering(a, b):
    """L-infinity <= L2 <= L1 for any pair of points."""
    linf = chebyshev_distance(a, b)
    l2 = euclidean_distance(a, b)
    l1 = manhattan_distance(a, b)
    assert linf <= l2 + 1e-9
    assert l2 <= l1 + 1e-9


# ---------------------------------------------------------------------------
# Intervals and rectangles
# ---------------------------------------------------------------------------
@given(finite, finite, finite, finite, finite)
def test_interval_intersection_membership(lo1, hi1, lo2, hi2, probe):
    a = Interval.closed(min(lo1, hi1), max(lo1, hi1))
    b = Interval.closed(min(lo2, hi2), max(lo2, hi2))
    intersection = a.intersect(b)
    assert intersection.contains(probe) == (a.contains(probe) and b.contains(probe))


@given(points(2), points(2), points(2))
def test_bounding_box_contains_both_corners_and_box_membership_is_componentwise(a, b, probe):
    box = HyperRectangle.bounding_box(a, b)
    assert box.contains(a)
    assert box.contains(b)
    expected = all(
        min(x, y) <= z <= max(x, y) for x, y, z in zip(a, b, probe)
    )
    assert box.contains(probe) == expected


@given(points(3), points(3))
def test_rectangle_intersection_membership(a, b):
    box_a = HyperRectangle.bounding_box((0.0, 0.0, 0.0), a)
    box_b = HyperRectangle.bounding_box((1.0, 1.0, 1.0), b)
    intersection = box_a.intersect(box_b)
    probe = tuple((x + y) / 2.0 for x, y in zip(a, b))
    assert intersection.contains(probe) == (
        box_a.contains(probe) and box_b.contains(probe)
    )


# ---------------------------------------------------------------------------
# Orthant regions
# ---------------------------------------------------------------------------
@given(points(3), points(3))
def test_orthant_rectangle_contains_the_point_that_defined_it(reference, point)  :
    signs = orthant_signs(reference, point)
    rect = orthant_rectangle(reference, signs)
    if all(p != r for p, r in zip(point, reference)):
        assert rect.contains(point)
    assert not rect.contains(reference)


@given(points(2))
@settings(max_examples=50)
def test_orthant_rectangles_partition_space_around_reference(reference):
    rects = [orthant_rectangle(reference, signs) for signs in all_sign_vectors(2)]
    for i, a in enumerate(rects):
        for b in rects[i + 1 :]:
            assert a.is_disjoint_from(b)
