"""Unit tests for repro.geometry.rectangle."""

import math

import pytest

from repro.geometry.rectangle import HyperRectangle, Interval


class TestIntervalConstruction:
    def test_closed_contains_endpoints(self):
        interval = Interval.closed(1.0, 2.0)
        assert interval.contains(1.0)
        assert interval.contains(2.0)
        assert interval.contains(1.5)

    def test_open_excludes_endpoints(self):
        interval = Interval.open(1.0, 2.0)
        assert not interval.contains(1.0)
        assert not interval.contains(2.0)
        assert interval.contains(1.5)

    def test_unbounded_contains_everything_finite(self):
        interval = Interval.unbounded()
        assert interval.contains(-1e18)
        assert interval.contains(0.0)
        assert interval.contains(1e18)
        assert not interval.contains(math.inf)

    def test_less_than_and_greater_than(self):
        below = Interval.less_than(5.0)
        above = Interval.greater_than(5.0)
        assert below.contains(4.999) and not below.contains(5.0)
        assert above.contains(5.001) and not above.contains(5.0)

    def test_nan_endpoint_rejected(self):
        with pytest.raises(ValueError):
            Interval(float("nan"), 1.0)


class TestIntervalPredicates:
    def test_emptiness(self):
        assert Interval(2.0, 1.0).is_empty()
        assert Interval.open(1.0, 1.0).is_empty()
        assert not Interval.closed(1.0, 1.0).is_empty()
        assert not Interval.closed(1.0, 2.0).is_empty()

    def test_degenerate_closed_interval_contains_its_point(self):
        interval = Interval.closed(3.0, 3.0)
        assert interval.contains(3.0)
        assert interval.length() == 0.0

    def test_length(self):
        assert Interval.closed(1.0, 4.0).length() == 3.0
        assert Interval(2.0, 1.0).length() == 0.0
        assert Interval.unbounded().length() == math.inf

    def test_is_bounded(self):
        assert Interval.closed(0.0, 1.0).is_bounded()
        assert not Interval.less_than(1.0).is_bounded()


class TestIntervalIntersection:
    def test_overlapping_intervals(self):
        result = Interval.closed(0.0, 5.0).intersect(Interval.closed(3.0, 8.0))
        assert (result.lower, result.upper) == (3.0, 5.0)
        assert not result.is_empty()

    def test_disjoint_intervals_give_empty_result(self):
        result = Interval.closed(0.0, 1.0).intersect(Interval.closed(2.0, 3.0))
        assert result.is_empty()

    def test_openness_is_preserved_at_shared_endpoint(self):
        closed = Interval.closed(0.0, 5.0)
        open_at_five = Interval.open(5.0, 10.0)
        assert closed.intersect(open_at_five).is_empty()

    def test_open_flag_wins_on_equal_endpoints(self):
        a = Interval(0.0, 5.0, upper_open=True)
        b = Interval(0.0, 5.0, upper_open=False)
        result = a.intersect(b)
        assert result.upper_open is True

    def test_overlaps(self):
        assert Interval.closed(0.0, 2.0).overlaps(Interval.closed(1.0, 3.0))
        assert not Interval.open(0.0, 1.0).overlaps(Interval.open(1.0, 2.0))


class TestHyperRectangle:
    def test_whole_space_contains_any_point(self):
        space = HyperRectangle.whole_space(3)
        assert space.contains((0.0, 0.0, 0.0))
        assert space.contains((1e12, -1e12, 42.0))
        assert not space.is_bounded()

    def test_bounding_box_orders_corners(self):
        box = HyperRectangle.bounding_box((5.0, 1.0), (2.0, 4.0))
        assert box.contains((3.0, 2.0))
        assert box.contains((5.0, 1.0))
        assert box.contains((2.0, 4.0))
        assert not box.contains((6.0, 2.0))

    def test_from_bounds(self):
        rect = HyperRectangle.from_bounds((0.0, 0.0), (1.0, 2.0))
        assert rect.contains((0.5, 1.0))
        assert rect.volume() == pytest.approx(2.0)

    def test_from_bounds_length_mismatch(self):
        with pytest.raises(ValueError):
            HyperRectangle.from_bounds((0.0,), (1.0, 2.0))

    def test_dimension_checks(self):
        rect = HyperRectangle.whole_space(2)
        with pytest.raises(ValueError):
            rect.contains((1.0, 2.0, 3.0))
        with pytest.raises(ValueError):
            rect.intersect(HyperRectangle.whole_space(3))

    def test_intersection_and_disjointness(self):
        left = HyperRectangle.from_bounds((0.0, 0.0), (2.0, 2.0))
        right = HyperRectangle.from_bounds((1.0, 1.0), (3.0, 3.0))
        far = HyperRectangle.from_bounds((5.0, 5.0), (6.0, 6.0))
        assert left.overlaps(right)
        assert left.intersect(right).contains((1.5, 1.5))
        assert left.is_disjoint_from(far)
        assert left.intersect(far).is_empty()

    def test_empty_rectangle_contains_nothing(self):
        empty = HyperRectangle([Interval(2.0, 1.0), Interval.closed(0.0, 1.0)])
        assert empty.is_empty()
        assert not empty.contains((1.5, 0.5))
        assert empty.volume() == 0.0

    def test_equality_and_hash(self):
        a = HyperRectangle.from_bounds((0.0,), (1.0,))
        b = HyperRectangle.from_bounds((0.0,), (1.0,))
        assert a == b
        assert hash(a) == hash(b)

    def test_requires_at_least_one_dimension(self):
        with pytest.raises(ValueError):
            HyperRectangle(())
        with pytest.raises(ValueError):
            HyperRectangle.whole_space(0)

    def test_strictly_contains_any(self):
        rect = HyperRectangle.from_bounds((0.0, 0.0), (1.0, 1.0))
        assert rect.strictly_contains_any([(2.0, 2.0), (0.5, 0.5)])
        assert not rect.strictly_contains_any([(2.0, 2.0), (3.0, 3.0)])
