"""Unit tests for repro.geometry.hyperplane."""

import pytest

from repro.geometry.hyperplane import Hyperplane, HyperplaneSet


class TestHyperplane:
    def test_evaluate_and_side(self):
        plane = Hyperplane((1.0, -1.0))
        assert plane.evaluate((3.0, 1.0)) == pytest.approx(2.0)
        assert plane.side((3.0, 1.0)) == 1
        assert plane.side((1.0, 3.0)) == -1
        assert plane.side((2.0, 2.0)) == 0

    def test_zero_vector_rejected(self):
        with pytest.raises(ValueError):
            Hyperplane((0.0, 0.0))

    def test_empty_coefficients_rejected(self):
        with pytest.raises(ValueError):
            Hyperplane(())

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            Hyperplane((1.0, 2.0)).evaluate((1.0, 2.0, 3.0))

    def test_equality_and_hash(self):
        assert Hyperplane((1.0, 0.0)) == Hyperplane((1, 0))
        assert hash(Hyperplane((1.0, 0.0))) == hash(Hyperplane((1, 0)))


class TestOrthogonalSet:
    def test_has_one_plane_per_axis(self):
        planes = HyperplaneSet.orthogonal(3)
        assert len(planes) == 3
        assert planes.dimension == 3
        coefficients = {plane.coefficients for plane in planes.hyperplanes}
        assert coefficients == {(1.0, 0.0, 0.0), (0.0, 1.0, 0.0), (0.0, 0.0, 1.0)}

    def test_signature_is_the_orthant_sign_vector(self):
        planes = HyperplaneSet.orthogonal(2)
        assert planes.signature((3.0, -4.0)) == (1, -1)
        assert planes.signature((-1.0, 5.0)) == (-1, 1)

    def test_signature_relative_to_reference(self):
        planes = HyperplaneSet.orthogonal(2)
        assert planes.signature((5.0, 5.0), reference=(10.0, 0.0)) == (-1, 1)

    def test_orthogonal_yields_two_power_d_regions_for_generic_points(self):
        planes = HyperplaneSet.orthogonal(2)
        points = [(1.0, 1.0), (-1.0, 1.0), (1.0, -1.0), (-1.0, -1.0)]
        signatures = {planes.signature(p) for p in points}
        assert len(signatures) == 4


class TestSignCoefficientSet:
    def test_number_of_planes_is_half_of_nonzero_sign_vectors(self):
        for dimension in (1, 2, 3):
            planes = HyperplaneSet.sign_coefficients(dimension)
            assert len(planes) == (3**dimension - 1) // 2

    def test_no_two_planes_are_negations(self):
        planes = HyperplaneSet.sign_coefficients(3)
        seen = set()
        for plane in planes.hyperplanes:
            negated = tuple(-c for c in plane.coefficients)
            assert negated not in seen
            seen.add(plane.coefficients)

    def test_refines_orthogonal_regions(self):
        orthogonal = HyperplaneSet.orthogonal(2)
        sign = HyperplaneSet.sign_coefficients(2)
        # Two points in the same orthant but separated by the diagonal plane.
        a, b = (3.0, 1.0), (1.0, 3.0)
        assert orthogonal.signature(a) == orthogonal.signature(b)
        assert sign.signature(a) != sign.signature(b)


class TestEmptySet:
    def test_single_region(self):
        planes = HyperplaneSet.empty(4)
        assert len(planes) == 0
        assert planes.signature((1.0, -2.0, 3.0, -4.0)) == ()

    def test_group_by_region_collapses_everything(self):
        planes = HyperplaneSet.empty(2)
        groups = planes.group_by_region([(1.0, 2.0), (-3.0, 4.0), (5.0, -6.0)])
        assert list(groups.keys()) == [()]
        assert groups[()] == [0, 1, 2]


class TestHyperplaneSetValidation:
    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            HyperplaneSet([Hyperplane((1.0, 0.0))], dimension=3)

    def test_group_by_region(self):
        planes = HyperplaneSet.orthogonal(2)
        points = [(1.0, 1.0), (2.0, 3.0), (-1.0, 1.0)]
        groups = planes.group_by_region(points)
        assert groups[(1, 1)] == [0, 1]
        assert groups[(-1, 1)] == [2]

    def test_signature_dimension_check(self):
        planes = HyperplaneSet.orthogonal(2)
        with pytest.raises(ValueError):
            planes.signature((1.0, 2.0, 3.0))
