"""Machine-checked contract markers shared by the runtime and reprolint.

The markers here are deliberately runtime-inert: they tag functions with
metadata that :mod:`repro.analysis` (reprolint) reads *statically*, so the
guarded packages never pay an import-order or call-time cost for being
checked.
"""

from __future__ import annotations

from typing import Callable, TypeVar

__all__ = ["hot_path"]

_F = TypeVar("_F", bound=Callable)


def hot_path(function: _F) -> _F:
    """Mark an O(churn) incremental entry point.

    A ``@hot_path`` function is one the "Road to N>=100k" ROADMAP item
    promises stays proportional to the *change set*, never the population:
    the delta-recorder notifications, the mirror/tree/connectivity repair
    paths that consume drained deltas, the engine's membership notes
    (``note_join``/``note_leave``/``note_move``) and its round-scheduling
    core (``_plan_round``; the public ``run_round`` wrapper is documented
    O(N)-capable and deliberately unmarked), and the columnar candidate
    state's epoch/log writes.  reprolint's RPL005 rule walks the
    call graph from every marked function and flags full-population
    iteration or O(N) id-set materialisation anywhere in the closure; a
    flagged construct needs either a restructure or a justified pragma with
    a scaling argument.

    The decorator itself only sets an attribute -- behaviour is unchanged,
    and the marker survives ``functools.wraps`` copying.
    """
    function.__hot_path__ = True  # type: ignore[attr-defined]
    return function
