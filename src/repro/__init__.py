"""Decentralized multicast trees embedded into geometric P2P overlays.

A reproduction of *"Brief Announcement: Decentralized Construction of
Multicast Trees Embedded into P2P Overlay Networks based on Virtual Geometric
Coordinates"* (Andreica, Drăguş, Sâmbotin, Ţăpuş; PODC 2010).

The public API is organised in layers:

* :mod:`repro.geometry` -- points, hyper-rectangles, hyperplanes, distances.
* :mod:`repro.overlay` -- peers, gossip, neighbour selection methods and the
  overlay network itself.
* :mod:`repro.multicast` -- the paper's two constructions (space-partitioning
  trees and stability trees), baselines, dissemination and churn analysis.
* :mod:`repro.simulation` -- a deterministic discrete-event replay of the
  distributed protocol, message by message.
* :mod:`repro.workloads` -- coordinate, lifetime and churn generators.
* :mod:`repro.metrics` -- the figures' metrics and reporting helpers.
* :mod:`repro.experiments` -- drivers reproducing Figure 1 (a)-(e) and the
  ablations.

Quickstart::

    from repro import (
        EmptyRectangleSelection, OverlayNetwork, SpacePartitionTreeBuilder,
        generate_peers,
    )

    peers = generate_peers(count=200, dimension=2, seed=7)
    overlay = OverlayNetwork.build_equilibrium(peers, EmptyRectangleSelection())
    result = SpacePartitionTreeBuilder().build(overlay.snapshot(), root=0)
    assert result.messages_sent == len(peers) - 1
"""

from repro.geometry import HyperRectangle, Interval, Point, SpatialIndex
from repro.overlay import (
    ConvergenceError,
    EmptyRectangleSelection,
    HyperplanesSelection,
    KClosestSelection,
    NetworkAddress,
    NeighbourSelectionMethod,
    OrthogonalHyperplanesSelection,
    OverlayNetwork,
    PeerInfo,
    SignCoefficientHyperplanesSelection,
    TopologySnapshot,
    make_peer,
    make_selection_method,
)
from repro.multicast import (
    ConstructionResult,
    MulticastTree,
    PickStrategy,
    PreferredNeighbourForest,
    SpacePartitionTreeBuilder,
    StabilityTreeBuilder,
    TreeValidationError,
    build_space_partition_tree,
    build_stability_tree,
    disseminate,
    simulate_departures,
)
from repro.simulation import (
    GossipConfig,
    SimulationEngine,
    run_gossip_overlay,
    run_multicast_over_gossip_overlay,
)
from repro.workloads import (
    generate_peers,
    generate_peers_with_lifetimes,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # geometry
    "Point",
    "Interval",
    "HyperRectangle",
    "SpatialIndex",
    # overlay
    "PeerInfo",
    "NetworkAddress",
    "make_peer",
    "OverlayNetwork",
    "ConvergenceError",
    "TopologySnapshot",
    "NeighbourSelectionMethod",
    "HyperplanesSelection",
    "OrthogonalHyperplanesSelection",
    "SignCoefficientHyperplanesSelection",
    "KClosestSelection",
    "EmptyRectangleSelection",
    "make_selection_method",
    # multicast
    "MulticastTree",
    "TreeValidationError",
    "PickStrategy",
    "ConstructionResult",
    "SpacePartitionTreeBuilder",
    "build_space_partition_tree",
    "StabilityTreeBuilder",
    "PreferredNeighbourForest",
    "build_stability_tree",
    "disseminate",
    "simulate_departures",
    # simulation
    "SimulationEngine",
    "GossipConfig",
    "run_gossip_overlay",
    "run_multicast_over_gossip_overlay",
    # workloads
    "generate_peers",
    "generate_peers_with_lifetimes",
]
