"""Baseline dissemination strategies the paper's constructions are compared to.

The introduction motivates the work by noting that many existing multicast
solutions either send many messages to construct the tree, are sensitive to
node departures, or are not fully decentralized.  These baselines make that
comparison concrete:

* :func:`flood_multicast` -- construction by flooding the overlay: every peer
  forwards the request to all of its neighbours.  Reaches everyone but sends
  one message per overlay edge direction, i.e. far more than ``N - 1``.
* :func:`bfs_tree` -- the shortest-path (BFS) tree of the overlay, a natural
  "good depth" reference for the path-length figures.  Building it
  decentralizedly would require the same flooding message cost.
* :func:`random_spanning_tree` -- a random spanning tree of the overlay,
  the "no geometric information" reference.
* :func:`random_parent_tree` -- the lifetime-oblivious counterpart of the
  Section 3 construction: every peer picks a random overlay neighbour as its
  preferred neighbour, ignoring lifetimes.  Used by the churn ablation to
  count how often departures disconnect the tree.
* :func:`sequential_unicast_tree` -- the initiator contacts every peer
  directly: ``N - 1`` messages but a root degree of ``N - 1``.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.multicast.tree import MulticastTree
from repro.overlay.topology import TopologySnapshot

__all__ = [
    "FloodingResult",
    "flood_multicast",
    "bfs_tree",
    "random_spanning_tree",
    "random_parent_tree",
    "sequential_unicast_tree",
]


@dataclass(frozen=True)
class FloodingResult:
    """Outcome of constructing a dissemination structure by flooding.

    Attributes
    ----------
    tree:
        The "first delivery" tree (each peer's parent is the neighbour whose
        copy arrived first, in BFS order).
    messages_sent:
        Total messages sent: every reached peer forwards to every neighbour
        except the one it heard from.
    duplicate_deliveries:
        Deliveries to peers that already had the message.
    reached:
        Set of peers reached by the flood.
    """

    tree: MulticastTree
    messages_sent: int
    duplicate_deliveries: int
    reached: Set[int]


def flood_multicast(topology: TopologySnapshot, root: int) -> FloodingResult:
    """Flood a construction request from ``root`` over every overlay link."""
    if root not in topology.peers:
        raise KeyError(f"root {root} is not a peer of the topology")
    parents: Dict[int, Optional[int]] = {root: None}
    messages = 0
    duplicates = 0
    queue = deque([root])
    while queue:
        current = queue.popleft()
        came_from = parents[current]
        for neighbour in sorted(topology.adjacency[current]):
            if neighbour == came_from:
                continue
            messages += 1
            if neighbour in parents:
                duplicates += 1
                continue
            parents[neighbour] = current
            queue.append(neighbour)
    tree = MulticastTree(root, parents)
    return FloodingResult(
        tree=tree,
        messages_sent=messages,
        duplicate_deliveries=duplicates,
        reached=set(parents),
    )


def bfs_tree(topology: TopologySnapshot, root: int) -> MulticastTree:
    """Breadth-first (shortest-path, in hops) spanning tree of the overlay."""
    if root not in topology.peers:
        raise KeyError(f"root {root} is not a peer of the topology")
    parents: Dict[int, Optional[int]] = {root: None}
    queue = deque([root])
    while queue:
        current = queue.popleft()
        for neighbour in sorted(topology.adjacency[current]):
            if neighbour not in parents:
                parents[neighbour] = current
                queue.append(neighbour)
    return MulticastTree(root, parents)


def random_spanning_tree(
    topology: TopologySnapshot,
    root: int,
    *,
    rng: Optional[random.Random] = None,
) -> MulticastTree:
    """Uniformly shuffled frontier expansion: a random spanning tree of the overlay."""
    if root not in topology.peers:
        raise KeyError(f"root {root} is not a peer of the topology")
    generator = rng if rng is not None else random.Random(0)
    parents: Dict[int, Optional[int]] = {root: None}
    frontier: List[int] = [root]
    while frontier:
        index = generator.randrange(len(frontier))
        frontier[index], frontier[-1] = frontier[-1], frontier[index]
        current = frontier.pop()
        neighbours = sorted(topology.adjacency[current])
        generator.shuffle(neighbours)
        for neighbour in neighbours:
            if neighbour not in parents:
                parents[neighbour] = current
                frontier.append(neighbour)
    return MulticastTree(root, parents)


def random_parent_tree(
    topology: TopologySnapshot,
    *,
    rng: Optional[random.Random] = None,
) -> Dict[int, Optional[int]]:
    """Lifetime-oblivious preferred-neighbour links: a random neighbour each.

    Unlike the Section 3 rule this can create cycles and is generally *not* a
    tree; the churn ablation uses it to count disconnections, the structural
    contrast being the point.  Returns the raw link map rather than a
    :class:`MulticastTree` for exactly that reason.
    """
    generator = rng if rng is not None else random.Random(0)
    links: Dict[int, Optional[int]] = {}
    for peer_id in sorted(topology.peers):
        neighbours = sorted(topology.adjacency[peer_id])
        links[peer_id] = generator.choice(neighbours) if neighbours else None
    return links


def sequential_unicast_tree(topology: TopologySnapshot, root: int) -> MulticastTree:
    """The initiator contacts every other peer directly (a star rooted at it)."""
    if root not in topology.peers:
        raise KeyError(f"root {root} is not a peer of the topology")
    parents: Dict[int, Optional[int]] = {
        peer_id: (None if peer_id == root else root) for peer_id in topology.peers
    }
    return MulticastTree(root, parents)
