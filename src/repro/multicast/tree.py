"""Multicast tree model, validation, repair and metrics.

Both constructions of the paper produce a rooted tree over the peers; this
module is their common representation.  The metrics exposed here are exactly
the quantities Figure 1 reports:

* the longest root-to-leaf path (panel (b)),
* the tree diameter (panel (d)),
* the maximum tree degree of a peer (panel (e), and the ``2^D`` bound stated
  for the space-partitioning construction).

Trees are validated on construction and then support a small *repair API*
(:meth:`MulticastTree.add_leaf`, :meth:`MulticastTree.remove_leaf`,
:meth:`MulticastTree.reparent`) whose operations each preserve the tree
invariants and keep the derived children and depth maps exact -- this is what
the event-driven maintenance engine of :mod:`repro.multicast.incremental`
builds on instead of reconstructing a tree per membership event.
:meth:`MulticastTree.revalidate` re-runs the construction-time checks on
demand, so long repair sequences can be audited cheaply in tests.
"""

from __future__ import annotations

from bisect import insort
from collections import deque
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

import networkx as nx

__all__ = ["MulticastTree", "TreeValidationError"]


class TreeValidationError(ValueError):
    """Raised when a parent map does not describe a tree rooted at the root."""


class MulticastTree:
    """A rooted tree over peer ids.

    The tree is stored as a parent map (``parent[root] is None``) plus the
    derived children map.  Instances are fully validated on construction;
    afterwards the only mutation allowed is through the repair API
    (:meth:`add_leaf`, :meth:`remove_leaf`, :meth:`reparent`), whose
    operations each preserve the tree invariants.
    """

    __slots__ = ("_root", "_parents", "_children", "_depths")

    def __init__(self, root: int, parents: Mapping[int, Optional[int]]) -> None:
        if root not in parents:
            raise TreeValidationError(f"root {root} is missing from the parent map")
        if parents[root] is not None:
            raise TreeValidationError(f"root {root} must have no parent")
        self._root = root
        self._parents: Dict[int, Optional[int]] = dict(parents)
        self._children: Dict[int, List[int]] = {node: [] for node in parents}
        for node, parent in self._parents.items():
            if node == root:
                continue
            if parent is None:
                raise TreeValidationError(f"non-root node {node} has no parent")
            if parent not in self._parents:
                raise TreeValidationError(
                    f"node {node} has parent {parent} which is not part of the tree"
                )
            self._children[parent].append(node)
        for children in self._children.values():
            children.sort()
        self._depths = self._compute_depths()
        if len(self._depths) != len(self._parents):
            unreachable = sorted(set(self._parents) - set(self._depths))
            raise TreeValidationError(
                f"nodes {unreachable[:10]} are not reachable from the root "
                f"({len(unreachable)} unreachable in total); the parent map contains a cycle "
                "or a disconnected component"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, root: int, edges: Iterable[Tuple[int, int]]) -> "MulticastTree":
        """Tree from ``(parent, child)`` edges.

        Every node other than the root must appear exactly once as a child.
        """
        parents: Dict[int, Optional[int]] = {root: None}
        for parent, child in edges:
            if child in parents and parents[child] is not None:
                raise TreeValidationError(f"node {child} has two parents")
            if child == root:
                raise TreeValidationError("the root cannot be a child")
            parents[child] = parent
        missing = {
            parent
            for parent in parents.values()
            if parent is not None and parent not in parents
        }
        if missing:
            raise TreeValidationError(
                f"parents {sorted(missing)} never appear as nodes of the tree"
            )
        return cls(root, parents)

    @classmethod
    def single_node(cls, root: int) -> "MulticastTree":
        """The trivial tree containing only the root."""
        return cls(root, {root: None})

    # ------------------------------------------------------------------
    # Structure accessors
    # ------------------------------------------------------------------
    @property
    def root(self) -> int:
        """The peer that initiated the construction."""
        return self._root

    @property
    def size(self) -> int:
        """Number of peers in the tree."""
        return len(self._parents)

    def nodes(self) -> List[int]:
        """All peer ids in the tree, sorted."""
        return sorted(self._parents)

    def __contains__(self, node: int) -> bool:
        return node in self._parents

    def __len__(self) -> int:
        return len(self._parents)

    def parent(self, node: int) -> Optional[int]:
        """Parent of ``node`` (``None`` for the root)."""
        return self._parents[node]

    def children(self, node: int) -> Tuple[int, ...]:
        """Children of ``node``, sorted by id."""
        return tuple(self._children[node])

    def parent_map(self) -> Dict[int, Optional[int]]:
        """Copy of the underlying parent map."""
        return dict(self._parents)

    def edges(self) -> List[Tuple[int, int]]:
        """All ``(parent, child)`` edges, sorted."""
        return sorted(
            (parent, child)
            for child, parent in self._parents.items()
            if parent is not None
        )

    def leaves(self) -> List[int]:
        """Nodes without children, sorted."""
        return sorted(node for node, children in self._children.items() if not children)

    def is_leaf(self, node: int) -> bool:
        """``True`` if ``node`` has no children."""
        return not self._children[node]

    def subtree_nodes(self, node: int) -> Set[int]:
        """All nodes of the subtree rooted at ``node`` (including ``node``)."""
        result: Set[int] = set()
        stack = [node]
        while stack:
            current = stack.pop()
            result.add(current)
            stack.extend(self._children[current])
        return result

    def path_to_root(self, node: int) -> List[int]:
        """Nodes on the path from ``node`` up to (and including) the root."""
        path = [node]
        current = node
        while self._parents[current] is not None:
            current = self._parents[current]
            path.append(current)
        return path

    # ------------------------------------------------------------------
    # Metrics (the quantities the paper's figures report)
    # ------------------------------------------------------------------
    def depth(self, node: int) -> int:
        """Number of edges on the path from the root to ``node``."""
        return self._depths[node]

    def depths(self) -> Dict[int, int]:
        """Depth of every node."""
        return dict(self._depths)

    def height(self) -> int:
        """Longest root-to-leaf path, in edges (Figure 1 (b))."""
        return max(self._depths.values()) if self._depths else 0

    def degree(self, node: int) -> int:
        """Tree degree of ``node``: children plus the parent link."""
        return len(self._children[node]) + (0 if node == self._root else 1)

    def maximum_degree(self) -> int:
        """Maximum tree degree over all peers (Figure 1 (e))."""
        return max(self.degree(node) for node in self._parents)

    def average_degree(self) -> float:
        """Average tree degree over all peers."""
        return sum(self.degree(node) for node in self._parents) / len(self._parents)

    def diameter(self) -> int:
        """Longest path (in edges) between any two nodes of the tree (Figure 1 (d)).

        Computed with the classic double-BFS: the farthest node from an
        arbitrary start is one endpoint of a diameter, and the farthest node
        from that endpoint gives the diameter length.
        """
        if len(self._parents) <= 1:
            return 0
        adjacency = self._undirected_adjacency()
        endpoint, _ = _farthest(adjacency, self._root)
        _, distance = _farthest(adjacency, endpoint)
        return distance

    def message_count(self) -> int:
        """Messages needed to disseminate one datum over the tree (``N - 1``)."""
        return len(self._parents) - 1

    def metrics_summary(self) -> Dict[str, float]:
        """Height, diameter, degree statistics and leaf count in one pass.

        The separate metric methods each traverse the tree on their own
        (``diameter`` alone runs two BFS passes from scratch); batch callers
        that want the whole Figure 1 bundle go through here instead: one loop
        over the children map collects the degree statistics and the leaf
        count, the stored depths give the height *and* one endpoint of a
        diameter (the deepest node -- depths are BFS distances from the
        root), so a single extra BFS from that endpoint completes the
        diameter.
        """
        degree_sum = 0
        max_degree = 0
        leaves = 0
        for node, children in self._children.items():
            degree = len(children) + (0 if node == self._root else 1)
            degree_sum += degree
            if degree > max_degree:
                max_degree = degree
            if not children:
                leaves += 1
        height = 0
        endpoint = self._root
        for node, depth in self._depths.items():
            if depth > height or (depth == height and node < endpoint):
                height, endpoint = depth, node
        if len(self._parents) <= 1:
            diameter = 0
        else:
            _, diameter = _farthest(self._undirected_adjacency(), endpoint)
        return {
            "height": height,
            "diameter": diameter,
            "max_degree": max_degree,
            "avg_degree": degree_sum / len(self._parents),
            "leaves": leaves,
        }

    # ------------------------------------------------------------------
    # Repair API (used by the event-driven maintenance engine)
    # ------------------------------------------------------------------
    def add_leaf(self, node: int, parent: int) -> None:
        """Attach ``node`` as a new leaf under ``parent``.

        The new node must not be part of the tree yet and the parent must be;
        children lists and depths are updated in place.
        """
        if node in self._parents:
            raise TreeValidationError(f"node {node} is already part of the tree")
        if parent not in self._parents:
            raise TreeValidationError(f"parent {parent} is not part of the tree")
        self._parents[node] = parent
        self._children[node] = []
        insort(self._children[parent], node)
        self._depths[node] = self._depths[parent] + 1

    def remove_leaf(self, node: int) -> None:
        """Detach a leaf from the tree (the root cannot be removed)."""
        if node not in self._parents:
            raise TreeValidationError(f"node {node} is not part of the tree")
        if node == self._root:
            raise TreeValidationError("the root cannot be removed")
        if self._children[node]:
            raise TreeValidationError(
                f"node {node} still has children {tuple(self._children[node][:10])}; "
                "only leaves can be removed"
            )
        parent = self._parents.pop(node)
        self._children[parent].remove(node)
        del self._children[node]
        del self._depths[node]

    def reparent(self, node: int, new_parent: int) -> None:
        """Move ``node`` (and its whole subtree) under ``new_parent``.

        This is the single edge re-parent operation the stability-tree repair
        engine performs when a peer's preferred neighbour changes: the edge
        ``node -> old parent`` is replaced by ``node -> new_parent`` and the
        depths of the moved subtree are shifted accordingly.  Re-parenting
        under a descendant of ``node`` would create a cycle and is rejected.
        """
        if node not in self._parents:
            raise TreeValidationError(f"node {node} is not part of the tree")
        if node == self._root:
            raise TreeValidationError("the root cannot be re-parented")
        if new_parent not in self._parents:
            raise TreeValidationError(f"parent {new_parent} is not part of the tree")
        old_parent = self._parents[node]
        if new_parent == old_parent:
            return
        ancestor: Optional[int] = new_parent
        while ancestor is not None:
            if ancestor == node:
                raise TreeValidationError(
                    f"re-parenting {node} under its descendant {new_parent} "
                    "would create a cycle"
                )
            ancestor = self._parents[ancestor]
        self._children[old_parent].remove(node)
        insort(self._children[new_parent], node)
        self._parents[node] = new_parent
        shift = self._depths[new_parent] + 1 - self._depths[node]
        if shift:
            stack = [node]
            while stack:
                current = stack.pop()
                self._depths[current] += shift
                stack.extend(self._children[current])

    def revalidate(self) -> None:
        """Re-run the construction-time invariant checks on the current state.

        Verifies that the children map is exactly the inverse of the parent
        map, that every node is reachable from the root, and that the stored
        depths match a fresh BFS.  Raises :class:`TreeValidationError` on the
        first violation; a tree only ever mutated through the repair API
        passes by construction, so this is an audit hook for tests and
        debugging, not a routine cost.
        """
        if self._parents.get(self._root, "missing") is not None:
            raise TreeValidationError(f"root {self._root} must be present with no parent")
        derived: Dict[int, List[int]] = {node: [] for node in self._parents}
        for node, parent in self._parents.items():
            if node == self._root:
                continue
            if parent not in self._parents:
                raise TreeValidationError(
                    f"node {node} has parent {parent} which is not part of the tree"
                )
            derived[parent].append(node)
        for node, children in derived.items():
            children.sort()
            if children != self._children[node]:
                raise TreeValidationError(
                    f"children map of node {node} is stale: stored "
                    f"{tuple(self._children[node][:10])}, derived {tuple(children[:10])}"
                )
        depths = self._compute_depths()
        if len(depths) != len(self._parents):
            unreachable = sorted(set(self._parents) - set(depths))
            raise TreeValidationError(
                f"nodes {unreachable[:10]} are not reachable from the root "
                f"({len(unreachable)} unreachable in total)"
            )
        if depths != self._depths:
            stale = sorted(
                node for node, depth in depths.items() if self._depths.get(node) != depth
            )
            raise TreeValidationError(f"stored depths of nodes {stale[:10]} are stale")

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_networkx(self) -> "nx.DiGraph":
        """Export as a :class:`networkx.DiGraph` with edges parent -> child."""
        graph = nx.DiGraph()
        graph.add_nodes_from(self._parents)
        graph.add_edges_from(self.edges())
        return graph

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _compute_depths(self) -> Dict[int, int]:
        depths = {self._root: 0}
        queue = deque([self._root])
        while queue:
            node = queue.popleft()
            for child in self._children[node]:
                if child not in depths:
                    depths[child] = depths[node] + 1
                    queue.append(child)
        return depths

    def _undirected_adjacency(self) -> Dict[int, List[int]]:
        adjacency: Dict[int, List[int]] = {node: [] for node in self._parents}
        for child, parent in self._parents.items():
            if parent is not None:
                adjacency[child].append(parent)
                adjacency[parent].append(child)
        return adjacency

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MulticastTree(root={self._root}, size={self.size})"


def _farthest(adjacency: Mapping[int, List[int]], start: int) -> Tuple[int, int]:
    """BFS helper returning the farthest node from ``start`` and its distance."""
    distances = {start: 0}
    queue = deque([start])
    farthest_node, farthest_distance = start, 0
    while queue:
        node = queue.popleft()
        for neighbour in adjacency[node]:
            if neighbour not in distances:
                distances[neighbour] = distances[node] + 1
                if distances[neighbour] > farthest_distance:
                    farthest_node, farthest_distance = neighbour, distances[neighbour]
                queue.append(neighbour)
    return farthest_node, farthest_distance
