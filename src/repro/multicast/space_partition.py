"""Space-partitioning multicast tree construction (Section 2 of the paper).

The construction is fully decentralized: a peer ``P`` that receives a tree
construction request carrying its responsibility zone ``Z(P)``

1. classifies its overlay neighbours that lie inside ``Z(P)`` into the
   ``2^D`` orthant regions relative to its own identifier (the classification
   of the Orthogonal Hyperplanes method),
2. inside every non-empty region, sorts the neighbours by L1 distance and
   selects the one with the *median* distance,
3. computes the selected neighbour's zone ``Z(Q)`` as the intersection of
   ``Z(P)`` with the open orthant rectangle of ``Q``'s region, and
4. forwards the request (with ``Z(Q)`` inside) to every selected neighbour.

Because the child zones are disjoint, exclude ``P`` and jointly cover the
not-yet-reached part of ``Z(P)``, the construction reaches every peer exactly
once using ``N - 1`` messages, and the tree degree of every peer is bounded
by ``2^D`` children (plus the parent link).

This module implements the construction as a deterministic walk over a
topology snapshot.  :mod:`repro.simulation.protocol` replays the same logic
message-by-message over the simulated network; both produce identical trees,
which is covered by integration tests.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.geometry.distance import DistanceFunction, get_distance
from repro.geometry.rectangle import HyperRectangle
from repro.geometry.regions import orthant_signs
from repro.multicast.tree import MulticastTree
from repro.multicast.zones import child_zone, initial_zone
from repro.overlay.peer import PeerInfo
from repro.overlay.topology import TopologySnapshot

__all__ = [
    "PickStrategy",
    "ConstructionResult",
    "SpacePartitionTreeBuilder",
    "build_space_partition_tree",
    "select_zone_children",
]


class PickStrategy:
    """Which neighbour of a region is selected as the tree child.

    The paper selects the neighbour with the *median* L1 distance.  The other
    strategies are used by the pick-strategy ablation (A2 in DESIGN.md) to
    show how the choice trades tree depth against subtree balance.
    """

    MEDIAN = "median"
    NEAREST = "nearest"
    FARTHEST = "farthest"
    RANDOM = "random"

    ALL = (MEDIAN, NEAREST, FARTHEST, RANDOM)


def select_zone_children(
    reference: PeerInfo,
    neighbours: Sequence[PeerInfo],
    zone: HyperRectangle,
    *,
    pick_strategy: str = PickStrategy.MEDIAN,
    distance: "DistanceFunction | str" = "l1",
    zero_sign: int = 1,
    rng: Optional[random.Random] = None,
) -> List[Tuple[PeerInfo, HyperRectangle]]:
    """One construction step of the Section 2 algorithm, as a pure function.

    Given the peer currently holding the request (``reference``), the overlay
    neighbours it knows about and its responsibility zone, return the selected
    children together with the responsibility zones to forward to them.  This
    is the exact per-peer decision rule; it is shared by the offline
    :class:`SpacePartitionTreeBuilder` and by the message-level protocol in
    :mod:`repro.simulation.protocol`, so the two can never diverge.
    """
    if pick_strategy not in PickStrategy.ALL:
        raise ValueError(
            f"unknown pick strategy {pick_strategy!r}; expected one of {PickStrategy.ALL}"
        )
    distance_fn = get_distance(distance) if isinstance(distance, str) else distance
    generator = rng if rng is not None else random.Random(0)

    by_region: Dict[Tuple[int, ...], List[Tuple[float, int, PeerInfo]]] = {}
    for neighbour in neighbours:
        if neighbour.peer_id == reference.peer_id:
            continue
        if not zone.contains(neighbour.coordinates):
            continue
        signs = orthant_signs(
            reference.coordinates, neighbour.coordinates, zero_sign=zero_sign
        )
        ranking_key = distance_fn(reference.coordinates, neighbour.coordinates)
        by_region.setdefault(signs, []).append((ranking_key, neighbour.peer_id, neighbour))

    children: List[Tuple[PeerInfo, HyperRectangle]] = []
    for signs in sorted(by_region):
        ranked = sorted(by_region[signs], key=lambda entry: (entry[0], entry[1]))
        if pick_strategy == PickStrategy.MEDIAN:
            chosen = ranked[(len(ranked) - 1) // 2][2]
        elif pick_strategy == PickStrategy.NEAREST:
            chosen = ranked[0][2]
        elif pick_strategy == PickStrategy.FARTHEST:
            chosen = ranked[-1][2]
        else:
            chosen = generator.choice(ranked)[2]
        zone_for_child = child_zone(
            zone, reference.coordinates, chosen.coordinates, zero_sign=zero_sign
        )
        children.append((chosen, zone_for_child))
    return children


@dataclass
class ConstructionResult:
    """Everything the construction produced, for measurement and validation.

    Attributes
    ----------
    tree:
        The multicast tree (root = initiator).
    messages_sent:
        Number of construction request messages sent.  The paper's claim is
        that this equals ``N - 1`` when every peer is reached.
    duplicate_deliveries:
        Requests delivered to a peer that had already received one.  Zero by
        construction when the zones are managed correctly.
    unreached_peers:
        Peers of the initiator's zone that never received a request.  Empty
        at full-knowledge equilibrium; may be non-empty on degraded overlays
        (which the coverage ablation measures).
    zones:
        The responsibility zone each reached peer received.
    region_fanout:
        For each reached peer, the number of children it forwarded to
        (bounded by ``2^D``).
    """

    tree: MulticastTree
    messages_sent: int
    duplicate_deliveries: int
    unreached_peers: Set[int]
    zones: Dict[int, HyperRectangle]
    region_fanout: Dict[int, int] = field(default_factory=dict)

    @property
    def reached_count(self) -> int:
        """Number of peers that received the construction request."""
        return self.tree.size

    @property
    def delivered_everywhere(self) -> bool:
        """``True`` when every peer of the overlay was reached."""
        return not self.unreached_peers

    @property
    def longest_root_to_leaf_path(self) -> int:
        """Longest root-to-leaf path of the constructed tree, in hops."""
        return self.tree.height()


class SpacePartitionTreeBuilder:
    """Builds Section 2 multicast trees over a topology snapshot.

    Parameters
    ----------
    pick_strategy:
        How the child of each orthant region is chosen; the paper uses
        ``"median"``.
    distance:
        Distance used to rank neighbours inside a region (paper: L1).
    rng:
        Source of randomness for the ``"random"`` pick strategy; ignored by
        the deterministic strategies.
    zero_sign:
        Tie-break for coordinates equal to the reference peer's coordinate
        (never triggered on paper workloads, which have distinct
        coordinates).
    """

    def __init__(
        self,
        *,
        pick_strategy: str = PickStrategy.MEDIAN,
        distance: "DistanceFunction | str" = "l1",
        rng: Optional[random.Random] = None,
        zero_sign: int = 1,
    ) -> None:
        if pick_strategy not in PickStrategy.ALL:
            raise ValueError(
                f"unknown pick strategy {pick_strategy!r}; expected one of {PickStrategy.ALL}"
            )
        self._pick_strategy = pick_strategy
        self._distance = get_distance(distance) if isinstance(distance, str) else distance
        self._rng = rng if rng is not None else random.Random(0)
        self._zero_sign = zero_sign

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def build(
        self,
        topology: TopologySnapshot,
        root: int,
        *,
        scope: Optional[HyperRectangle] = None,
    ) -> ConstructionResult:
        """Construct the multicast tree initiated by ``root``.

        ``scope`` restricts the initiator's responsibility zone; by default it
        is the whole coordinate space, i.e. the multicast group is "everyone".
        """
        if root not in topology.peers:
            raise KeyError(f"root {root} is not a peer of the topology")
        peers = topology.peers
        dimension = peers[root].dimension
        root_zone = scope if scope is not None else initial_zone(dimension)
        if root_zone.dimension != dimension:
            raise ValueError(
                f"scope dimension {root_zone.dimension} does not match peer dimension {dimension}"
            )
        if not root_zone.contains(peers[root].coordinates):
            raise ValueError("the initiator must lie inside its own responsibility zone")

        parents: Dict[int, Optional[int]] = {root: None}
        zones: Dict[int, HyperRectangle] = {root: root_zone}
        region_fanout: Dict[int, int] = {}
        messages_sent = 0
        duplicate_deliveries = 0

        queue = deque([root])
        while queue:
            current = queue.popleft()
            current_info = peers[current]
            current_zone = zones[current]
            neighbours = [peers[n] for n in sorted(topology.adjacency[current])]
            children = select_zone_children(
                current_info,
                neighbours,
                current_zone,
                pick_strategy=self._pick_strategy,
                distance=self._distance,
                zero_sign=self._zero_sign,
                rng=self._rng,
            )
            region_fanout[current] = len(children)
            for child_info, zone in children:
                child_id = child_info.peer_id
                messages_sent += 1
                if child_id in parents:
                    duplicate_deliveries += 1
                    continue
                parents[child_id] = current
                zones[child_id] = zone
                queue.append(child_id)

        tree = MulticastTree(root, parents)
        in_scope = {
            peer_id
            for peer_id, info in peers.items()
            if root_zone.contains(info.coordinates)
        }
        unreached = in_scope - set(parents)
        return ConstructionResult(
            tree=tree,
            messages_sent=messages_sent,
            duplicate_deliveries=duplicate_deliveries,
            unreached_peers=unreached,
            zones=zones,
            region_fanout=region_fanout,
        )

    def build_from_every_root(
        self, topology: TopologySnapshot, *, roots: Optional[Sequence[int]] = None
    ) -> Dict[int, ConstructionResult]:
        """Construct one tree per initiator (the paper initiates from every peer).

        ``roots`` restricts the initiators (the figure benchmarks sample roots
        to keep runtimes reasonable); by default every peer initiates once.
        """
        selected_roots = list(roots) if roots is not None else sorted(topology.peers)
        return {root: self.build(topology, root) for root in selected_roots}

def build_space_partition_tree(
    topology: TopologySnapshot,
    root: int,
    *,
    pick_strategy: str = PickStrategy.MEDIAN,
    distance: "DistanceFunction | str" = "l1",
) -> ConstructionResult:
    """Convenience wrapper: build one Section 2 tree with default settings."""
    builder = SpacePartitionTreeBuilder(pick_strategy=pick_strategy, distance=distance)
    return builder.build(topology, root)
