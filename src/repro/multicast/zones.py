"""Responsibility zones for the space-partitioning multicast construction.

The responsibility zone ``Z(P)`` of a peer ``P`` is the part of the virtual
coordinate space ``P`` must (directly or indirectly) deliver the multicast
data to.  The initiator's zone is the entire space; a child's zone is the
intersection of its parent's zone with the open orthant rectangle of the
region (relative to the parent) the child lies in.  This module provides the
zone algebra plus the validation predicates the paper states as requirements:

* child zones are pairwise disjoint,
* their union covers every not-yet-reached peer of the parent zone,
* the parent itself lies outside every child zone.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.geometry.point import CoordinateLike, as_point
from repro.geometry.rectangle import HyperRectangle
from repro.geometry.regions import orthant_rectangle, orthant_signs

__all__ = [
    "initial_zone",
    "child_zone",
    "zones_are_disjoint",
    "zone_excludes",
    "uncovered_points",
]


def initial_zone(dimension: int) -> HyperRectangle:
    """The initiator's responsibility zone ``Z(A)``: the whole coordinate space."""
    return HyperRectangle.whole_space(dimension)


def child_zone(
    parent_zone: HyperRectangle,
    parent_point: CoordinateLike,
    child_point: CoordinateLike,
    *,
    zero_sign: int = 1,
) -> HyperRectangle:
    """Responsibility zone handed by a parent to one selected neighbour.

    ``Z(Q) = Z(P) ∩ HR`` where ``HR`` is the open orthant rectangle, relative
    to the parent's identifier, of the region the child lies in: its side in
    dimension ``i`` is ``(-inf, x(P, i))`` when ``x(Q, i) < x(P, i)`` and
    ``(x(P, i), +inf)`` otherwise.
    """
    parent = as_point(parent_point)
    child = as_point(child_point)
    signs = orthant_signs(parent, child, zero_sign=zero_sign)
    return parent_zone.intersect(orthant_rectangle(parent, signs))


def zones_are_disjoint(zones: Sequence[HyperRectangle]) -> bool:
    """``True`` when no two zones share a point (the paper's disjointness requirement)."""
    for index, zone in enumerate(zones):
        for other in zones[index + 1 :]:
            if zone.overlaps(other):
                return False
    return True


def zone_excludes(zone: HyperRectangle, point: CoordinateLike) -> bool:
    """``True`` when ``point`` lies outside ``zone`` (the "exclude P" requirement)."""
    return not zone.contains(point)


def uncovered_points(
    zones: Iterable[HyperRectangle],
    points: Dict[int, CoordinateLike],
) -> List[int]:
    """Ids of points not covered by any zone.

    Used to check the coverage requirement: the union of the child zones must
    contain every peer of the parent zone that has not received the request
    yet.  Returns the sorted ids of uncovered points (empty when coverage
    holds).
    """
    zone_list: List[HyperRectangle] = list(zones)
    missing: List[int] = []
    for point_id, coordinates in points.items():
        point = as_point(coordinates)
        if not any(zone.contains(point) for zone in zone_list):
            missing.append(point_id)
    return sorted(missing)
