"""Event-driven multicast layer: incremental stability-tree maintenance.

The paper's Section 3 guarantee is about what the multicast tree does *under
churn*, yet the snapshot-batch pipeline re-derives the whole
preferred-neighbour forest (:func:`repro.multicast.stability.build_stability_tree`)
from a fresh topology snapshot after every membership event.  This module is
the event-driven replacement: overlay deltas in, single edge repairs out.

Three cooperating pieces:

* :class:`TreeMaintenanceEngine` -- a mutable preferred-neighbour forest.
  It consumes :class:`TreeDelta` records (peers joined with their lifetimes,
  peers departed, peers whose preferred neighbour changed) and repairs the
  forest in place, re-parenting only the peers named by the delta.  Metrics
  (size, height, max/avg degree, leaf count) are maintained *streaming* by
  :class:`repro.metrics.trees.StreamingTreeMetrics`; only the diameter is
  recomputed lazily, cached per structure version.
* :class:`StabilityTreeMaintainer` -- binds an engine to a live
  :class:`repro.overlay.network.OverlayNetwork` through the overlay delta
  stream (see :mod:`repro.overlay.incremental`).  On every
  :meth:`~StabilityTreeMaintainer.refresh` it re-derives the preferred
  parent -- via the *same* rule the snapshot builder uses
  (:func:`repro.multicast.stability.choose_preferred_parent`) -- for exactly
  the peers whose adjacency may have changed, and feeds the resulting
  :class:`TreeDelta` to the engine.
* :class:`IncrementalConnectivity` -- a union-find connectivity tracker over
  a dynamic graph: edge and node additions are unioned on the fly in
  near-constant time, deletions mark an epoch dirty and the structure is
  rebuilt once per *batch* of deletions, at the next query.  It replaces the
  per-event full-graph connectivity recomputation in the overlay-churn
  ablation (A4).

Invariants the repair engine preserves (and validates on every operation):

1. every maintained link points from a peer to a strictly longer-lived peer
   -- the paper's ``T(parent) > T(child)`` invariant, which also makes
   cycles structurally impossible, so single edge re-parents never need a
   global acyclicity check;
2. the children map is the exact inverse of the parent map, and the stored
   depths are the exact BFS distances from each peer's root;
3. the streaming counters agree with a from-scratch
   :func:`repro.metrics.trees.tree_metrics` over the same forest -- the
   hypothesis cross-checks drive arbitrary join/leave/reselect schedules
   through both paths and assert byte-identical parent maps and metric
   bundles.

Peers whose lifetimes collide are rejected exactly as the snapshot builder
rejects them (the paper assumes pairwise-distinct lifetimes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

from repro.contracts import hot_path
from repro.geometry.distance import DistanceFunction, get_distance
from repro.metrics.trees import StreamingTreeMetrics, TreeMetrics
from repro.multicast.dissemination import TreeHealthSample
from repro.multicast.stability import (
    PreferredNeighbourForest,
    StabilityTreeBuilder,
    choose_preferred_parent,
    lifetime_of,
)
from repro.multicast.tree import MulticastTree, TreeValidationError, _farthest
from repro.overlay.incremental import DirectedSelectionMirror
from repro.overlay.network import OverlayNetwork

__all__ = [
    "TreeDelta",
    "TreeMaintenanceEngine",
    "StabilityTreeMaintainer",
    "IncrementalConnectivity",
    "OverlayConnectivityFeed",
]


@dataclass(frozen=True)
class TreeDelta:
    """One batch of tree repairs derived from overlay changes.

    ``joined`` maps new peer ids to their lifetimes; ``departed`` lists
    removed peers; ``reparented`` maps a peer to its new preferred neighbour
    (``None`` = no longer-lived neighbour, the peer becomes a root).  The
    engine applies departures first, then joins, then re-parents, so a
    re-join of a departed id and a re-parent onto a freshly joined peer are
    both well-formed inside a single delta.
    """

    joined: Mapping[int, float] = field(default_factory=dict)
    departed: FrozenSet[int] = frozenset()
    reparented: Mapping[int, Optional[int]] = field(default_factory=dict)

    @property
    def is_empty(self) -> bool:
        """``True`` when the delta carries no repairs at all."""
        return not (self.joined or self.departed or self.reparented)


class TreeMaintenanceEngine:
    """A mutable preferred-neighbour forest repaired by :class:`TreeDelta` batches.

    See the module docstring for the invariants every operation preserves.
    The engine is deliberately ignorant of *why* a peer's preferred
    neighbour changed -- the :class:`StabilityTreeMaintainer` derives deltas
    from an overlay, the simulation runner derives them from protocol
    events, and tests drive it directly.
    """

    def __init__(self) -> None:
        self._parents: Dict[int, Optional[int]] = {}
        self._children: Dict[int, Set[int]] = {}
        self._lifetimes: Dict[int, float] = {}
        self._lifetime_values: Set[float] = set()
        self._roots: Set[int] = set()
        self._metrics = StreamingTreeMetrics()
        self._version = 0
        self._diameter_cache: Tuple[int, int] = (-1, 0)
        self._reparent_operations = 0
        self._applied_deltas = 0

    # ------------------------------------------------------------------
    # Structure accessors
    # ------------------------------------------------------------------
    def __contains__(self, peer_id: int) -> bool:
        return peer_id in self._parents

    def __len__(self) -> int:
        return len(self._parents)

    @property
    def peer_count(self) -> int:
        """Number of maintained peers."""
        return len(self._parents)

    @property
    def reparent_operations(self) -> int:
        """Single edge repairs performed since the last bootstrap."""
        return self._reparent_operations

    @property
    def applied_deltas(self) -> int:
        """Delta batches applied since the last bootstrap."""
        return self._applied_deltas

    def parent(self, peer_id: int) -> Optional[int]:
        """Current preferred neighbour of one peer (``None`` for roots)."""
        return self._parents[peer_id]

    def parent_map(self) -> Dict[int, Optional[int]]:
        """Copy of the maintained preferred-neighbour map."""
        return dict(self._parents)

    def lifetime(self, peer_id: int) -> float:
        """Lifetime the peer was registered with."""
        return self._lifetimes[peer_id]

    def roots(self) -> List[int]:
        """Peers without a preferred neighbour, sorted."""
        return sorted(self._roots)

    def is_single_tree(self) -> bool:
        """``True`` when the forest is one tree covering every maintained peer."""
        return len(self._roots) <= 1

    def forest(self) -> PreferredNeighbourForest:
        """The maintained forest as an immutable snapshot value."""
        return PreferredNeighbourForest(
            preferred=dict(self._parents), lifetimes=dict(self._lifetimes)
        )

    def tree(self) -> MulticastTree:
        """The maintained forest as a :class:`MulticastTree` (single tree required)."""
        return self.forest().to_multicast_tree()

    # ------------------------------------------------------------------
    # Bootstrap and repair operations
    # ------------------------------------------------------------------
    def bootstrap(self, forest: PreferredNeighbourForest) -> None:
        """Adopt a snapshot-built forest wholesale, discarding all prior state.

        This is the one full-rebuild entry point; everything after it goes
        through :meth:`apply`.  Links are attached top-down from the roots so
        the adoption costs ``O(N)`` subtree shifts overall.
        """
        self.__init__()
        for peer_id in sorted(forest.preferred):
            self.add_peer(peer_id, forest.lifetimes[peer_id])
        children: Dict[int, List[int]] = {}
        for child, parent in forest.preferred.items():
            if parent is not None:
                children.setdefault(parent, []).append(child)
        stack = [root for root, parent in forest.preferred.items() if parent is None]
        attached = len(stack)
        while stack:
            parent = stack.pop()
            for child in children.get(parent, ()):
                self.set_parent(child, parent)
                attached += 1
                stack.append(child)
        if attached != len(self._parents):
            raise TreeValidationError(
                "the adopted forest contains a cycle: "
                f"{len(self._parents) - attached} peers unreachable from any root"
            )
        # Adoption is not incremental repair work; reset the counters.
        self._reparent_operations = 0
        self._applied_deltas = 0

    @hot_path
    def add_peer(self, peer_id: int, lifetime: float) -> None:
        """Register a peer as a fresh isolated root."""
        if peer_id in self._parents:
            raise ValueError(f"peer {peer_id} is already maintained")
        lifetime = float(lifetime)
        if lifetime in self._lifetime_values:
            raise ValueError(
                "peer lifetimes must be pairwise distinct (the paper breaks ties "
                "using other peer-specific properties before running the algorithm); "
                f"lifetime {lifetime!r} of peer {peer_id} collides"
            )
        self._parents[peer_id] = None
        self._children[peer_id] = set()
        self._lifetimes[peer_id] = lifetime
        self._lifetime_values.add(lifetime)
        self._roots.add(peer_id)
        self._metrics.add_node(peer_id, depth=0, has_parent=False)
        self._version += 1

    @hot_path
    def remove_peer(self, peer_id: int) -> None:
        """Remove a peer; any children it still has become roots.

        Under lifetime-ordered departures the stability invariant makes the
        departing peer a leaf, so the orphaning path never runs; it exists
        for arbitrary schedules (and for the protocol replay, where a
        departure notice can overtake the children's re-parent events).
        """
        if peer_id not in self._parents:
            raise KeyError(f"peer {peer_id} is not maintained")
        for child in sorted(self._children[peer_id]):
            self.set_parent(child, None)
        self.set_parent(peer_id, None)
        self._roots.discard(peer_id)
        del self._parents[peer_id]
        del self._children[peer_id]
        self._lifetime_values.discard(self._lifetimes.pop(peer_id))
        self._metrics.remove_node(peer_id)
        self._version += 1

    @hot_path
    def set_parent(self, child: int, parent: Optional[int]) -> None:
        """Single edge repair: replace ``child``'s preferred-neighbour link.

        Validates the lifetime invariant (``T(parent) > T(child)``), which
        also rules out cycles: every link strictly increases the lifetime, so
        no descendant of ``child`` can ever be its parent.  Depths of the
        moved subtree are shifted in place.
        """
        if child not in self._parents:
            raise KeyError(f"peer {child} is not maintained")
        old = self._parents[child]
        if old == parent:
            return
        if parent is not None:
            if parent not in self._parents:
                raise TreeValidationError(f"parent {parent} is not maintained")
            if not self._lifetimes[parent] > self._lifetimes[child]:
                raise TreeValidationError(
                    f"link {child} -> {parent} violates the lifetime invariant: "
                    f"T({parent})={self._lifetimes[parent]!r} must exceed "
                    f"T({child})={self._lifetimes[child]!r}"
                )
        if old is None:
            self._roots.discard(child)
        else:
            self._children[old].discard(child)
            self._metrics.adjust_children(old, -1)
        self._parents[child] = parent
        if parent is None:
            self._roots.add(child)
            new_depth = 0
        else:
            self._children[parent].add(child)
            self._metrics.adjust_children(parent, +1)
            new_depth = self._metrics.depth(parent) + 1
        self._metrics.set_parent_flag(child, parent is not None)
        shift = new_depth - self._metrics.depth(child)
        if shift:
            stack = [child]
            while stack:
                node = stack.pop()
                self._metrics.set_depth(node, self._metrics.depth(node) + shift)
                stack.extend(self._children[node])
        self._version += 1
        self._reparent_operations += 1

    @hot_path
    def apply(self, delta: TreeDelta) -> None:
        """Apply one repair batch: departures, then joins, then re-parents.

        A peer may appear in all three groups at once -- a departure
        followed by a re-join inside one delta window, with the rejoined
        peer's fresh preferred parent -- because the phases run in that
        order.  Only a re-parent of a peer that departs *without* rejoining
        is contradictory and rejected.
        """
        overlap = (set(delta.departed) - set(delta.joined)) & set(delta.reparented)
        if overlap:
            raise ValueError(
                f"peers {sorted(overlap)[:10]} appear both departed and re-parented"
            )
        for peer_id in sorted(delta.departed):
            self.remove_peer(peer_id)
        for peer_id in sorted(delta.joined):
            self.add_peer(peer_id, delta.joined[peer_id])
        for peer_id in sorted(delta.reparented):
            self.set_parent(peer_id, delta.reparented[peer_id])
        self._applied_deltas += 1

    # ------------------------------------------------------------------
    # Streaming metrics
    # ------------------------------------------------------------------
    def diameter(self) -> int:
        """Tree diameter, recomputed lazily and cached per structure version.

        The diameter has no local update rule under re-parents, so it is the
        one quantity the engine recomputes (double BFS) -- but only when the
        structure actually changed since the cached value.
        """
        if len(self._roots) != 1:
            raise TreeValidationError(
                f"the forest has {len(self._roots)} roots; the diameter is only "
                "defined for a single tree"
            )
        version, value = self._diameter_cache
        if version == self._version:
            return value
        if len(self._parents) <= 1:
            value = 0
        else:
            adjacency: Dict[int, List[int]] = {node: [] for node in self._parents}
            for child, parent in self._parents.items():
                if parent is not None:
                    adjacency[child].append(parent)
                    adjacency[parent].append(child)
            endpoint, _ = _farthest(adjacency, next(iter(self._roots)))
            _, value = _farthest(adjacency, endpoint)
        self._diameter_cache = (self._version, value)
        return value

    def metrics(self) -> TreeMetrics:
        """The full metric bundle of the maintained tree (single tree required).

        Everything except the diameter reads straight from the streaming
        counters; the result is bit-identical to
        ``tree_metrics(build_stability_tree(snapshot))`` on the equivalent
        snapshot, which the property tests assert.
        """
        if len(self._roots) != 1:
            raise TreeValidationError(
                f"the forest has {len(self._roots)} roots, not one; "
                "metrics bundles describe a single tree"
            )
        return self._metrics.bundle(diameter=self.diameter())

    def health_sample(self, event: int) -> TreeHealthSample:
        """One cheap "tree health" observation (valid for forests too)."""
        return TreeHealthSample(
            event=event,
            size=self._metrics.size,
            roots=len(self._roots),
            height=self._metrics.height(),
            maximum_degree=self._metrics.maximum_degree(),
            leaf_count=self._metrics.leaf_count,
        )


class _LifetimeView:
    """Read-only lifetime lookup across the engine and a pending join batch."""

    __slots__ = ("_engine", "_joined")

    def __init__(self, engine: TreeMaintenanceEngine, joined: Mapping[int, float]) -> None:
        self._engine = engine
        self._joined = joined

    def __getitem__(self, peer_id: int) -> float:
        if peer_id in self._joined:
            return self._joined[peer_id]
        return self._engine.lifetime(peer_id)


class StabilityTreeMaintainer:
    """Keeps a :class:`TreeMaintenanceEngine` in lockstep with a live overlay.

    The maintainer subscribes to the overlay's delta stream at construction,
    bootstraps the engine from one snapshot build (the only full rebuild),
    and from then on :meth:`refresh` turns each drained
    :class:`~repro.overlay.incremental.OverlayDelta` into the minimal
    :class:`TreeDelta`: the preferred parent is re-derived -- with the exact
    snapshot-builder rule -- only for peers whose adjacency may have
    changed, and only actual changes reach the engine.

    A directed-selection mirror plus a reverse (selector) index give
    ``O(degree)`` per-peer adjacency reads, so a refresh costs time
    proportional to the overlay churn, not to the population.
    """

    def __init__(
        self,
        overlay: OverlayNetwork,
        *,
        tie_break: str = StabilityTreeBuilder.LARGEST_LIFETIME,
        distance: "DistanceFunction | str" = "l2",
    ) -> None:
        if tie_break not in StabilityTreeBuilder.TIE_BREAKS:
            raise ValueError(
                f"unknown tie_break {tie_break!r}; expected one of "
                f"{StabilityTreeBuilder.TIE_BREAKS}"
            )
        self._overlay = overlay
        self._tie_break = tie_break
        self._distance = get_distance(distance) if isinstance(distance, str) else distance
        self._engine = TreeMaintenanceEngine()
        # Attach before reading the snapshot: events that land in between are
        # both in the snapshot and in the first drain, and re-deriving a
        # clean peer's parent from current state is harmless by contract.
        self._recorder = overlay.delta_stream()
        self._mirror = DirectedSelectionMirror()
        self._full_rebuilds = 0
        self.rebuild()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def engine(self) -> TreeMaintenanceEngine:
        """The maintained engine (forest, streaming metrics, counters)."""
        return self._engine

    @property
    def full_rebuilds(self) -> int:
        """Snapshot-scale rebuilds performed (1 = only the bootstrap)."""
        return self._full_rebuilds

    def forest(self) -> PreferredNeighbourForest:
        """Immutable snapshot of the maintained forest."""
        return self._engine.forest()

    def tree(self) -> MulticastTree:
        """The maintained stability tree (single tree required)."""
        return self._engine.tree()

    def metrics(self) -> TreeMetrics:
        """Streaming metric bundle of the maintained tree."""
        return self._engine.metrics()

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def rebuild(self) -> None:
        """Force one snapshot-scale rebuild (used at bootstrap only).

        Drains the recorder first so the rebuilt state is not immediately
        dirtied by its own history.
        """
        self._recorder.drain()
        forest = StabilityTreeBuilder(
            tie_break=self._tie_break, distance=self._distance
        ).build(self._overlay.snapshot())
        self._engine.bootstrap(forest)
        self._mirror.adopt(self._overlay)
        self._full_rebuilds += 1

    @hot_path
    def refresh(self) -> TreeDelta:
        """Drain the overlay delta stream and repair the tree accordingly.

        Returns the applied :class:`TreeDelta` (empty when nothing relevant
        happened), so callers can log or assert on the repair traffic.
        """
        overlay = self._overlay
        raw = self._recorder.drain()
        if raw.is_empty:
            return TreeDelta()

        # Membership: net joins/leaves relative to what the engine holds.
        departed = frozenset(p for p in raw.departed if p in self._engine)
        joined = {
            p: lifetime_of(overlay.peer(p))
            for p in raw.joined
            if p in overlay and (p in departed or p not in self._engine)
        }

        # Fold the delta into the shared directed mirror; its key set is
        # exactly the alive peers whose adjacency may have changed.
        recheck = self._mirror.apply(raw, overlay)

        # Re-derive the preferred parent of every possibly-affected peer
        # with the snapshot builder's rule; only actual changes are applied.
        # The overlay's spatial index, when owned, doubles as the coordinate
        # source -- the same structure the selection fast paths query --
        # so the geometric tie-breaks never walk the overlay's peer map.
        index = overlay.index
        coordinates_of = (
            None if index is not None else (lambda n: overlay.peer(n).coordinates)
        )
        lifetimes = _LifetimeView(self._engine, joined)
        reparented: Dict[int, Optional[int]] = {}
        for peer_id in recheck:
            adjacency = self._mirror.adjacency(peer_id)
            parent = choose_preferred_parent(
                peer_id,
                adjacency,
                lifetimes,
                tie_break=self._tie_break,
                coordinates_of=coordinates_of,
                distance=self._distance,
                index=index,
            )
            if peer_id in joined:
                if parent is not None:
                    reparented[peer_id] = parent
                continue
            # Compare against the link as it will stand *after* the delta's
            # departure phase: removing a departed parent orphans the child,
            # so a link onto a departed-and-rejoined id must be re-issued
            # even though the pre-delta parent value looks unchanged.
            current_parent = self._engine.parent(peer_id)
            if current_parent in departed:
                current_parent = None
            if parent != current_parent:
                reparented[peer_id] = parent

        delta = TreeDelta(joined=joined, departed=departed, reparented=reparented)
        if not delta.is_empty:
            self._engine.apply(delta)
        return delta


class OverlayConnectivityFeed:
    """Keeps an :class:`IncrementalConnectivity` in sync with a live overlay.

    Subscribes to the overlay's delta stream and mirrors the *directed*
    selection edges of touched peers into the tracker (the undirected
    closure has the same components), so a connectivity query after a
    membership event costs the tracker's union/rebuild work instead of a
    full topology snapshot plus graph traversal per event.  This is the
    glue ablation A4 and the churn experiments query between events; it
    also owns the one subtle delta-stream corner the tracker itself cannot
    see -- restoring the incoming edges of a peer that left and rejoined
    inside a single sync window.
    """

    def __init__(self, overlay: OverlayNetwork) -> None:
        self._overlay = overlay
        self._recorder = overlay.delta_stream()
        self._mirror = DirectedSelectionMirror()
        self._mirror.adopt(overlay)
        self.tracker = IncrementalConnectivity()
        for peer_id in overlay.peer_ids:
            self.tracker.add_node(peer_id)
        for peer_id in overlay.peer_ids:
            for target in self._mirror.selected(peer_id):
                self.tracker.add_edge(peer_id, target)
        self._recorder.drain()

    @hot_path
    def sync(self) -> None:
        """Fold the overlay changes since the last sync into the tracker."""
        delta = self._recorder.drain()
        if delta.is_empty:
            return
        for peer_id in delta.departed:
            if peer_id in self.tracker:
                self.tracker.remove_node(peer_id)
        diffs = self._mirror.apply(delta, self._overlay)
        for peer_id in diffs:
            if peer_id not in self.tracker:
                self.tracker.add_node(peer_id)
        for peer_id, (gained, lost) in diffs.items():
            for target in gained:
                self.tracker.add_edge(peer_id, target)
            for target in lost:
                # Already gone when the target departed (remove_node drops
                # incident edges); remove_edge is idempotent.
                self.tracker.remove_edge(peer_id, target)
        for peer_id in delta.departed:
            if peer_id not in self.tracker:
                continue
            # Leave-then-rejoin inside one window: remove_node dropped the
            # incoming edges of selectors whose selection is net-unchanged
            # (empty diff), so restore them from the mirror's reverse index.
            for selector in self._mirror.selectors(peer_id):
                self.tracker.add_edge(selector, peer_id)

    def is_connected(self) -> bool:
        """Sync, then ask the tracker."""
        self.sync()
        return self.tracker.is_connected()


class IncrementalConnectivity:
    """Connectivity of a dynamic graph: union-find plus epoch rebuilds.

    Node and edge *additions* are folded into the union-find structure on
    the fly (near-constant amortised time), so pure-growth phases -- the
    paper's insertion procedure -- never pay more than the union cost.
    *Deletions* only mark the epoch dirty; the structure is rebuilt from the
    surviving edge set once per batch of deletions, at the next query,
    instead of once per event.  Edges are directed pairs as given (the
    overlay's selection edges); connectivity is judged on the undirected
    closure, which has the same components.
    """

    def __init__(self) -> None:
        self._nodes: Set[int] = set()
        self._edges: Set[Tuple[int, int]] = set()
        self._incident: Dict[int, Set[Tuple[int, int]]] = {}
        self._uf_parent: Dict[int, int] = {}
        self._uf_rank: Dict[int, int] = {}
        self._components = 0
        self._dirty = False
        self._rebuilds = 0

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    @hot_path
    def add_node(self, node: int) -> None:
        """Track a new isolated node."""
        if node in self._nodes:
            raise ValueError(f"node {node} is already tracked")
        self._nodes.add(node)
        self._incident[node] = set()
        self._uf_parent[node] = node
        self._uf_rank[node] = 0
        self._components += 1

    @hot_path
    def remove_node(self, node: int) -> None:
        """Forget a node and every edge incident to it (marks the epoch dirty)."""
        if node not in self._nodes:
            raise KeyError(f"node {node} is not tracked")
        incident = self._incident.pop(node)
        if incident:
            for edge in incident:
                self._edges.discard(edge)
                other = edge[1] if edge[0] == node else edge[0]
                other_incident = self._incident.get(other)
                if other_incident:
                    other_incident.discard(edge)
            self._dirty = True
        elif not self._dirty:
            # An isolated node is its own component in the exact structure.
            self._components -= 1
        self._nodes.discard(node)
        self._uf_parent.pop(node, None)
        self._uf_rank.pop(node, None)

    @hot_path
    def add_edge(self, source: int, target: int) -> None:
        """Add one (directed) edge; unioned immediately unless the epoch is dirty."""
        if source == target:
            return
        if source not in self._nodes or target not in self._nodes:
            missing = source if source not in self._nodes else target
            raise KeyError(f"node {missing} is not tracked")
        edge = (source, target)
        if edge in self._edges:
            return
        self._edges.add(edge)
        self._incident[source].add(edge)
        self._incident[target].add(edge)
        if not self._dirty and self._union(source, target):
            self._components -= 1

    @hot_path
    def remove_edge(self, source: int, target: int) -> None:
        """Remove one (directed) edge if present (marks the epoch dirty)."""
        edge = (source, target)
        if edge not in self._edges:
            return
        self._edges.discard(edge)
        self._incident[source].discard(edge)
        self._incident[target].discard(edge)
        self._dirty = True

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, node: int) -> bool:
        return node in self._nodes

    @property
    def node_count(self) -> int:
        """Number of tracked nodes."""
        return len(self._nodes)

    @property
    def rebuilds(self) -> int:
        """Epoch rebuilds performed so far (one per deletion batch queried)."""
        return self._rebuilds

    def component_count(self) -> int:
        """Number of connected components (rebuilding first if dirty)."""
        self._ensure_clean()
        return self._components

    def is_connected(self) -> bool:
        """``True`` when the graph is empty or one connected component."""
        self._ensure_clean()
        return self._components <= 1

    def same_component(self, first: int, second: int) -> bool:
        """``True`` when both tracked nodes lie in one component."""
        self._ensure_clean()
        return self._find(first) == self._find(second)

    # ------------------------------------------------------------------
    # Internal union-find helpers
    # ------------------------------------------------------------------
    def _ensure_clean(self) -> None:
        if not self._dirty:
            return
        self._uf_parent = {node: node for node in self._nodes}
        self._uf_rank = {node: 0 for node in self._nodes}
        self._components = len(self._nodes)
        for source, target in self._edges:
            if self._union(source, target):
                self._components -= 1
        self._dirty = False
        self._rebuilds += 1

    def _find(self, node: int) -> int:
        parent = self._uf_parent
        root = node
        while parent[root] != root:
            root = parent[root]
        while parent[node] != root:
            parent[node], node = root, parent[node]
        return root

    def _union(self, first: int, second: int) -> bool:
        root_a, root_b = self._find(first), self._find(second)
        if root_a == root_b:
            return False
        rank = self._uf_rank
        if rank[root_a] < rank[root_b]:
            root_a, root_b = root_b, root_a
        self._uf_parent[root_b] = root_a
        if rank[root_a] == rank[root_b]:
            rank[root_a] += 1
        return True
