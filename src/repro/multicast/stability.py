"""Stability-oriented multicast trees (Section 3 of the paper).

Setting: every peer ``P`` knows the time ``T(P)`` at which it will leave the
system (cloud lease expiry, sensor battery exhaustion).  The first virtual
coordinate of every peer is set to ``T(P)``, the overlay is built with the
Orthogonal Hyperplanes selection method, and every peer periodically selects
a *preferred tree neighbour*: an overlay neighbour ``Q`` with
``T(Q) > T(P)`` (the paper's experiments pick the one with the largest
``T(Q)``).  Peers with no longer-lived neighbour select nobody.

The preferred-neighbour links, read as child -> parent edges, form a tree
rooted at the peer with the largest lifetime in which lifetimes strictly
decrease towards the leaves.  Consequently a departing peer is always a leaf
of the remaining tree and departures never disconnect the multicast tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.geometry.distance import DistanceFunction, get_distance

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.geometry.index import SpatialIndex
from repro.multicast.tree import MulticastTree, TreeValidationError
from repro.overlay.peer import PeerInfo
from repro.overlay.topology import TopologySnapshot

__all__ = [
    "PreferredNeighbourForest",
    "StabilityTreeBuilder",
    "build_stability_tree",
    "choose_preferred_parent",
    "lifetime_of",
    "peer_lifetime",
]


def lifetime_of(info: PeerInfo) -> float:
    """Departure time ``T(P)`` read from one peer's metadata.

    Uses the explicit ``lifetime`` attribute when present and falls back to
    the first coordinate, which is where Section 3 embeds the lifetime.
    """
    if info.lifetime is not None:
        return float(info.lifetime)
    return float(info.coordinates[0])


def peer_lifetime(topology: TopologySnapshot, peer_id: int) -> float:
    """Departure time ``T(P)`` of a peer of a topology snapshot."""
    return lifetime_of(topology.peers[peer_id])


def choose_preferred_parent(
    peer_id: int,
    neighbours: Iterable[int],
    lifetimes: Mapping[int, float],
    *,
    tie_break: str = "largest-lifetime",
    coordinates_of: Optional[Callable[[int], Sequence[float]]] = None,
    distance: Optional[DistanceFunction] = None,
    index: "Optional[SpatialIndex]" = None,
) -> Optional[int]:
    """The Section 3 preferred-neighbour rule for one peer.

    This is the single place the rule lives: the snapshot-batch
    :class:`StabilityTreeBuilder` and the event-driven
    :class:`repro.multicast.incremental.StabilityTreeMaintainer` both call
    it, so the two paths provably pick the identical parent for identical
    inputs (the seeded equivalence tests rely on exactly this).

    The geometric data (only consulted by the ``"closest"`` tie-break) comes
    from ``coordinates_of`` or, when the caller owns one, directly from a
    :class:`~repro.geometry.index.SpatialIndex` over the population --
    :meth:`~repro.geometry.index.SpatialIndex.point` serves the lookup, so a
    live consumer like the tree maintainer reads coordinates from the same
    structure the selection fast paths query instead of re-deriving a
    per-peer view of the overlay.  An explicit ``coordinates_of`` wins when
    both are given; ``distance`` is required either way for ``"closest"``.
    """
    own_lifetime = lifetimes[peer_id]
    candidates = [n for n in neighbours if lifetimes[n] > own_lifetime]
    if not candidates:
        return None
    if tie_break == StabilityTreeBuilder.LARGEST_LIFETIME:
        return max(candidates, key=lambda n: (lifetimes[n], -n))
    if tie_break == StabilityTreeBuilder.SMALLEST_ABOVE:
        return min(candidates, key=lambda n: (lifetimes[n], n))
    if tie_break != StabilityTreeBuilder.CLOSEST:
        raise ValueError(
            f"unknown tie_break {tie_break!r}; expected one of "
            f"{StabilityTreeBuilder.TIE_BREAKS}"
        )
    if coordinates_of is None and index is not None:
        coordinates_of = index.point
    if coordinates_of is None or distance is None:
        raise ValueError(
            "the 'closest' tie_break needs coordinates_of (or an index) and distance"
        )
    own_coordinates = coordinates_of(peer_id)
    return min(candidates, key=lambda n: (distance(own_coordinates, coordinates_of(n)), n))


@dataclass(frozen=True)
class PreferredNeighbourForest:
    """The preferred-neighbour links of every peer, plus their lifetimes.

    ``preferred[p]`` is the overlay neighbour ``p`` chose (its tree parent),
    or ``None`` when ``p`` has no overlay neighbour outliving it.  The paper
    checks -- and this class lets callers check -- that the links form a
    single tree rooted at the longest-lived peer, with lifetimes decreasing
    towards the leaves.
    """

    preferred: Mapping[int, Optional[int]]
    lifetimes: Mapping[int, float]

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def peer_count(self) -> int:
        """Number of peers covered by the forest."""
        return len(self.preferred)

    def roots(self) -> List[int]:
        """Peers that selected no preferred neighbour, sorted."""
        return sorted(peer for peer, parent in self.preferred.items() if parent is None)

    def is_single_tree(self) -> bool:
        """``True`` when the links form one tree covering every peer.

        Because every link points from a peer to a strictly longer-lived
        peer, the link graph can never contain a cycle; it is therefore a
        forest, and it is a single tree exactly when only one peer has no
        preferred neighbour.
        """
        if not self.preferred:
            return True
        return len(self.roots()) == 1

    def to_multicast_tree(self) -> MulticastTree:
        """The forest as a :class:`MulticastTree` (requires a single tree).

        The root is the unique peer without a preferred neighbour -- by
        construction the peer with the largest lifetime.
        """
        roots = self.roots()
        if len(roots) != 1:
            raise TreeValidationError(
                f"the preferred-neighbour links form {len(roots)} trees, not one; "
                "roots: " + ", ".join(str(r) for r in roots[:10])
            )
        return MulticastTree(roots[0], dict(self.preferred))

    # ------------------------------------------------------------------
    # Paper invariants
    # ------------------------------------------------------------------
    def root_has_largest_lifetime(self) -> bool:
        """``True`` when the longest-lived peer selected no preferred neighbour.

        For a single tree this says the root is the longest-lived peer of the
        whole system, which is how the paper roots the tree (it cannot select
        anyone because no neighbour outlives it).
        """
        if not self.preferred:
            return True
        longest_lived = max(self.preferred, key=lambda peer: self.lifetimes[peer])
        return self.preferred[longest_lived] is None

    def parents_outlive_children(self) -> bool:
        """``True`` when ``T(parent) > T(child)`` for every link (the paper's check)."""
        for child, parent in self.preferred.items():
            if parent is None:
                continue
            if not self.lifetimes[parent] > self.lifetimes[child]:
                return False
        return True

    def lifetime_violations(self) -> List[Tuple[int, int]]:
        """Links ``(child, parent)`` whose parent does not outlive the child."""
        return sorted(
            (child, parent)
            for child, parent in self.preferred.items()
            if parent is not None and not self.lifetimes[parent] > self.lifetimes[child]
        )


class StabilityTreeBuilder:
    """Builds the Section 3 preferred-neighbour forest over a topology snapshot.

    Parameters
    ----------
    tie_break:
        How a peer chooses among its longer-lived overlay neighbours:

        * ``"largest-lifetime"`` (paper's experiments): the neighbour with the
          largest ``T(Q)``.
        * ``"smallest-above"``: the neighbour whose lifetime is the smallest
          one still exceeding ``T(P)`` (keeps parents "just above" their
          children, which shortens lifetime gaps but deepens the tree).
        * ``"closest"``: the geometrically closest longer-lived neighbour.
    distance:
        Distance used by the ``"closest"`` tie-break.
    """

    LARGEST_LIFETIME = "largest-lifetime"
    SMALLEST_ABOVE = "smallest-above"
    CLOSEST = "closest"
    TIE_BREAKS = (LARGEST_LIFETIME, SMALLEST_ABOVE, CLOSEST)

    def __init__(
        self,
        *,
        tie_break: str = LARGEST_LIFETIME,
        distance: "DistanceFunction | str" = "l2",
    ) -> None:
        if tie_break not in self.TIE_BREAKS:
            raise ValueError(
                f"unknown tie_break {tie_break!r}; expected one of {self.TIE_BREAKS}"
            )
        self._tie_break = tie_break
        self._distance = get_distance(distance) if isinstance(distance, str) else distance

    def build(self, topology: TopologySnapshot) -> PreferredNeighbourForest:
        """Select the preferred tree neighbour of every peer."""
        lifetimes = {peer_id: peer_lifetime(topology, peer_id) for peer_id in topology.peers}
        if len(set(lifetimes.values())) != len(lifetimes):
            raise ValueError(
                "peer lifetimes must be pairwise distinct (the paper breaks ties using "
                "other peer-specific properties before running the algorithm)"
            )
        preferred: Dict[int, Optional[int]] = {}
        for peer_id in topology.peers:
            preferred[peer_id] = self._choose_parent(topology, lifetimes, peer_id)
        return PreferredNeighbourForest(preferred=preferred, lifetimes=lifetimes)

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _choose_parent(
        self,
        topology: TopologySnapshot,
        lifetimes: Mapping[int, float],
        peer_id: int,
    ) -> Optional[int]:
        return choose_preferred_parent(
            peer_id,
            topology.adjacency[peer_id],
            lifetimes,
            tie_break=self._tie_break,
            coordinates_of=lambda n: topology.peers[n].coordinates,
            distance=self._distance,
        )


def build_stability_tree(
    topology: TopologySnapshot,
    *,
    tie_break: str = StabilityTreeBuilder.LARGEST_LIFETIME,
) -> MulticastTree:
    """Convenience wrapper: build the Section 3 tree and return it directly.

    Raises :class:`~repro.multicast.tree.TreeValidationError` when the
    preferred links do not form a single tree (e.g. the overlay is
    disconnected in lifetime order).
    """
    forest = StabilityTreeBuilder(tie_break=tie_break).build(topology)
    return forest.to_multicast_tree()
