"""Data dissemination over a multicast tree and departure (churn) analysis.

Once a tree is constructed, multicast data flows from the root towards the
leaves: every peer forwards each datum to its children, so disseminating one
datum costs exactly ``N - 1`` messages and the delivery latency of a peer is
its depth.  :func:`disseminate` reports those quantities.

Section 3's stability claim is about what happens when peers leave:
if departures happen in lifetime order and the tree was built with the
preferred-neighbour rule, every departing peer is a leaf of the remaining
tree, so no remaining peer ever loses its path to the root.
:func:`simulate_departures` replays an arbitrary departure schedule against
an arbitrary tree and counts how often that guarantee is violated, which is
how the churn ablation compares the stability tree with lifetime-oblivious
trees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set, Tuple

from repro.multicast.tree import MulticastTree

__all__ = [
    "DisseminationReport",
    "DepartureReport",
    "TreeHealthSample",
    "disseminate",
    "simulate_departures",
    "departure_health_series",
]


@dataclass(frozen=True)
class DisseminationReport:
    """Cost of pushing one datum from the root to every peer of a tree."""

    messages_sent: int
    delivered_peers: int
    tree_size: int
    max_hops: int
    average_hops: float

    @property
    def delivery_ratio(self) -> float:
        """Delivered peers over tree size (1.0 for a well-formed tree)."""
        if self.tree_size == 0:
            return 1.0
        return self.delivered_peers / self.tree_size


def disseminate(tree: MulticastTree) -> DisseminationReport:
    """Simulate pushing one datum down the tree and measure its cost."""
    depths = tree.depths()
    non_root = [depth for node, depth in depths.items() if node != tree.root]
    return DisseminationReport(
        messages_sent=len(non_root),
        delivered_peers=len(depths),
        tree_size=tree.size,
        max_hops=max(depths.values()) if depths else 0,
        average_hops=(sum(non_root) / len(non_root)) if non_root else 0.0,
    )


@dataclass(frozen=True)
class DepartureReport:
    """What happened when peers left the system one by one.

    Attributes
    ----------
    departures:
        Number of departures simulated.
    non_leaf_departures:
        Departures of peers that still had children in the tree -- each one
        is a disconnection event (the children lose their path to the root).
    orphaned_peer_events:
        Total number of (still present) peers that were below a departing
        non-leaf peer, summed over all disconnection events; the "blast
        radius" of the instability.
    disconnecting_peers:
        The ids of the departing peers that caused disconnections.
    """

    departures: int
    non_leaf_departures: int
    orphaned_peer_events: int
    disconnecting_peers: Tuple[int, ...]

    @property
    def is_stable(self) -> bool:
        """``True`` when no departure ever disconnected the tree."""
        return self.non_leaf_departures == 0


def simulate_departures(
    tree: MulticastTree,
    departure_order: Sequence[int],
    *,
    stop_at_root: bool = True,
) -> DepartureReport:
    """Replay a departure schedule against a tree and count disconnections.

    Parameters
    ----------
    tree:
        The multicast tree being stressed.
    departure_order:
        Peer ids in the order they leave.  Peers not present in the tree are
        ignored (they may have joined later or belong to another group).
    stop_at_root:
        When ``True`` (default) the simulation stops once the root departs:
        after that the multicast session is over and counting further
        disconnections would be meaningless.
    """
    present: Set[int] = set(tree.nodes())
    non_leaf_departures = 0
    orphaned = 0
    departures = 0
    disconnecting: List[int] = []

    for peer_id in departure_order:
        if peer_id not in present:
            continue
        departures += 1
        children_present = [
            child for child in tree.children(peer_id) if child in present
        ]
        if children_present:
            non_leaf_departures += 1
            disconnecting.append(peer_id)
            orphaned += sum(
                len(tree.subtree_nodes(child) & present) for child in children_present
            )
        present.discard(peer_id)
        if stop_at_root and peer_id == tree.root:
            break

    return DepartureReport(
        departures=departures,
        non_leaf_departures=non_leaf_departures,
        orphaned_peer_events=orphaned,
        disconnecting_peers=tuple(disconnecting),
    )


@dataclass(frozen=True)
class TreeHealthSample:
    """One point of a "tree health over time" series.

    Emitted after a membership event by the event-driven maintenance engine
    (:class:`repro.multicast.incremental.TreeMaintenanceEngine`) and by
    :func:`departure_health_series`; the churn ablations plot these instead
    of re-deriving every quantity from a fresh tree per event.
    """

    event: int
    size: int
    roots: int
    height: int
    maximum_degree: int
    leaf_count: int

    @property
    def is_single_tree(self) -> bool:
        """``True`` when the maintained forest is one tree covering every peer."""
        return self.roots <= 1


def departure_health_series(
    tree: MulticastTree,
    departure_order: Sequence[int],
    *,
    sample_every: int = 1,
) -> Tuple[List[TreeHealthSample], DepartureReport]:
    """Replay departures via the repair API, sampling tree health as it shrinks.

    The offline counterpart of the streaming engine: a working copy of the
    tree is shrunk with :meth:`~repro.multicast.tree.MulticastTree.remove_leaf`
    (the repair API keeps children and depths exact, so each sample is one
    :meth:`~repro.multicast.tree.MulticastTree.metrics_summary` pass over the
    *remaining* tree, no reconstruction).  The replay stops at the first
    non-leaf departure -- from that point the remaining peers are no longer
    one tree and per-tree health quantities stop being well defined -- or
    when the root departs, mirroring :func:`simulate_departures`.
    """
    if sample_every < 1:
        raise ValueError("sample_every must be at least 1")
    working = MulticastTree(tree.root, tree.parent_map())
    samples: List[TreeHealthSample] = []
    departures = 0
    disconnecting: List[int] = []
    orphaned = 0

    def sample(event: int) -> None:
        summary = working.metrics_summary()
        samples.append(
            TreeHealthSample(
                event=event,
                size=working.size,
                roots=1,
                height=int(summary["height"]),
                maximum_degree=int(summary["max_degree"]),
                leaf_count=int(summary["leaves"]),
            )
        )

    for peer_id in departure_order:
        if peer_id not in working:
            continue
        departures += 1
        if peer_id == working.root:
            break
        if not working.is_leaf(peer_id):
            disconnecting.append(peer_id)
            orphaned += len(working.subtree_nodes(peer_id)) - 1
            break
        working.remove_leaf(peer_id)
        if departures % sample_every == 0:
            sample(departures)

    report = DepartureReport(
        departures=departures,
        non_leaf_departures=len(disconnecting),
        orphaned_peer_events=orphaned,
        disconnecting_peers=tuple(disconnecting),
    )
    return samples, report
