"""Multicast tree construction -- the paper's primary contribution.

Two constructions are provided, both fully decentralized and both embedded
into the geometric P2P overlay of :mod:`repro.overlay`:

* :mod:`repro.multicast.space_partition` -- Section 2: responsibility-zone
  splitting along orthant regions; reaches every peer with ``N - 1``
  messages and bounds the per-peer tree degree by ``2^D``.
* :mod:`repro.multicast.stability` -- Section 3: lifetime-aware preferred
  neighbours; departures never disconnect the tree.

Supporting modules: the common tree model (:mod:`repro.multicast.tree`),
responsibility-zone algebra (:mod:`repro.multicast.zones`), dissemination and
churn analysis (:mod:`repro.multicast.dissemination`), the baselines the
constructions are compared against (:mod:`repro.multicast.baselines`), and
the event-driven maintenance layer (:mod:`repro.multicast.incremental`) that
keeps the Section 3 tree repaired in place under churn instead of rebuilding
it from topology snapshots.
"""

from repro.multicast.tree import MulticastTree, TreeValidationError
from repro.multicast.zones import (
    child_zone,
    initial_zone,
    uncovered_points,
    zone_excludes,
    zones_are_disjoint,
)
from repro.multicast.space_partition import (
    ConstructionResult,
    PickStrategy,
    SpacePartitionTreeBuilder,
    build_space_partition_tree,
)
from repro.multicast.stability import (
    PreferredNeighbourForest,
    StabilityTreeBuilder,
    build_stability_tree,
    peer_lifetime,
)
from repro.multicast.dissemination import (
    DepartureReport,
    DisseminationReport,
    TreeHealthSample,
    departure_health_series,
    disseminate,
    simulate_departures,
)
from repro.multicast.incremental import (
    IncrementalConnectivity,
    OverlayConnectivityFeed,
    StabilityTreeMaintainer,
    TreeDelta,
    TreeMaintenanceEngine,
)
from repro.multicast.baselines import (
    FloodingResult,
    bfs_tree,
    flood_multicast,
    random_parent_tree,
    random_spanning_tree,
    sequential_unicast_tree,
)

__all__ = [
    "MulticastTree",
    "TreeValidationError",
    "initial_zone",
    "child_zone",
    "zones_are_disjoint",
    "zone_excludes",
    "uncovered_points",
    "PickStrategy",
    "ConstructionResult",
    "SpacePartitionTreeBuilder",
    "build_space_partition_tree",
    "PreferredNeighbourForest",
    "StabilityTreeBuilder",
    "build_stability_tree",
    "peer_lifetime",
    "DisseminationReport",
    "DepartureReport",
    "TreeHealthSample",
    "disseminate",
    "simulate_departures",
    "departure_health_series",
    "TreeDelta",
    "TreeMaintenanceEngine",
    "StabilityTreeMaintainer",
    "IncrementalConnectivity",
    "OverlayConnectivityFeed",
    "FloodingResult",
    "flood_multicast",
    "bfs_tree",
    "random_spanning_tree",
    "random_parent_tree",
    "sequential_unicast_tree",
]
