"""Schema validation for the machine-readable benchmark records.

The weekly slow benchmarks persist their headline numbers as
``benchmarks/results/BENCH_*.json`` (ROADMAP, PR 5) so the perf trajectory
is comparable across PRs.  A malformed record -- a renamed key, a string
where a number belongs -- would silently break that comparability, so CI
validates every record against the small JSON schema below and fails fast.

The validator interprets the schema subset it needs (``type``,
``required``, ``properties``, ``minimum`` / ``exclusiveMinimum``,
``minLength``) directly, so it runs in environments without the
``jsonschema`` package; the schema dict itself is standard JSON Schema and
works unchanged under a full validator.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Sequence, Union

__all__ = [
    "BENCH_RECORD_SCHEMA",
    "validate_bench_record",
    "validate_bench_directory",
]

#: The contract every BENCH_*.json record must satisfy.  Extra keys are
#: welcome (records carry per-scenario detail); the five required ones are
#: what the cross-PR trajectory tooling keys on.  Three keys are *typed
#: optional*: when a record carries them they must be well-formed, but a
#: record may omit them.  ``peak_rss_mb`` (memory headroom, part of the
#: road-to-100k trajectory) is a positive number when present;
#: ``p99_latency_s`` (tail dissemination latency under the real-network
#: model) a non-negative number; ``bytes_sent`` (the run's wire volume
#: under the byte estimator) a non-negative integer.
BENCH_RECORD_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": [
        "scenario",
        "peer_count",
        "wall_seconds",
        "speedup",
        "speedup_floor",
    ],
    "properties": {
        "scenario": {"type": "string", "minLength": 1},
        "peer_count": {"type": "integer", "minimum": 1},
        "wall_seconds": {"type": "number", "exclusiveMinimum": 0},
        "speedup": {"type": "number", "exclusiveMinimum": 0},
        "speedup_floor": {"type": "number", "exclusiveMinimum": 0},
        "peak_rss_mb": {"type": "number", "exclusiveMinimum": 0},
        "p99_latency_s": {"type": "number", "minimum": 0},
        "bytes_sent": {"type": "integer", "minimum": 0},
    },
}

_TYPES = {
    "object": dict,
    "string": str,
    "number": (int, float),
    "integer": int,
}


def _check_value(value: Any, schema: Dict[str, Any], where: str) -> List[str]:
    errors: List[str] = []
    expected = schema.get("type")
    if expected is not None:
        python_type = _TYPES[expected]
        if isinstance(value, bool) and expected in {"number", "integer"}:
            errors.append(f"{where}: expected a {expected}, got a bool")
            return errors
        if not isinstance(value, python_type):
            errors.append(
                f"{where}: expected a {expected}, got {type(value).__name__}"
            )
            return errors
    if "minLength" in schema and len(value) < schema["minLength"]:
        errors.append(f"{where}: shorter than minLength {schema['minLength']}")
    if "minimum" in schema and value < schema["minimum"]:
        errors.append(f"{where}: {value} is below minimum {schema['minimum']}")
    if "exclusiveMinimum" in schema and value <= schema["exclusiveMinimum"]:
        errors.append(
            f"{where}: {value} must be strictly greater than "
            f"{schema['exclusiveMinimum']}"
        )
    return errors


def validate_bench_record(record: Any, *, label: str = "record") -> List[str]:
    """Validate one decoded record; returns human-readable error strings.

    ``label`` prefixes every message -- the directory walker passes
    ``record[i]`` for the i-th entry of a list-shaped file, so an error
    always names exactly which record (and, one level up, which file) it
    came from.
    """
    errors = _check_value(record, BENCH_RECORD_SCHEMA, label)
    if errors:
        return errors
    for key in BENCH_RECORD_SCHEMA["required"]:
        if key not in record:
            errors.append(f"{label}: required key '{key}' is missing")
    for key, schema in BENCH_RECORD_SCHEMA["properties"].items():
        if key in record:
            errors.extend(_check_value(record[key], schema, f"{label}: {key}"))
    return errors


def validate_bench_directory(paths: Sequence[Union[str, Path]]) -> List[str]:
    """Validate every ``BENCH_*.json`` under the given files/directories.

    A file may hold one record object or a list of them.  Returns
    ``path: record[...]: message`` strings, so a failing key is traceable
    to its file and record index; an empty list means every record is
    well-formed.  A directory with no records is *not* an error (a fresh
    clone has none until the weekly job runs).
    """
    errors: List[str] = []
    records: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            records.extend(sorted(path.glob("BENCH_*.json")))
        else:
            records.append(path)
    for record_path in records:
        try:
            decoded = json.loads(record_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            errors.append(f"{record_path}: unreadable record ({error})")
            continue
        if isinstance(decoded, list):
            for index, entry in enumerate(decoded):
                errors.extend(
                    f"{record_path}: {message}"
                    for message in validate_bench_record(
                        entry, label=f"record[{index}]"
                    )
                )
        else:
            errors.extend(
                f"{record_path}: {message}"
                for message in validate_bench_record(decoded)
            )
    return errors
