"""The lint driver: walk paths, run every rule, render the report.

Importable surface (used by the ``lint`` CLI subcommand and the pytest
self-check) plus the ``python -m repro.analysis`` argument parsing.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.analysis.bench_schema import validate_bench_directory
from repro.analysis.checkers import ALL_RULES
from repro.analysis.core import PRAGMA_RULE_ID, Rule, Violation, analyze_file

__all__ = ["all_rules", "iter_python_files", "lint_paths", "main"]


def all_rules() -> Tuple[Rule, ...]:
    """Every registered contract rule, in reporting order."""
    return ALL_RULES


def iter_python_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    seen = set()
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            candidates = []
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                files.append(candidate)
    return files


def lint_paths(
    paths: Sequence[Union[str, Path]], *, rules: Optional[Sequence[Rule]] = None
) -> List[Violation]:
    """Analyze every Python file under ``paths``; returns all violations."""
    active = tuple(rules) if rules is not None else ALL_RULES
    violations: List[Violation] = []
    for path in iter_python_files(paths):
        violations.extend(analyze_file(path, active))
    return violations


def _render_rules() -> str:
    lines = [f"{PRAGMA_RULE_ID}  pragma-hygiene: suppressions must carry reason=..."]
    for rule in ALL_RULES:
        lines.append(f"{rule.rule_id}  {rule.name}: {rule.invariant}")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.analysis`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "reprolint: mechanically enforce the delta-stream, index-sync, "
            "byte-identity and determinism contracts (exit 0 iff clean)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule id and the invariant it guards, then exit",
    )
    parser.add_argument(
        "--bench-schema",
        nargs="+",
        metavar="PATH",
        help=(
            "additionally validate BENCH_*.json benchmark records under "
            "these files/directories against the record schema"
        ),
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the exit status (0 iff everything is clean)."""
    args = build_parser().parse_args(list(argv) if argv is not None else None)
    if args.list_rules:
        print(_render_rules())
        return 0
    violations = lint_paths(args.paths)
    failed = bool(violations)
    if args.format == "json":
        print(
            json.dumps(
                [
                    {
                        "rule": violation.rule_id,
                        "path": violation.path,
                        "line": violation.line,
                        "message": violation.message,
                    }
                    for violation in violations
                ],
                indent=2,
            )
        )
    else:
        for violation in violations:
            print(violation.render())
        count = len(violations)
        if count:
            print(f"reprolint: {count} contract violation{'s' if count != 1 else ''}")
        else:
            print("reprolint: clean")
    if args.bench_schema:
        errors = validate_bench_directory(args.bench_schema)
        for error in errors:
            print(f"bench-schema: {error}", file=sys.stderr)
        if errors:
            failed = True
        else:
            print("bench-schema: clean")
    return 1 if failed else 0
