"""The lint driver: walk paths, run every rule, render the report.

Importable surface (used by the ``lint`` CLI subcommand and the pytest
self-check) plus the ``python -m repro.analysis`` argument parsing.

Exit-code contract (shared by ``python -m repro.analysis`` and the
``lint`` CLI subcommand)::

    0  clean -- no findings after --select/--ignore filtering
    1  findings -- contract violations and/or bench-schema errors
    2  parse-or-config error -- a file failed to parse (RPL999 survived
       filtering) or the invocation itself is invalid (unknown rule id,
       bad flag value)
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import FrozenSet, List, Optional, Sequence, Tuple, Union

from repro.analysis.bench_schema import validate_bench_directory
from repro.analysis.checkers import ALL_RULES
from repro.analysis.core import (
    PARSE_RULE_ID,
    PRAGMA_RULE_ID,
    Rule,
    Violation,
    analyze_project,
)
from repro.analysis.sarif import render_sarif

__all__ = [
    "all_rules",
    "iter_python_files",
    "lint_paths",
    "resolve_selection",
    "main",
]


def all_rules() -> Tuple[Rule, ...]:
    """Every registered contract rule, in reporting order."""
    return ALL_RULES


def known_rule_ids() -> FrozenSet[str]:
    """Every id ``--select``/``--ignore`` accepts (rules + framework ids)."""
    return frozenset(
        {rule.rule_id for rule in ALL_RULES} | {PRAGMA_RULE_ID, PARSE_RULE_ID}
    )


def iter_python_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    seen = set()
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            candidates = []
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                files.append(candidate)
    return files


def lint_paths(
    paths: Sequence[Union[str, Path]], *, rules: Optional[Sequence[Rule]] = None
) -> List[Violation]:
    """Analyze every Python file under ``paths`` against one call graph.

    All files are parsed once and share a single whole-program
    :class:`~repro.analysis.flow.FlowAnalysis`, which is what makes the
    RPL001/RPL002 obligations and RPL005 reachability interprocedural
    across module boundaries.
    """
    active = tuple(rules) if rules is not None else ALL_RULES
    return analyze_project(iter_python_files(paths), active)


def resolve_selection(
    select: Optional[Sequence[str]], ignore: Optional[Sequence[str]]
) -> Tuple[Tuple[Rule, ...], FrozenSet[str]]:
    """Turn ``--select``/``--ignore`` values into (active rules, kept ids).

    Values are comma-separable and repeatable.  Raises :class:`ValueError`
    on an id that is neither a registered rule nor a framework id
    (RPL000 pragma hygiene, RPL999 parse failure).
    """
    known = known_rule_ids()

    def expand(values: Optional[Sequence[str]], flag: str) -> FrozenSet[str]:
        ids = set()
        for value in values or []:
            for piece in value.split(","):
                piece = piece.strip().upper()
                if not piece:
                    continue
                if piece not in known:
                    choices = ", ".join(sorted(known))
                    raise ValueError(
                        f"unknown rule id '{piece}' for {flag} (choose from {choices})"
                    )
                ids.add(piece)
        return frozenset(ids)

    selected = expand(select, "--select") or known
    kept = selected - expand(ignore, "--ignore")
    active = tuple(rule for rule in ALL_RULES if rule.rule_id in kept)
    return active, kept


def _render_rules() -> str:
    lines = [f"{PRAGMA_RULE_ID}  pragma-hygiene: suppressions must carry reason=..."]
    for rule in ALL_RULES:
        lines.append(f"{rule.rule_id}  {rule.name}: {rule.invariant}")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.analysis`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "reprolint: mechanically enforce the delta-stream, index-sync, "
            "byte-identity, determinism, hot-path complexity, purity and "
            "exception-safety contracts (exit 0 clean, 1 findings, "
            "2 parse-or-config error)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RPL00x[,RPL00y]",
        help="only run/report these rule ids (repeatable, comma-separable)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        metavar="RPL00x[,RPL00y]",
        help="drop these rule ids from the run/report (repeatable)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule id and the invariant it guards, then exit",
    )
    parser.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        metavar="S",
        help=(
            "fail (exit 1) if the analysis itself takes longer than S "
            "seconds -- the CI latency budget for the call-graph pass"
        ),
    )
    parser.add_argument(
        "--bench-schema",
        nargs="+",
        metavar="PATH",
        help=(
            "additionally validate BENCH_*.json benchmark records under "
            "these files/directories against the record schema"
        ),
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the exit status (see module docstring)."""
    args = build_parser().parse_args(list(argv) if argv is not None else None)
    if args.list_rules:
        print(_render_rules())
        return 0
    try:
        active, kept = resolve_selection(args.select, args.ignore)
    except ValueError as error:
        print(f"reprolint: {error}", file=sys.stderr)
        return 2
    started = time.perf_counter()
    violations = [
        violation
        for violation in lint_paths(args.paths, rules=active)
        if violation.rule_id in kept
    ]
    elapsed = time.perf_counter() - started
    over_budget = args.max_seconds is not None and elapsed > args.max_seconds
    failed = bool(violations)
    if args.format == "json":
        print(
            json.dumps(
                [
                    {
                        "rule": violation.rule_id,
                        "path": violation.path,
                        "line": violation.line,
                        "message": violation.message,
                    }
                    for violation in violations
                ],
                indent=2,
            )
        )
    elif args.format == "sarif":
        print(render_sarif(violations, active))
    else:
        for violation in violations:
            print(violation.render())
        count = len(violations)
        if count:
            print(f"reprolint: {count} contract violation{'s' if count != 1 else ''}")
        else:
            print("reprolint: clean")
    if args.bench_schema:
        errors = validate_bench_directory(args.bench_schema)
        for error in errors:
            print(f"bench-schema: {error}", file=sys.stderr)
        if errors:
            failed = True
        elif args.format == "text":
            print("bench-schema: clean")
    if over_budget:
        print(
            f"reprolint: analysis took {elapsed:.2f}s, over the "
            f"{args.max_seconds:.2f}s budget",
            file=sys.stderr,
        )
        failed = True
    if any(violation.rule_id == PARSE_RULE_ID for violation in violations):
        return 2
    return 1 if failed else 0
