"""The whole-program flow engine: call graph + transitive summary queries.

:class:`FlowAnalysis` parses nothing itself -- it is handed every module's
AST (the driver parses each file exactly once), builds the symbol tables,
resolves a conservative call graph, and memoizes the transitive queries the
interprocedural rules ask:

* *direct calls* to module-level functions, imported names and classes,
* ``self.`` / ``cls.`` method dispatch through the class MRO (including
  class-body method aliases),
* attribute dispatch through ``__init__``-inferred attribute types
  (``self._engine = TreeMaintenanceEngine()`` types ``self._engine``) and
  through constructor-assigned locals (``mirror = DirectedSelectionMirror()``),

and every call it cannot resolve degrades the caller to "may call
anything": the :attr:`FunctionNode.calls_unknown` flag.  Degradation is
*sound for the rules as stated* -- an unknown callee never satisfies a
notification/maintenance obligation (RPL001/RPL002 stay strict) and never
extends hot-path reachability (RPL005 only follows proven edges), so the
engine can be wrong only in the direction of asking for an explicit call.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.analysis.astutils import dotted_name, own_nodes
from repro.analysis.flow.summaries import (
    FunctionSummary,
    is_hot_marked,
    summarize_function,
)
from repro.analysis.flow.symbols import (
    ClassDecl,
    ModuleSymbols,
    build_module_symbols,
)

__all__ = ["ProjectModule", "FunctionNode", "FlowAnalysis"]

#: Builtin callables that are never project edges (kept small on purpose:
#: an unlisted builtin merely degrades to calls_unknown, it cannot create
#: a false edge).
_BUILTINS = frozenset(
    {
        "abs", "all", "any", "bool", "dict", "divmod", "enumerate", "filter",
        "float", "frozenset", "getattr", "hasattr", "hash", "id", "int",
        "isinstance", "issubclass", "iter", "len", "list", "map", "max", "min",
        "next", "object", "print", "range", "repr", "reversed", "round", "set",
        "setattr", "sorted", "str", "sum", "tuple", "type", "zip",
        "ArithmeticError", "AssertionError", "AttributeError", "Exception",
        "KeyError", "IndexError", "NotImplementedError", "OSError",
        "RuntimeError", "StopIteration", "TypeError", "ValueError",
    }
)


@dataclass(frozen=True)
class ProjectModule:
    """One module handed to the engine: its identity plus its parsed AST."""

    path: str
    module: Optional[str]
    tree: ast.Module

    @property
    def key(self) -> str:
        """Stable module key: the dotted name when known, else the path."""
        return self.module if self.module is not None else self.path


@dataclass
class FunctionNode:
    """One function in the call graph, with its summary and resolved edges."""

    key: str
    module_key: str
    module: Optional[str]
    class_name: Optional[str]
    name: str
    node: ast.AST
    summary: FunctionSummary
    hot: bool = False
    callees: List[str] = field(default_factory=list)
    calls_unknown: bool = False

    @property
    def qualified(self) -> str:
        return f"{self.class_name}.{self.name}" if self.class_name else self.name


class FlowAnalysis:
    """Symbol tables + call graph + memoized transitive queries."""

    def __init__(self, modules: Sequence[ProjectModule]) -> None:
        self._symbols: Dict[str, ModuleSymbols] = {}
        self._by_module_name: Dict[str, ModuleSymbols] = {}
        for project_module in modules:
            symbols = build_module_symbols(
                project_module.key,
                project_module.module,
                project_module.path,
                project_module.tree,
            )
            self._symbols[project_module.key] = symbols
            if project_module.module is not None:
                self._by_module_name[project_module.module] = symbols

        self._functions: Dict[str, FunctionNode] = {}
        self._by_node: Dict[int, FunctionNode] = {}
        self._class_index: Dict[str, List[Tuple[ModuleSymbols, ClassDecl]]] = {}
        for symbols in self._symbols.values():
            for class_name, decl in symbols.classes.items():
                self._class_index.setdefault(class_name, []).append((symbols, decl))
        self._build_functions()
        self._mro_cache: Dict[Tuple[str, str], List[Tuple[ModuleSymbols, ClassDecl]]] = {}
        self._resolve_calls()
        self._closure_cache: Dict[str, frozenset] = {}
        self._hot_reachable: Optional[Dict[str, str]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_sources(cls, sources: Mapping[str, str]) -> "FlowAnalysis":
        """Build an analysis from ``{dotted_module_name: source}`` (tests)."""
        modules = [
            ProjectModule(path=f"<{name}>", module=name, tree=ast.parse(text))
            for name, text in sources.items()
        ]
        return cls(modules)

    def _build_functions(self) -> None:
        for symbols in self._symbols.values():
            seen: Set[int] = set()
            for qualname, node in symbols.functions.items():
                key = f"{symbols.key}::{qualname}"
                parts = qualname.split(".")
                class_name = parts[0] if len(parts) == 2 else None
                info = FunctionNode(
                    key=key,
                    module_key=symbols.key,
                    module=symbols.module,
                    class_name=class_name,
                    name=parts[-1],
                    node=node,
                    summary=summarize_function(node),
                    hot=is_hot_marked(node),
                )
                self._functions[key] = info
                # Aliased methods share one AST node; keep the first (the
                # definition) as the node's canonical graph entry.
                if id(node) not in seen:
                    seen.add(id(node))
                    self._by_node[id(node)] = info

    # ------------------------------------------------------------------
    # Class resolution
    # ------------------------------------------------------------------
    def _resolve_class_ref(
        self, symbols: ModuleSymbols, ref: Optional[str]
    ) -> Optional[Tuple[ModuleSymbols, ClassDecl]]:
        """Resolve a dotted class reference as seen from one module."""
        if ref is None:
            return None
        parts = ref.split(".")
        head, tail = parts[0], parts[1:]
        if not tail:
            decl = symbols.classes.get(head)
            if decl is not None:
                return symbols, decl
            imported = symbols.imports.get(head)
            if imported is not None and imported.kind == "name":
                target = self._by_module_name.get(imported.module)
                if target is not None:
                    decl = target.classes.get(imported.symbol or head)
                    if decl is not None:
                        return target, decl
                    return None
            # Fall back to a project-unique bare name (covers classes that
            # are imported under ``if TYPE_CHECKING`` for annotations only).
            candidates = self._class_index.get(head, [])
            if len(candidates) == 1:
                return candidates[0]
            return None
        # ``m.ClassName`` through an imported module handle.
        imported = symbols.imports.get(head)
        if imported is not None and imported.kind == "module" and len(tail) == 1:
            target = self._by_module_name.get(imported.module)
            if target is not None:
                decl = target.classes.get(tail[0])
                if decl is not None:
                    return target, decl
        return None

    def _mro(
        self, symbols: ModuleSymbols, decl: ClassDecl
    ) -> List[Tuple[ModuleSymbols, ClassDecl]]:
        """Linearized project-visible ancestry (class first, then bases)."""
        cache_key = (symbols.key, decl.name)
        cached = self._mro_cache.get(cache_key)
        if cached is not None:
            return cached
        order: List[Tuple[ModuleSymbols, ClassDecl]] = []
        seen: Set[Tuple[str, str]] = set()
        stack: List[Tuple[ModuleSymbols, ClassDecl]] = [(symbols, decl)]
        while stack:
            current_symbols, current = stack.pop(0)
            identity = (current_symbols.key, current.name)
            if identity in seen:
                continue
            seen.add(identity)
            order.append((current_symbols, current))
            for base_ref in current.bases:
                if base_ref == "object":
                    continue
                resolved = self._resolve_class_ref(current_symbols, base_ref)
                if resolved is not None:
                    stack.append(resolved)
        self._mro_cache[cache_key] = order
        return order

    def _lookup_method(
        self, symbols: ModuleSymbols, decl: ClassDecl, method: str
    ) -> Optional[str]:
        """Method lookup through the MRO; returns a function key."""
        for ancestor_symbols, ancestor in self._mro(symbols, decl):
            node = ancestor.methods.get(method)
            if node is not None:
                return f"{ancestor_symbols.key}::{ancestor.name}.{method}"
        return None

    def _class_attr(
        self, symbols: ModuleSymbols, decl: ClassDecl, attr: str
    ) -> Optional[object]:
        """Class-level constant lookup through the MRO (nearest wins)."""
        for _, ancestor in self._mro(symbols, decl):
            if attr in ancestor.constants:
                return ancestor.constants[attr]
        return None

    # ------------------------------------------------------------------
    # Call resolution
    # ------------------------------------------------------------------
    def _resolve_calls(self) -> None:
        for info in list(self._functions.values()):
            if self._by_node.get(id(info.node)) is not info:
                # Alias entry: share the canonical node's resolution later.
                continue
            symbols = self._symbols[info.module_key]
            self._resolve_function_calls(symbols, info)
        for info in self._functions.values():
            canonical = self._by_node.get(id(info.node))
            if canonical is not None and canonical is not info:
                info.callees = canonical.callees
                info.calls_unknown = canonical.calls_unknown

    def _local_types(
        self, symbols: ModuleSymbols, info: FunctionNode
    ) -> Dict[str, Tuple[ModuleSymbols, ClassDecl]]:
        """Names with a known class type inside one function scope."""
        types: Dict[str, Tuple[ModuleSymbols, ClassDecl]] = {}
        enclosing = symbols.classes.get(info.class_name) if info.class_name else None
        args = getattr(info.node, "args", None)
        if args is not None:
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
                if arg.arg in {"self", "cls"} and enclosing is not None:
                    types[arg.arg] = (symbols, enclosing)
                elif arg.annotation is not None:
                    resolved = self._resolve_class_ref(
                        symbols, _annotation_class(arg.annotation)
                    )
                    if resolved is not None:
                        types[arg.arg] = resolved
        for node in own_nodes(info.node):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name) or not isinstance(node.value, ast.Call):
                continue
            constructor = dotted_name(node.value.func)
            resolved = self._resolve_constructor(symbols, info, constructor)
            if resolved is not None:
                types[target.id] = resolved
        return types

    def _resolve_constructor(
        self, symbols: ModuleSymbols, info: FunctionNode, constructor: Optional[str]
    ) -> Optional[Tuple[ModuleSymbols, ClassDecl]]:
        if constructor is None:
            return None
        if constructor == "cls" and info.class_name is not None:
            decl = symbols.classes.get(info.class_name)
            if decl is not None:
                return symbols, decl
            return None
        return self._resolve_class_ref(symbols, constructor)

    def _resolve_function_calls(self, symbols: ModuleSymbols, info: FunctionNode) -> None:
        types = self._local_types(symbols, info)
        enclosing = symbols.classes.get(info.class_name) if info.class_name else None
        callees: List[str] = []
        unknown = False
        for node in own_nodes(info.node):
            if not isinstance(node, ast.Call):
                continue
            resolved, is_unknown = self._resolve_call(symbols, info, enclosing, types, node)
            if resolved is not None:
                callees.append(resolved)
            unknown = unknown or is_unknown
        info.callees = sorted(set(callees))
        info.calls_unknown = unknown

    def _resolve_call(
        self,
        symbols: ModuleSymbols,
        info: FunctionNode,
        enclosing: Optional[ClassDecl],
        types: Dict[str, Tuple[ModuleSymbols, ClassDecl]],
        call: ast.Call,
    ) -> Tuple[Optional[str], bool]:
        """Resolve one call site -> ``(callee_key_or_None, is_unknown)``."""
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
            if name in _BUILTINS:
                return None, False
            if name in {"cls"} and info.class_name is not None:
                return self._constructor_edge(symbols, symbols.classes.get(info.class_name))
            if name in symbols.classes:
                return self._constructor_edge(symbols, symbols.classes[name])
            if name in symbols.functions and "." not in name:
                return f"{symbols.key}::{name}", False
            imported = symbols.imports.get(name)
            if imported is not None and imported.kind == "name":
                target = self._by_module_name.get(imported.module)
                if target is None:
                    return None, True
                symbol = imported.symbol or name
                if symbol in target.classes:
                    return self._constructor_edge(target, target.classes[symbol])
                if symbol in target.functions:
                    return f"{target.key}::{symbol}", False
                return None, True
            return None, True
        if isinstance(func, ast.Attribute):
            return self._resolve_method_call(symbols, enclosing, types, func)
        return None, True

    def _resolve_method_call(
        self,
        symbols: ModuleSymbols,
        enclosing: Optional[ClassDecl],
        types: Dict[str, Tuple[ModuleSymbols, ClassDecl]],
        func: ast.Attribute,
    ) -> Tuple[Optional[str], bool]:
        owner = func.value
        method = func.attr
        if isinstance(owner, ast.Name):
            typed = types.get(owner.id)
            if typed is not None:
                key = self._lookup_method(typed[0], typed[1], method)
                return (key, key is None)
            imported = symbols.imports.get(owner.id)
            if imported is not None and imported.kind == "module":
                target = self._by_module_name.get(imported.module)
                if target is None:
                    return None, True
                if method in target.classes:
                    return self._constructor_edge(target, target.classes[method])
                if method in target.functions:
                    return f"{target.key}::{method}", False
                return None, True
            return None, True
        if isinstance(owner, ast.Attribute):
            # ``self._engine.apply(...)`` through __init__-inferred types.
            base = owner.value
            if (
                isinstance(base, ast.Name)
                and base.id in {"self", "cls"}
                and enclosing is not None
            ):
                constructor = self._inherited_attr_constructor(symbols, enclosing, owner.attr)
                if constructor is not None:
                    resolved = self._resolve_class_ref(symbols, constructor)
                    if resolved is not None:
                        key = self._lookup_method(resolved[0], resolved[1], method)
                        return (key, key is None)
            return None, True
        return None, True

    def _inherited_attr_constructor(
        self, symbols: ModuleSymbols, decl: ClassDecl, attr: str
    ) -> Optional[str]:
        for _, ancestor in self._mro(symbols, decl):
            constructor = ancestor.attr_constructors.get(attr)
            if constructor is not None:
                return constructor
        return None

    def _constructor_edge(
        self, symbols: ModuleSymbols, decl: Optional[ClassDecl]
    ) -> Tuple[Optional[str], bool]:
        if decl is None:
            return None, True
        key = self._lookup_method(symbols, decl, "__init__")
        # A class without a visible __init__ (dataclasses, plain records)
        # still resolves -- to "no effects", not to "unknown".
        return key, False

    # ------------------------------------------------------------------
    # Public queries
    # ------------------------------------------------------------------
    def function(self, node: ast.AST) -> Optional[FunctionNode]:
        """The graph node of a function AST (``None`` for nested defs)."""
        return self._by_node.get(id(node))

    def resolve_call_site(
        self, function: ast.AST, call: ast.Call
    ) -> Optional[str]:
        """Resolve one call inside ``function`` to a callee key, if provable."""
        info = self._by_node.get(id(function))
        if info is None:
            return None
        symbols = self._symbols[info.module_key]
        types = self._local_types(symbols, info)
        enclosing = symbols.classes.get(info.class_name) if info.class_name else None
        resolved, _ = self._resolve_call(symbols, info, enclosing, types, call)
        return resolved

    def function_by_key(self, key: str) -> Optional[FunctionNode]:
        return self._functions.get(key)

    def functions(self) -> Iterator[FunctionNode]:
        return iter(self._functions.values())

    def closure(self, key: str) -> frozenset:
        """Every function key transitively reachable from ``key`` (incl. it)."""
        cached = self._closure_cache.get(key)
        if cached is not None:
            return cached
        seen: Set[str] = set()
        stack = [key]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            info = self._functions.get(current)
            if info is None:
                continue
            stack.extend(info.callees)
        result = frozenset(seen)
        self._closure_cache[key] = result
        return result

    def _any_in_closure(self, key: str, predicate_attr: str) -> bool:
        for reached in self.closure(key):
            info = self._functions.get(reached)
            if info is not None and getattr(info.summary, predicate_attr):
                return True
        return False

    def transitively_notifies(self, node: ast.AST) -> bool:
        """Does the function (or anything it provably calls) notify recorders?"""
        info = self.function(node)
        return info is not None and self._any_in_closure(info.key, "notifies_recorders")

    def transitively_maintains_index(self, node: ast.AST) -> bool:
        info = self.function(node)
        return info is not None and self._any_in_closure(info.key, "maintains_index")

    def transitively_raises_convergence(self, key: str) -> bool:
        return self._any_in_closure(key, "raises_convergence")

    def transitively_invalidates_engine(self, key: str) -> bool:
        return self._any_in_closure(key, "invalidates_engine")

    def hot_reachable(self) -> Dict[str, str]:
        """``{function key: hot entry qualname}`` over proven edges only."""
        if self._hot_reachable is not None:
            return self._hot_reachable
        reachable: Dict[str, str] = {}
        for info in self._functions.values():
            if not info.hot:
                continue
            entry_label = info.qualified
            for key in self.closure(info.key):
                reachable.setdefault(key, entry_label)
        self._hot_reachable = reachable
        return reachable

    def path_independent_classes(
        self,
    ) -> Iterator[Tuple[ModuleSymbols, ClassDecl]]:
        """Every project class whose resolved ``path_independent`` is truthy."""
        for symbols in self._symbols.values():
            for decl in symbols.classes.values():
                if bool(self._class_attr(symbols, decl, "path_independent")):
                    yield symbols, decl

    def select_closure(self, symbols: ModuleSymbols, decl: ClassDecl) -> frozenset:
        """Function keys transitively reachable from a class's ``select*``."""
        keys: Set[str] = set()
        for method_name in decl.methods:
            if not method_name.startswith("select"):
                continue
            method_key = f"{symbols.key}::{decl.name}.{method_name}"
            keys.update(self.closure(method_key))
        return frozenset(keys)

    def mutable_global_reads(self, info: FunctionNode) -> List[Tuple[int, str]]:
        """``(line, name)`` reads of mutable module-level state by one function."""
        symbols = self._symbols.get(info.module_key)
        if symbols is None:
            return []
        reads: List[Tuple[int, str]] = []
        for read in info.summary.global_reads:
            if symbols.globals_mutability.get(read.name):
                reads.append((read.line, read.name))
                continue
            imported = symbols.imports.get(read.name)
            if imported is not None and imported.kind == "name":
                origin = self._by_module_name.get(imported.module)
                if origin is not None and origin.globals_mutability.get(
                    imported.symbol or read.name
                ):
                    reads.append((read.line, read.name))
        return reads

    def module_symbols(self, key: str) -> Optional[ModuleSymbols]:
        return self._symbols.get(key)

    def modules(self) -> Iterable[ModuleSymbols]:
        return self._symbols.values()


def _annotation_class(annotation: ast.AST) -> Optional[str]:
    """Extract a class reference from a (possibly quoted/Optional) annotation."""
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(annotation, ast.Subscript):
        # Optional[X] / "X | None" style wrappers: look inside.
        wrapper = dotted_name(annotation.value)
        if wrapper is not None and wrapper.split(".")[-1] in {"Optional", "Final"}:
            return _annotation_class(annotation.slice)
        return None
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        left = _annotation_class(annotation.left)
        if left is not None:
            return left
        return _annotation_class(annotation.right)
    name = dotted_name(annotation)
    if name is not None and name.split(".")[-1] == "None":
        return None
    return name
