"""Module-level symbol tables for the flow engine.

One :class:`ModuleSymbols` per analyzed file records what the call-graph
resolver needs: the module's functions (module level and class methods,
including class-body method aliases like ``_notify = notify``), its classes
with their base expressions and ``__init__``-inferred attribute types, its
imports (name -> dotted target), and its module-level globals classified by
mutability (the RPL006 "reads mutable module state" check keys on that).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.astutils import dotted_name

__all__ = ["ImportTarget", "ClassDecl", "ModuleSymbols", "build_module_symbols"]

#: Calls whose result is a mutable container (module-global classification).
_MUTABLE_FACTORIES = frozenset({"dict", "list", "set", "defaultdict", "Counter", "deque"})


@dataclass(frozen=True)
class ImportTarget:
    """Resolution of one imported local name.

    ``kind`` is ``"module"`` (``import a.b as m`` -> the module ``a.b``) or
    ``"name"`` (``from a.b import f`` -> symbol ``f`` of module ``a.b``).
    """

    kind: str
    module: str
    symbol: Optional[str] = None


@dataclass
class ClassDecl:
    """One class statement: bases, methods, inferred attribute types."""

    name: str
    node: ast.ClassDef
    #: Base expressions as written (dotted names; unresolvable bases None).
    bases: List[Optional[str]] = field(default_factory=list)
    #: method name -> function node (aliases share the aliased node).
    methods: Dict[str, ast.AST] = field(default_factory=dict)
    #: ``self.<attr> = ClassName(...)`` assignments seen in ``__init__``,
    #: recorded as attr -> dotted constructor name for later resolution.
    attr_constructors: Dict[str, str] = field(default_factory=dict)
    #: Class-level constant assignments (``path_independent = True`` ...).
    constants: Dict[str, object] = field(default_factory=dict)


@dataclass
class ModuleSymbols:
    """Everything the resolver knows about one module."""

    key: str
    module: Optional[str]
    path: str
    tree: ast.Module
    functions: Dict[str, ast.AST] = field(default_factory=dict)
    classes: Dict[str, ClassDecl] = field(default_factory=dict)
    imports: Dict[str, ImportTarget] = field(default_factory=dict)
    #: module-level global name -> is the bound value a mutable container?
    globals_mutability: Dict[str, bool] = field(default_factory=dict)


def _is_mutable_value(node: ast.AST) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name is not None and name.split(".")[-1] in _MUTABLE_FACTORIES:
            return True
    return False


def _record_imports(symbols: ModuleSymbols, node: ast.AST) -> None:
    if isinstance(node, ast.Import):
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            # ``import a.b`` binds ``a``; only the aliased form gives a
            # direct module handle worth resolving through.
            target = alias.name if alias.asname else alias.name.split(".")[0]
            symbols.imports[local] = ImportTarget("module", target)
    elif isinstance(node, ast.ImportFrom):
        if node.module is None or node.level:
            return  # relative imports are out of scope for the resolver
        for alias in node.names:
            local = alias.asname or alias.name
            symbols.imports[local] = ImportTarget("name", node.module, alias.name)


def _record_class(symbols: ModuleSymbols, node: ast.ClassDef) -> None:
    decl = ClassDecl(name=node.name, node=node)
    for base in node.bases:
        decl.bases.append(dotted_name(base))
    for statement in node.body:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            decl.methods[statement.name] = statement
            symbols.functions[f"{node.name}.{statement.name}"] = statement
            if statement.name == "__init__":
                _record_attr_constructors(decl, statement)
        elif isinstance(statement, ast.Assign) and len(statement.targets) == 1:
            target = statement.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if isinstance(statement.value, ast.Name):
                aliased = decl.methods.get(statement.value.id)
                if aliased is not None:
                    # ``_notify_selection_change = notify_selection_change``
                    decl.methods[target.id] = aliased
                    symbols.functions[f"{node.name}.{target.id}"] = aliased
                    continue
            if isinstance(statement.value, ast.Constant):
                decl.constants[target.id] = statement.value.value
        elif isinstance(statement, ast.AnnAssign) and isinstance(statement.target, ast.Name):
            if isinstance(statement.value, ast.Constant):
                decl.constants[statement.target.id] = statement.value.value
    symbols.classes[node.name] = decl


def _record_attr_constructors(decl: ClassDecl, init: ast.AST) -> None:
    """``self._x = ClassName(...)`` in ``__init__`` types attribute ``_x``."""
    for node in ast.walk(init):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        value = node.value
        if not isinstance(value, ast.Call):
            continue
        constructor = dotted_name(value.func)
        if constructor is None:
            continue
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                decl.attr_constructors[target.attr] = constructor


def build_module_symbols(
    key: str, module: Optional[str], path: str, tree: ast.Module
) -> ModuleSymbols:
    """Build the symbol table of one parsed module."""
    symbols = ModuleSymbols(key=key, module=module, path=path, tree=tree)
    for node in tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            _record_imports(symbols, node)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            symbols.functions[node.name] = node
        elif isinstance(node, ast.ClassDef):
            _record_class(symbols, node)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    symbols.globals_mutability[target.id] = _is_mutable_value(node.value)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if node.value is not None:
                symbols.globals_mutability[node.target.id] = _is_mutable_value(node.value)
    return symbols


def module_tuple(symbols: ModuleSymbols) -> Tuple[str, Optional[str], str]:
    """Debug helper: ``(key, module, path)`` of one table."""
    return (symbols.key, symbols.module, symbols.path)
