"""Per-function effect summaries: the dataflow lattice of the flow engine.

One :class:`FunctionSummary` is computed syntactically per function (own
scope only, nested ``def``/``class`` bodies excluded) and records the
effect bits the interprocedural rules combine over the call graph:
notifies-recorders, maintains-index, iterates-full-population,
writes-instance-attrs, raises/catches/invalidates around
``ConvergenceError``, and the module-global names the body reads.  The
contract vocabulary (which call names *count* as notifying, which shapes
count as population-sized) lives here so the checkers and the engine agree
on it by construction.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, List, Optional, Set, Tuple

from repro.analysis.astutils import dotted_name, own_nodes

__all__ = [
    "NOTIFIER_CALLS",
    "INDEX_MAINTENANCE_CALLS",
    "POPULATION_ACCESSORS",
    "KNOWLEDGE_ACCESSORS",
    "POPULATION_NAMES",
    "MATERIALISERS",
    "CONVERGE_CALLS",
    "HOT_PATH_MARKER",
    "AttrWrite",
    "PopulationSite",
    "GlobalRead",
    "FunctionSummary",
    "summarize_function",
    "is_hot_marked",
]

#: Call names that count as notifying the overlay delta recorders
#: (the RPL001 vocabulary; ``note_join`` is deliberately absent -- it
#: records membership, not the adjacency touch).
NOTIFIER_CALLS = frozenset(
    {"notify_selection_change", "_notify_selection_change", "note_touch", "note_leave"}
)

#: Method names that count as maintaining a spatial index when called on an
#: index-named owner (the RPL002 vocabulary).
INDEX_MAINTENANCE_CALLS = frozenset({"insert", "remove", "move", "rebuild", "clear"})

#: Zero-argument accessors that materialise population-shaped views of an
#: overlay (every peer's adjacency, the full snapshot, ...).
POPULATION_ACCESSORS = frozenset(
    {"adjacency", "snapshot", "directed_neighbour_map", "peers"}
)

#: Accessors that return a full-knowledge candidate view (O(N) regardless
#: of arguments).
KNOWLEDGE_ACCESSORS = frozenset({"knowledge_set", "knowledge_sets"})

#: Attribute/name spellings of the full peer population.  Iterating one of
#: these, or materialising it through a builtin, is O(N) by definition.
POPULATION_NAMES = frozenset({"_peers", "peers", "peer_ids", "_neighbours"})

#: Builtins that materialise their operand.
MATERIALISERS = frozenset({"set", "frozenset", "list", "sorted", "tuple"})

#: Call names that (transitively) run an overlay convergence and may raise
#: ``ConvergenceError`` -- the syntactic trigger of RPL007 when the call
#: graph cannot resolve the callee.
CONVERGE_CALLS = frozenset(
    {"converge", "insert_and_converge", "remove_and_converge", "apply_batch"}
)

#: Decorator name marking an O(churn) hot-path entry point (RPL005 roots).
HOT_PATH_MARKER = "hot_path"

#: Module globals that are never "mutable state" reads (export lists etc.).
_EXEMPT_GLOBALS = frozenset({"__all__", "__doc__", "__name__"})


@dataclass(frozen=True)
class AttrWrite:
    """One instance/class attribute (re)bind: ``self.x = ...`` and kin."""

    line: int
    owner: str  #: ``self`` / ``cls`` / the class name for ``C.x = ...``
    attr: str
    what: str  #: human-readable description of the write shape


@dataclass(frozen=True)
class PopulationSite:
    """One O(population) construct: a scan, view or materialisation."""

    line: int
    what: str


@dataclass(frozen=True)
class GlobalRead:
    """One read of a module-level name inside a function body."""

    line: int
    name: str


@dataclass(frozen=True)
class FunctionSummary:
    """The effect-lattice value of one function, computed syntactically."""

    notifies_recorders: bool = False
    maintains_index: bool = False
    raises_convergence: bool = False
    catches_convergence: bool = False
    invalidates_engine: bool = False
    population_sites: Tuple[PopulationSite, ...] = ()
    attr_writes: Tuple[AttrWrite, ...] = ()
    global_reads: Tuple[GlobalRead, ...] = ()


def is_hot_marked(function: ast.AST) -> bool:
    """Whether a function carries the ``@hot_path`` marker decorator."""
    for decorator in getattr(function, "decorator_list", []):
        name = dotted_name(decorator)
        if name is not None and name.split(".")[-1] == HOT_PATH_MARKER:
            return True
    return False


def _is_population_operand(node: ast.AST) -> bool:
    """Whether an expression denotes the full peer population."""
    name = dotted_name(node)
    if name is not None and name.split(".")[-1] in POPULATION_NAMES:
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        # ``overlay._peers.keys()`` / ``.values()`` / ``.items()`` views.
        if node.func.attr in {"keys", "values", "items"}:
            return _is_population_operand(node.func.value)
    return False


def _iteration_sources(node: ast.AST) -> Iterator[Tuple[int, ast.AST]]:
    """Every ``(line, iterable)`` a node loops over (for + comprehensions)."""
    if isinstance(node, ast.For):
        yield node.lineno, node.iter
    elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
        for comprehension in node.generators:
            yield node.lineno, comprehension.iter


def _exception_names(handler_type: Optional[ast.AST]) -> Iterator[str]:
    if handler_type is None:
        return
    nodes: List[ast.AST] = (
        list(handler_type.elts) if isinstance(handler_type, ast.Tuple) else [handler_type]
    )
    for node in nodes:
        name = dotted_name(node)
        if name is not None:
            yield name.split(".")[-1]


def catches_convergence_error(handler: ast.ExceptHandler) -> bool:
    """Whether one ``except`` clause catches ``ConvergenceError``."""
    return "ConvergenceError" in set(_exception_names(handler.type))


def summarize_function(function: ast.AST) -> FunctionSummary:
    """Compute the effect summary of one function's own scope."""
    notifies = False
    maintains = False
    raises_conv = False
    catches_conv = False
    invalidates = False
    population: List[PopulationSite] = []
    writes: List[AttrWrite] = []
    bound: Set[str] = set()
    read_sites: List[Tuple[int, str]] = []

    args = getattr(function, "args", None)
    if args is not None:
        for arg in [
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
            *filter(None, [args.vararg, args.kwarg]),
        ]:
            bound.add(arg.arg)

    for node in own_nodes(function):
        _fold_call_effects(node, population)
        if isinstance(node, ast.Call):
            attr = node.func.attr if isinstance(node.func, ast.Attribute) else None
            if attr in NOTIFIER_CALLS:
                notifies = True
            if attr == "invalidate_engine":
                invalidates = True
            if attr in INDEX_MAINTENANCE_CALLS:
                owner = dotted_name(node.func.value) if isinstance(node.func, ast.Attribute) else None
                if owner is not None and "index" in owner.lower():
                    maintains = True
            if (
                attr == "setattr"
                or (isinstance(node.func, ast.Name) and node.func.id == "setattr")
            ) and node.args:
                target = dotted_name(node.args[0])
                if target in {"self", "cls"} and len(node.args) >= 2:
                    writes.append(
                        AttrWrite(node.lineno, target or "self", "<setattr>", "calls setattr()")
                    )
        elif isinstance(node, ast.Raise):
            exc = node.exc
            exc_name = None
            if isinstance(exc, ast.Call):
                exc_name = dotted_name(exc.func)
            elif exc is not None:
                exc_name = dotted_name(exc)
            if exc_name is not None and exc_name.split(".")[-1] == "ConvergenceError":
                raises_conv = True
        elif isinstance(node, ast.ExceptHandler):
            if catches_convergence_error(node):
                catches_conv = True
            if node.name:
                bound.add(node.name)
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                for element in _flatten_targets(target):
                    if isinstance(element, ast.Name):
                        bound.add(element.id)
                    elif isinstance(element, ast.Attribute):
                        owner = dotted_name(element.value)
                        if "index" in element.attr.lower():
                            maintains = True
                        if element.attr == "_engine" and _assigns_none(node):
                            invalidates = True
                        if owner in {"self", "cls"}:
                            kind = (
                                "augments" if isinstance(node, ast.AugAssign) else "rebinds"
                            )
                            writes.append(
                                AttrWrite(
                                    node.lineno,
                                    owner,
                                    element.attr,
                                    f"{kind} {owner}.{element.attr}",
                                )
                            )
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Attribute):
                    owner = dotted_name(target.value)
                    if owner in {"self", "cls"}:
                        writes.append(
                            AttrWrite(
                                node.lineno, owner, target.attr, f"deletes {owner}.{target.attr}"
                            )
                        )
        elif isinstance(node, (ast.For, ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for line, source in _iteration_sources(node):
                if _is_population_operand(source):
                    rendered = dotted_name(source) or "the peer population"
                    population.append(
                        PopulationSite(line, f"iterates the full population ({rendered})")
                    )
            if isinstance(node, ast.For) and isinstance(node.target, ast.Name):
                bound.add(node.target.id)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.optional_vars, ast.Name):
                    bound.add(item.optional_vars.id)
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            if node.id not in _EXEMPT_GLOBALS:
                read_sites.append((node.lineno, node.id))

    reads = tuple(
        GlobalRead(line, name)
        for line, name in sorted(set(read_sites))
        if name not in bound
    )
    return FunctionSummary(
        notifies_recorders=notifies,
        maintains_index=maintains,
        raises_convergence=raises_conv,
        catches_convergence=catches_conv,
        invalidates_engine=invalidates,
        population_sites=tuple(sorted(set(population), key=lambda s: s.line)),
        attr_writes=tuple(writes),
        global_reads=reads,
    )


def _fold_call_effects(node: ast.AST, population: List[PopulationSite]) -> None:
    """Record population-shaped call sites (accessors and materialisers)."""
    if not isinstance(node, ast.Call):
        return
    if isinstance(node.func, ast.Attribute):
        attr = node.func.attr
        if attr in POPULATION_ACCESSORS and not node.args and not node.keywords:
            population.append(
                PopulationSite(node.lineno, f"calls the population-shaped accessor .{attr}()")
            )
        elif attr in KNOWLEDGE_ACCESSORS:
            population.append(
                PopulationSite(
                    node.lineno, f"calls .{attr}(), an O(N) full-knowledge view"
                )
            )
    elif isinstance(node.func, ast.Name) and node.func.id in MATERIALISERS:
        if len(node.args) == 1 and _is_population_operand(node.args[0]):
            rendered = dotted_name(node.args[0]) or "the peer population"
            population.append(
                PopulationSite(
                    node.lineno,
                    f"materialises an O(N) id set ({node.func.id}({rendered}))",
                )
            )


def _flatten_targets(target: ast.AST) -> Iterator[ast.AST]:
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _flatten_targets(element)
    else:
        yield target


def _assigns_none(node: ast.AST) -> bool:
    value = getattr(node, "value", None)
    return isinstance(value, ast.Constant) and value.value is None
