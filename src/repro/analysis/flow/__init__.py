"""Whole-program dataflow layer behind reprolint's interprocedural rules.

The package splits into three parts:

* :mod:`repro.analysis.flow.summaries` -- the per-function effect lattice
  and the shared contract vocabulary (what counts as a notification, an
  index maintenance call, a population-sized construct, ...),
* :mod:`repro.analysis.flow.symbols` -- per-module symbol tables (classes,
  methods, imports, module-global mutability),
* :mod:`repro.analysis.flow.engine` -- the call graph and the memoized
  transitive queries the rules consume.

Unresolved calls degrade conservatively: they never satisfy an RPL001 /
RPL002 obligation and never extend RPL005 hot-path reachability.
"""

from repro.analysis.flow.engine import FlowAnalysis, FunctionNode, ProjectModule
from repro.analysis.flow.summaries import (
    CONVERGE_CALLS,
    FunctionSummary,
    HOT_PATH_MARKER,
    INDEX_MAINTENANCE_CALLS,
    KNOWLEDGE_ACCESSORS,
    MATERIALISERS,
    NOTIFIER_CALLS,
    POPULATION_ACCESSORS,
    POPULATION_NAMES,
    catches_convergence_error,
    is_hot_marked,
    summarize_function,
)
from repro.analysis.flow.symbols import (
    ClassDecl,
    ImportTarget,
    ModuleSymbols,
    build_module_symbols,
)

__all__ = [
    "FlowAnalysis",
    "FunctionNode",
    "ProjectModule",
    "FunctionSummary",
    "ClassDecl",
    "ImportTarget",
    "ModuleSymbols",
    "build_module_symbols",
    "summarize_function",
    "is_hot_marked",
    "catches_convergence_error",
    "NOTIFIER_CALLS",
    "INDEX_MAINTENANCE_CALLS",
    "POPULATION_ACCESSORS",
    "KNOWLEDGE_ACCESSORS",
    "POPULATION_NAMES",
    "MATERIALISERS",
    "CONVERGE_CALLS",
    "HOT_PATH_MARKER",
]
