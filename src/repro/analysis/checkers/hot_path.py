"""RPL005 -- the hot-path complexity sentinel.

The ROADMAP's "Road to N>=100k" item rests on the incremental layers
(:mod:`repro.overlay.incremental`, :mod:`repro.multicast.incremental`)
doing work proportional to the *change set*, never the peer population.
The entry points carrying that promise are marked ``@hot_path``
(:func:`repro.contracts.hot_path`); this rule walks the
:mod:`repro.analysis.flow` call graph from every marked function and flags,
anywhere in the closure:

* iteration over the full peer population (``for p in overlay._peers`` and
  spelling variants),
* population-shaped accessor calls (zero-argument ``.adjacency()`` /
  ``.snapshot()`` / ``.directed_neighbour_map()`` / ``.peers()``, any-arity
  ``.knowledge_set(s)()``),
* O(N) id-set materialisation (``set(self._peers)`` and kin).

Reachability follows *proven* edges only -- an unresolved call never
extends the hot region, so the rule under-approximates reachability but
never flags code that provably is not on a hot path.  A flagged construct
needs a restructure or a pragma with a scaling justification.
"""

from __future__ import annotations

import ast

from repro.analysis.checkers.common import iter_functions
from repro.analysis.core import ModuleContext, Rule

RULE_ID = "RPL005"


class HotPathChecker(ast.NodeVisitor):
    """Report population-sized constructs inside the hot-path closure."""

    def __init__(self, context: ModuleContext) -> None:
        self._context = context

    def visit_Module(self, node: ast.Module) -> None:
        flow = self._context.flow
        hot_region = flow.hot_reachable()
        for function, class_name in iter_functions(node):
            info = flow.function(function)
            if info is None:
                continue
            entry = hot_region.get(info.key)
            if entry is None:
                continue
            qualified = (
                f"{class_name}.{function.name}" if class_name else function.name
            )
            for site in info.summary.population_sites:
                self._context.report(
                    RULE_ID,
                    site.line,
                    f"'{qualified}' {site.what} but is reachable from the "
                    f"@hot_path entry '{entry}', which must stay O(changes); "
                    "restructure, or suppress with a scaling justification",
                )


HOT_PATH_RULE = Rule(
    rule_id=RULE_ID,
    name="hot-path-complexity",
    invariant=(
        "functions reachable from @hot_path entries never iterate the full "
        "peer population or materialise O(N) id sets"
    ),
    factory=HotPathChecker,
)
