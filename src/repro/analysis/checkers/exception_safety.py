"""RPL007 -- convergence exception-safety.

When an incremental convergence (``converge`` / ``insert_and_converge`` /
``remove_and_converge`` / ``apply_batch``, or any resolved callee that
transitively raises) aborts with ``ConvergenceError``, the engine's
internal worklists are mid-transaction: PR 4's bug class was exactly a
caller that swallowed the error and kept using the stale engine.  This
rule therefore requires every ``except`` clause catching
``ConvergenceError`` around a converge call to *invalidate before
resuming*: the handler must call ``invalidate_engine()`` (directly or via
a resolved callee that transitively does), assign ``..._engine = None``,
or re-raise (any ``raise``, bare or transformed).  Handlers that merely
log and continue are flagged at the handler line.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Sequence

from repro.analysis.checkers.common import dotted_name, iter_functions
from repro.analysis.core import ModuleContext, Rule
from repro.analysis.flow.summaries import CONVERGE_CALLS, catches_convergence_error

RULE_ID = "RPL007"

_SCOPE_BOUNDARIES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def _scoped_walk(statements: Sequence[ast.AST]) -> Iterator[ast.AST]:
    """Walk statement subtrees without descending into nested defs."""
    stack: List[ast.AST] = list(statements)
    while stack:
        node = stack.pop()
        if isinstance(node, _SCOPE_BOUNDARIES):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _call_name(call: ast.Call) -> str:
    name = dotted_name(call.func)
    return name.split(".")[-1] if name else ""


class ExceptionSafetyChecker(ast.NodeVisitor):
    """Flag ConvergenceError handlers that resume with a stale engine."""

    def __init__(self, context: ModuleContext) -> None:
        self._context = context

    def visit_Module(self, node: ast.Module) -> None:
        for function, _class_name in iter_functions(node):
            for statement in _scoped_walk(getattr(function, "body", [])):
                if isinstance(statement, ast.Try):
                    self._check_try(function, statement)

    def _check_try(self, function: ast.AST, statement: ast.Try) -> None:
        if not self._body_converges(function, statement.body):
            return
        for handler in statement.handlers:
            if not catches_convergence_error(handler):
                continue
            if self._handler_invalidates(function, handler):
                continue
            self._context.report(
                RULE_ID,
                handler.lineno,
                "catches ConvergenceError around an incremental converge "
                "without invalidating the engine; call invalidate_engine() "
                "(or re-raise) before resuming, or the next converge runs "
                "against mid-transaction worklists",
            )

    def _body_converges(self, function: ast.AST, body: Sequence[ast.AST]) -> bool:
        flow = self._context.flow
        for node in _scoped_walk(body):
            if not isinstance(node, ast.Call):
                continue
            if _call_name(node) in CONVERGE_CALLS:
                return True
            resolved = flow.resolve_call_site(function, node)
            if resolved is not None and flow.transitively_raises_convergence(resolved):
                return True
        return False

    def _handler_invalidates(
        self, function: ast.AST, handler: ast.ExceptHandler
    ) -> bool:
        flow = self._context.flow
        for node in _scoped_walk(handler.body):
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.Call):
                if _call_name(node) == "invalidate_engine":
                    return True
                resolved = flow.resolve_call_site(function, node)
                if resolved is not None and flow.transitively_invalidates_engine(
                    resolved
                ):
                    return True
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                value = node.value
                assigns_none = isinstance(value, ast.Constant) and value.value is None
                for target in targets:
                    if (
                        assigns_none
                        and isinstance(target, ast.Attribute)
                        and target.attr == "_engine"
                    ):
                        return True
        return False


EXCEPTION_SAFETY_RULE = Rule(
    rule_id=RULE_ID,
    name="convergence-exception-safety",
    invariant=(
        "ConvergenceError handlers around incremental converges invalidate "
        "the engine (or re-raise) before resuming"
    ),
    factory=ExceptionSafetyChecker,
)
