"""RPL001 -- the delta-stream contract.

Every mutation of ``OverlayNetwork._neighbours`` (direct attribute rebind,
subscript assignment or deletion, in-place set mutators on the map or on
one of its entries, through the attribute itself or a same-scope alias)
must be paired, in the same function scope, with a notification of the
attached delta recorders: a call to
:meth:`~repro.overlay.network.OverlayNetwork.notify_selection_change` (or
its private alias) or direct ``note_touch`` / ``note_leave`` recorder
calls.  ``note_join`` alone does *not* satisfy the contract -- it records
membership but not the bootstrap edges' adjacency touch, which is exactly
the drift PR 4 fixed in ``add_peer``.

Ownership is resolved syntactically: ``self`` inside ``class
OverlayNetwork``, any name or attribute containing ``overlay``, any
parameter annotated ``OverlayNetwork``, and names assigned from any of
those.  The ``PeerProcess`` simulator keeps its own private
``_neighbours`` set and is intentionally out of scope.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from repro.analysis.checkers.common import (
    SET_MUTATORS,
    dotted_name,
    iter_functions,
    own_nodes,
)
from repro.analysis.core import ModuleContext, Rule

RULE_ID = "RPL001"

#: Calls that count as notifying the delta recorders.
NOTIFIERS = frozenset(
    {"notify_selection_change", "_notify_selection_change", "note_touch", "note_leave"}
)

#: ``Class.function`` names the checker never inspects: the notifier itself
#: (both spellings) is where the recorder fan-out lives.
ALLOWLIST = frozenset(
    {
        "OverlayNetwork.notify_selection_change",
        "OverlayNetwork._notify_selection_change",
    }
)


class _FunctionScope:
    """Alias and ownership bookkeeping for one function body."""

    def __init__(self, function: ast.AST, class_name: Optional[str]) -> None:
        self.overlay_names: Set[str] = set()
        self.neighbour_aliases: Set[str] = set()
        args = getattr(function, "args", None)
        if args is not None:
            for arg in [
                *args.posonlyargs,
                *args.args,
                *args.kwonlyargs,
                *filter(None, [args.vararg, args.kwarg]),
            ]:
                if arg.arg == "self" and class_name == "OverlayNetwork":
                    self.overlay_names.add("self")
                elif "overlay" in arg.arg.lower():
                    self.overlay_names.add(arg.arg)
                elif arg.annotation is not None and "OverlayNetwork" in ast.dump(
                    arg.annotation
                ):
                    self.overlay_names.add(arg.arg)

    def is_overlay(self, node: ast.AST) -> bool:
        """Whether an expression denotes (our heuristic of) an overlay."""
        if isinstance(node, ast.Name):
            return node.id in self.overlay_names or "overlay" in node.id.lower()
        if isinstance(node, ast.Attribute):
            return "overlay" in node.attr.lower()
        name = dotted_name(node)
        return name is not None and "overlay" in name.lower()

    def is_neighbour_map(self, node: ast.AST) -> bool:
        """``<overlay>._neighbours`` or a local alias of it."""
        if isinstance(node, ast.Attribute) and node.attr == "_neighbours":
            return self.is_overlay(node.value)
        if isinstance(node, ast.Name):
            return node.id in self.neighbour_aliases
        return False

    def record_assignment(self, node: ast.Assign) -> None:
        """Track ``overlay = ...`` and ``neighbours = <overlay>._neighbours``."""
        if len(node.targets) != 1 or not isinstance(node.targets[0], ast.Name):
            return
        target = node.targets[0].id
        value = node.value
        if self.is_neighbour_map(value):
            self.neighbour_aliases.add(target)
        elif self.is_overlay(value):
            self.overlay_names.add(target)
        elif isinstance(value, ast.Call):
            callee = dotted_name(value.func)
            if callee is not None and callee.split(".")[-1] == "OverlayNetwork":
                self.overlay_names.add(target)


def _check_function(
    context: ModuleContext, function: ast.AST, class_name: Optional[str]
) -> None:
    qualified = f"{class_name}.{function.name}" if class_name else function.name
    if qualified in ALLOWLIST:
        return
    scope = _FunctionScope(function, class_name)
    mutations = []
    notified = False
    # Single ordered pass: Python builds aliases before using them, and a
    # notification anywhere in the scope satisfies the contract, so order
    # of discovery does not matter for the verdict.
    for node in _ordered_own_nodes(function):
        if isinstance(node, ast.Assign):
            if (
                len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and (scope.is_neighbour_map(node.value) or scope.is_overlay(node.value))
            ):
                # Creating a local alias reads the map, it does not mutate it.
                scope.record_assignment(node)
                continue
            scope.record_assignment(node)
            for target in node.targets:
                if scope.is_neighbour_map(target):
                    mutations.append((node.lineno, "rebinds the neighbour map"))
                elif isinstance(target, ast.Subscript) and scope.is_neighbour_map(
                    target.value
                ):
                    mutations.append((node.lineno, "assigns a neighbour-map entry"))
        elif isinstance(node, ast.AugAssign):
            target = node.target
            if scope.is_neighbour_map(target) or (
                isinstance(target, ast.Subscript)
                and scope.is_neighbour_map(target.value)
            ):
                mutations.append((node.lineno, "augments the neighbour map"))
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript) and scope.is_neighbour_map(
                    target.value
                ):
                    mutations.append((node.lineno, "deletes a neighbour-map entry"))
        elif isinstance(node, ast.Call):
            if isinstance(node.func, ast.Attribute):
                if node.func.attr in NOTIFIERS:
                    notified = True
                elif node.func.attr in SET_MUTATORS:
                    owner = node.func.value
                    if scope.is_neighbour_map(owner) or (
                        isinstance(owner, ast.Subscript)
                        and scope.is_neighbour_map(owner.value)
                    ):
                        mutations.append(
                            (node.lineno, f"calls .{node.func.attr}() on neighbour state")
                        )
    if notified or not mutations:
        return
    for line, what in mutations:
        context.report(
            RULE_ID,
            line,
            f"'{qualified}' {what} without notifying the delta stream; call "
            "OverlayNetwork.notify_selection_change (or note_touch/note_leave "
            "on every recorder) in the same scope",
        )


def _ordered_own_nodes(function: ast.AST) -> List[ast.AST]:
    """Own-scope nodes in source order (aliases must precede their uses)."""
    nodes = list(own_nodes(function))
    nodes.sort(key=lambda node: (getattr(node, "lineno", 0), getattr(node, "col_offset", 0)))
    return nodes


class DeltaStreamChecker(ast.NodeVisitor):
    """Module-level driver: inspect every function scope independently."""

    def __init__(self, context: ModuleContext) -> None:
        self._context = context

    def visit_Module(self, node: ast.Module) -> None:
        for function, class_name in iter_functions(node):
            _check_function(self._context, function, class_name)


DELTA_STREAM_RULE = Rule(
    rule_id=RULE_ID,
    name="delta-stream",
    invariant=(
        "every OverlayNetwork._neighbours mutation notifies the attached "
        "delta recorders in the same scope"
    ),
    factory=DeltaStreamChecker,
)
