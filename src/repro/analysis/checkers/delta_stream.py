"""RPL001 -- the delta-stream contract.

Every mutation of ``OverlayNetwork._neighbours`` (direct attribute rebind,
subscript assignment or deletion, in-place set mutators on the map or on
one of its entries, through the attribute itself or a same-scope alias)
must be paired, in the same call context, with a notification of the
attached delta recorders: a call to
:meth:`~repro.overlay.network.OverlayNetwork.notify_selection_change` (or
its private alias) or direct ``note_touch`` / ``note_leave`` recorder
calls.  ``note_join`` alone does *not* satisfy the contract -- it records
membership but not the bootstrap edges' adjacency touch, which is exactly
the drift PR 4 fixed in ``add_peer``.

Since reprolint v2 the obligation is *interprocedural*: a mutation is also
satisfied when any function the scope provably calls (through the
:mod:`repro.analysis.flow` call graph -- direct calls, ``self.`` dispatch,
imported names) transitively notifies.  Unresolved calls never satisfy it.
Two escape hatches are proven, not pragma'd:

* *fresh overlays*: a local constructed in-scope via ``cls(...)`` /
  ``OverlayNetwork(...)`` that never escapes (never passed to a call,
  never stored, no ``delta_stream`` access) cannot have recorders
  attached, so mutating its map needs no notification;
* notifications made one call level below the mutation.

Ownership is resolved syntactically: ``self`` inside ``class
OverlayNetwork``, any name or attribute containing ``overlay``, any
parameter annotated ``OverlayNetwork``, and names assigned from any of
those.  The ``PeerProcess`` simulator keeps its own private
``_neighbours`` set and is intentionally out of scope.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.analysis.checkers.common import (
    SET_MUTATORS,
    dotted_name,
    iter_functions,
    own_nodes,
)
from repro.analysis.core import ModuleContext, Rule

RULE_ID = "RPL001"

#: Calls that count as notifying the delta recorders.
NOTIFIERS = frozenset(
    {"notify_selection_change", "_notify_selection_change", "note_touch", "note_leave"}
)

#: ``Class.function`` names the checker never inspects: the notifier itself
#: (both spellings) is where the recorder fan-out lives.
ALLOWLIST = frozenset(
    {
        "OverlayNetwork.notify_selection_change",
        "OverlayNetwork._notify_selection_change",
    }
)


class _FunctionScope:
    """Alias and ownership bookkeeping for one function body."""

    def __init__(self, function: ast.AST, class_name: Optional[str]) -> None:
        self.overlay_names: Set[str] = set()
        self.neighbour_aliases: Set[str] = set()
        args = getattr(function, "args", None)
        if args is not None:
            for arg in [
                *args.posonlyargs,
                *args.args,
                *args.kwonlyargs,
                *filter(None, [args.vararg, args.kwarg]),
            ]:
                if arg.arg == "self" and class_name == "OverlayNetwork":
                    self.overlay_names.add("self")
                elif "overlay" in arg.arg.lower():
                    self.overlay_names.add(arg.arg)
                elif arg.annotation is not None and "OverlayNetwork" in ast.dump(
                    arg.annotation
                ):
                    self.overlay_names.add(arg.arg)

    def is_overlay(self, node: ast.AST) -> bool:
        """Whether an expression denotes (our heuristic of) an overlay."""
        if isinstance(node, ast.Name):
            return node.id in self.overlay_names or "overlay" in node.id.lower()
        if isinstance(node, ast.Attribute):
            return "overlay" in node.attr.lower()
        name = dotted_name(node)
        return name is not None and "overlay" in name.lower()

    def is_neighbour_map(self, node: ast.AST) -> bool:
        """``<overlay>._neighbours`` or a local alias of it."""
        if isinstance(node, ast.Attribute) and node.attr == "_neighbours":
            return self.is_overlay(node.value)
        if isinstance(node, ast.Name):
            return node.id in self.neighbour_aliases
        return False

    def record_assignment(self, node: ast.Assign) -> None:
        """Track ``overlay = ...`` and ``neighbours = <overlay>._neighbours``."""
        if len(node.targets) != 1 or not isinstance(node.targets[0], ast.Name):
            return
        target = node.targets[0].id
        value = node.value
        if self.is_neighbour_map(value):
            self.neighbour_aliases.add(target)
        elif self.is_overlay(value):
            self.overlay_names.add(target)
        elif isinstance(value, ast.Call):
            callee = dotted_name(value.func)
            if callee is not None and callee.split(".")[-1] == "OverlayNetwork":
                self.overlay_names.add(target)


def _root_name(node: ast.AST) -> Optional[str]:
    """The base ``Name`` of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _fresh_overlay_locals(function: ast.AST) -> Set[str]:
    """Locals provably holding a freshly constructed, non-escaping overlay.

    A name qualifies when it is assigned exactly once, from a direct
    ``cls(...)`` or ``OverlayNetwork(...)`` construction, and every other
    occurrence is an attribute/subscript base, a rebind target, or a
    ``return`` value.  Passing the name to any call, storing it anywhere,
    or touching ``.delta_stream`` on it disqualifies -- those are the only
    ways a recorder could observe the object.
    """
    constructed: Dict[str, int] = {}
    assigned: Dict[str, int] = {}
    nodes = list(own_nodes(function))
    parents: Dict[int, ast.AST] = {}
    for node in nodes:
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    for node in nodes:
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name):
                assigned[target.id] = assigned.get(target.id, 0) + 1
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name) and isinstance(node.value, ast.Call):
                callee = dotted_name(node.value.func)
                if callee is not None and callee.split(".")[-1] in {
                    "cls",
                    "OverlayNetwork",
                }:
                    constructed[target.id] = node.value.lineno
    candidates = {name for name in constructed if assigned.get(name) == 1}
    if not candidates:
        return set()
    for node in nodes:
        if not isinstance(node, ast.Name) or node.id not in candidates:
            continue
        parent = parents.get(id(node))
        if isinstance(parent, ast.Attribute) and parent.value is node:
            if parent.attr == "delta_stream":
                candidates.discard(node.id)
            continue
        if isinstance(parent, ast.Subscript) and parent.value is node:
            continue
        if isinstance(parent, ast.Return):
            continue
        if isinstance(parent, ast.Assign) and node in parent.targets:
            continue
        if isinstance(parent, ast.Call) and isinstance(node.ctx, ast.Load):
            # The construction call itself is the value of the defining
            # assignment; the name cannot occur inside it.  Any other call
            # touching the name means escape.
            candidates.discard(node.id)
            continue
        if isinstance(node.ctx, ast.Load):
            candidates.discard(node.id)
    return candidates


def _check_function(
    context: ModuleContext, function: ast.AST, class_name: Optional[str]
) -> None:
    qualified = f"{class_name}.{function.name}" if class_name else function.name
    if qualified in ALLOWLIST:
        return
    scope = _FunctionScope(function, class_name)
    fresh = _fresh_overlay_locals(function)
    mutations = []
    notified = False
    def add_mutation(line: int, what: str, owner: ast.AST) -> None:
        if _root_name(owner) in fresh:
            return  # proven fresh overlay: no recorder can be attached
        mutations.append((line, what))

    # Single ordered pass: Python builds aliases before using them, and a
    # notification anywhere in the scope satisfies the contract, so order
    # of discovery does not matter for the verdict.
    for node in _ordered_own_nodes(function):
        if isinstance(node, ast.Assign):
            if (
                len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and (scope.is_neighbour_map(node.value) or scope.is_overlay(node.value))
            ):
                # Creating a local alias reads the map, it does not mutate it.
                scope.record_assignment(node)
                continue
            scope.record_assignment(node)
            for target in node.targets:
                if scope.is_neighbour_map(target):
                    add_mutation(node.lineno, "rebinds the neighbour map", target)
                elif isinstance(target, ast.Subscript) and scope.is_neighbour_map(
                    target.value
                ):
                    add_mutation(node.lineno, "assigns a neighbour-map entry", target)
        elif isinstance(node, ast.AugAssign):
            target = node.target
            if scope.is_neighbour_map(target) or (
                isinstance(target, ast.Subscript)
                and scope.is_neighbour_map(target.value)
            ):
                add_mutation(node.lineno, "augments the neighbour map", target)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript) and scope.is_neighbour_map(
                    target.value
                ):
                    add_mutation(node.lineno, "deletes a neighbour-map entry", target)
        elif isinstance(node, ast.Call):
            if isinstance(node.func, ast.Attribute):
                if node.func.attr in NOTIFIERS:
                    notified = True
                elif node.func.attr in SET_MUTATORS:
                    owner = node.func.value
                    if scope.is_neighbour_map(owner) or (
                        isinstance(owner, ast.Subscript)
                        and scope.is_neighbour_map(owner.value)
                    ):
                        add_mutation(
                            node.lineno,
                            f"calls .{node.func.attr}() on neighbour state",
                            owner,
                        )
    if notified or not mutations:
        return
    if context.flow.transitively_notifies(function):
        # Interprocedural satisfaction: some function this scope provably
        # calls (any call level down) notifies the recorders.
        return
    for line, what in mutations:
        context.report(
            RULE_ID,
            line,
            f"'{qualified}' {what} without notifying the delta stream; call "
            "OverlayNetwork.notify_selection_change (or note_touch/note_leave "
            "on every recorder) in the same scope",
        )


def _ordered_own_nodes(function: ast.AST) -> List[ast.AST]:
    """Own-scope nodes in source order (aliases must precede their uses)."""
    nodes = list(own_nodes(function))
    nodes.sort(key=lambda node: (getattr(node, "lineno", 0), getattr(node, "col_offset", 0)))
    return nodes


class DeltaStreamChecker(ast.NodeVisitor):
    """Module-level driver: inspect every function scope independently."""

    def __init__(self, context: ModuleContext) -> None:
        self._context = context

    def visit_Module(self, node: ast.Module) -> None:
        for function, class_name in iter_functions(node):
            _check_function(self._context, function, class_name)


DELTA_STREAM_RULE = Rule(
    rule_id=RULE_ID,
    name="delta-stream",
    invariant=(
        "every OverlayNetwork._neighbours mutation notifies the attached "
        "delta recorders in the same scope"
    ),
    factory=DeltaStreamChecker,
)
