"""RPL006 -- path-independence purity.

A selection class declaring ``path_independent = True`` promises that
``select*`` answers depend only on the arguments and construction-time
configuration -- the precondition for the additive-delta shortcut and for
sharded convergence (ROADMAP).  This rule enforces the two ways a class
can silently break that promise:

* writing instance/class attributes outside ``__init__`` (any rebind,
  augmented assign, delete, or ``setattr(self, ...)`` in any method; a
  *subscript store* into an ``__init__``-created container, e.g. a lazy
  per-dimension cache, is deliberately allowed -- it memoises, it does not
  change what is computed),
* reading *mutable* module globals (dict/list/set literals or factory
  calls at module level) from ``select*`` or anything it transitively
  calls through the :mod:`repro.analysis.flow` call graph.

The ``path_independent`` marker itself is resolved through the class MRO,
so subclasses of a marked base are checked too.
"""

from __future__ import annotations

import ast
from typing import Set

from repro.analysis.core import ModuleContext, Rule
from repro.analysis.flow.symbols import ClassDecl, ModuleSymbols

RULE_ID = "RPL006"


class PurityChecker(ast.NodeVisitor):
    """Check every path_independent class declared in this module."""

    def __init__(self, context: ModuleContext) -> None:
        self._context = context

    def visit_Module(self, node: ast.Module) -> None:
        flow = self._context.flow
        for symbols, decl in flow.path_independent_classes():
            if symbols.key != self._context.flow_key:
                continue
            self._check_attr_writes(decl)
            self._check_global_reads(symbols, decl)

    def _check_attr_writes(self, decl: ClassDecl) -> None:
        seen: Set[int] = set()
        for method_name, method_node in decl.methods.items():
            if method_name == "__init__" or id(method_node) in seen:
                continue
            seen.add(id(method_node))
            info = self._context.flow.function(method_node)
            if info is None:
                continue
            for write in info.summary.attr_writes:
                self._context.report(
                    RULE_ID,
                    write.line,
                    f"'{decl.name}.{method_name}' {write.what} outside "
                    "__init__, but the class declares path_independent=True; "
                    "selection results must not depend on call history",
                )

    def _check_global_reads(self, symbols: ModuleSymbols, decl: ClassDecl) -> None:
        flow = self._context.flow
        for key in sorted(flow.select_closure(symbols, decl)):
            info = flow.function_by_key(key)
            if info is None:
                continue
            for line, name in flow.mutable_global_reads(info):
                if info.module_key == self._context.flow_key:
                    where, at = f"'{info.qualified}'", line
                else:
                    where, at = (
                        f"'{info.qualified}' (reached from "
                        f"'{decl.name}.select*')",
                        decl.node.lineno,
                    )
                self._context.report(
                    RULE_ID,
                    at,
                    f"{where} reads the mutable module global '{name}' on a "
                    f"select path of path-independent '{decl.name}'; pass it "
                    "as construction-time configuration instead",
                )


PURITY_RULE = Rule(
    rule_id=RULE_ID,
    name="path-independence-purity",
    invariant=(
        "path_independent selection classes never write attributes outside "
        "__init__ nor read mutable module globals on select paths"
    ),
    factory=PurityChecker,
)
