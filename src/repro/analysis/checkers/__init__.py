"""The concrete contract checkers and the rule registry.

Each submodule contributes one :class:`~repro.analysis.core.Rule`; the
ordered tuple below is what the driver runs.  New contracts register here.
"""

from repro.analysis.checkers.byte_identity import BYTE_IDENTITY_RULE
from repro.analysis.checkers.delta_stream import DELTA_STREAM_RULE
from repro.analysis.checkers.determinism import DETERMINISM_RULE
from repro.analysis.checkers.exception_safety import EXCEPTION_SAFETY_RULE
from repro.analysis.checkers.hot_path import HOT_PATH_RULE
from repro.analysis.checkers.index_sync import INDEX_SYNC_RULE
from repro.analysis.checkers.purity import PURITY_RULE
from repro.analysis.core import Rule

ALL_RULES: "tuple[Rule, ...]" = (
    DELTA_STREAM_RULE,
    INDEX_SYNC_RULE,
    BYTE_IDENTITY_RULE,
    DETERMINISM_RULE,
    HOT_PATH_RULE,
    PURITY_RULE,
    EXCEPTION_SAFETY_RULE,
)

__all__ = [
    "ALL_RULES",
    "BYTE_IDENTITY_RULE",
    "DELTA_STREAM_RULE",
    "DETERMINISM_RULE",
    "EXCEPTION_SAFETY_RULE",
    "HOT_PATH_RULE",
    "INDEX_SYNC_RULE",
    "PURITY_RULE",
]
