"""Shared AST plumbing for the contract checkers.

The implementations live in :mod:`repro.analysis.astutils` (a dependency
leaf the flow engine also imports); this module re-exports them under the
historical name so the checkers keep one import site.
"""

from __future__ import annotations

from repro.analysis.astutils import (
    SET_MUTATORS,
    dotted_name,
    is_setlike,
    iter_functions,
    own_nodes,
)

__all__ = [
    "SET_MUTATORS",
    "dotted_name",
    "own_nodes",
    "iter_functions",
    "is_setlike",
]
