"""RPL004 -- the determinism contract.

Everything under ``src/repro`` must be a deterministic function of its
inputs and an explicit seed (the seeding contract fixed in PR 4: ``seed``
defaults to an explicit ``0``, ``seed=None`` is honoured as
nondeterministic *by documented choice*, ``rng`` parameters draw from
shared state).  This rule flags the three ways code drifts off that:

* module-level ``random.*`` calls (``random.random()``,
  ``random.choice()``, ``random.seed()`` ...), which draw from the
  interpreter-global generator any import can perturb;
* unseeded generator construction -- ``random.Random()`` with no
  arguments, and ``np.random.*`` without an explicit seed
  (``np.random.default_rng(seed)`` / ``RandomState(seed)`` with an
  argument are the sanctioned spellings; bare ``np.random.shuffle`` etc.
  always flag);
* wall-clock reads (``time.time()``, ``time.time_ns()``,
  ``datetime.now()`` and friends) whose value changes run to run.
  ``time.perf_counter`` / ``monotonic`` are *not* flagged: measuring how
  long something took is fine, feeding the clock into results is not.

The sanctioned pattern is an ``rng`` parameter resolved as ``rng if rng is
not None else random.Random(<seed>)`` -- seeded construction never flags,
so conforming code needs no pragmas.  The one documented nondeterministic
path (``workloads.churn`` honouring ``seed=None``) carries a justified
pragma.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.analysis.checkers.common import dotted_name
from repro.analysis.core import ModuleContext, Rule

RULE_ID = "RPL004"

#: ``random`` module attributes that construct generators (fine when seeded).
_GENERATOR_FACTORIES = frozenset({"Random", "SystemRandom"})
#: Seeded-construction entry points of ``numpy.random``.
_NUMPY_FACTORIES = frozenset(
    {"default_rng", "RandomState", "SeedSequence", "Generator", "PCG64", "Philox"}
)
#: Wall-clock reads (dotted-name suffixes checked against the call).
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
    }
)


def _wall_clock_name(name: str) -> Optional[str]:
    for clock in _WALL_CLOCK:
        if name == clock or name.endswith("." + clock):
            return clock
    return None


class DeterminismChecker(ast.NodeVisitor):
    """Flag global-RNG, unseeded-RNG and wall-clock call sites."""

    def __init__(self, context: ModuleContext) -> None:
        self._context = context

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name is not None:
            self._check_name(node, name)
        self.generic_visit(node)

    def _check_name(self, node: ast.Call, name: str) -> None:
        parts = name.split(".")
        if parts[0] == "random" and len(parts) == 2:
            if parts[1] in _GENERATOR_FACTORIES:
                if not node.args and not node.keywords:
                    self._context.report(
                        RULE_ID,
                        node.lineno,
                        "random.Random() without a seed is nondeterministic; "
                        "pass an explicit seed (the rng-parameter contract "
                        "defaults to 0)",
                    )
            else:
                self._context.report(
                    RULE_ID,
                    node.lineno,
                    f"{name}() draws from the interpreter-global generator; "
                    "accept an rng parameter and draw from it instead",
                )
            return
        if len(parts) >= 2 and parts[-2] == "random" and parts[0] in {"np", "numpy"}:
            if parts[-1] in _NUMPY_FACTORIES and (node.args or node.keywords):
                return
            self._context.report(
                RULE_ID,
                node.lineno,
                f"{name}() is unseeded numpy randomness; construct "
                "np.random.default_rng(seed) and thread it through",
            )
            return
        clock = _wall_clock_name(name)
        if clock is not None:
            self._context.report(
                RULE_ID,
                node.lineno,
                f"{clock}() reads the wall clock, which varies run to run; "
                "take timestamps as parameters (perf_counter is fine for "
                "measuring durations)",
            )


DETERMINISM_RULE = Rule(
    rule_id=RULE_ID,
    name="determinism",
    invariant=(
        "src/repro is deterministic under explicit seeds: no global RNG, "
        "no unseeded generators, no wall-clock reads"
    ),
    factory=DeterminismChecker,
)
