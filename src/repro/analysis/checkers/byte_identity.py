"""RPL003 -- the byte-identity contract.

The spatial index and the selection family must produce *bit-identical*
results to the scans they replace (ROADMAP, PR 5): same sequential float
summation order, same ``(distance, id)`` tie-breaks.  Inside the guarded
modules -- :mod:`repro.geometry.index` and ``repro.overlay.selection.*`` --
this rule flags the syntactic shapes that historically break that:

* builtin ``sum(...)`` (left-to-right accumulation whose order is only as
  deterministic as its operand's iteration order; ``math.fsum`` is exempt
  because its result is order-insensitive by construction, and summing a
  ``sorted(...)`` call is exempt because the order is explicit);
* numpy reductions (``np.sum`` / ``np.dot`` / ``.sum()`` / ``.prod()``
  ...), whose pairwise accumulation differs from sequential scans;
* ``for`` loops that iterate a ``set`` or ``dict`` expression *without an
  explicit* ``sorted(...)`` while feeding a float accumulator (``+=`` /
  ``-=``) or a tie-break reduction (``min`` / ``max`` / ``heapq.heappush``).

Provably-ordered instances (a row-wise reduction over a fixed-layout
array, a sum over a coordinate tuple) are suppressed in place with a
justified pragma, which doubles as documentation of *why* the order is
safe.
"""

from __future__ import annotations

import ast
from typing import Optional, Set

from repro.analysis.checkers.common import dotted_name, is_setlike
from repro.analysis.core import ModuleContext, Rule

RULE_ID = "RPL003"

#: Dotted-name suffixes of numpy module-level reductions.
_NUMPY_REDUCTIONS = frozenset(
    {"sum", "nansum", "prod", "nanprod", "cumsum", "dot", "einsum", "inner", "vdot"}
)
#: Method names treated as array reductions when called on any expression.
_METHOD_REDUCTIONS = frozenset({"sum", "prod", "cumsum", "dot"})
#: Calls inside a set/dict loop body that imply an order-sensitive tie-break.
_TIEBREAK_CALLS = frozenset({"min", "max", "heappush", "heappushpop", "heapreplace"})


def _guards(module: Optional[str]) -> bool:
    """The byte-identity contract guards the index and the selection family."""
    return module == "repro.geometry.index" or (
        module is not None and module.startswith("repro.overlay.selection")
    )


def _is_sorted_call(node: ast.AST) -> bool:
    return isinstance(node, ast.Call) and dotted_name(node.func) == "sorted"


class ByteIdentityChecker(ast.NodeVisitor):
    """Flag order-sensitive float accumulation in byte-identity code."""

    def __init__(self, context: ModuleContext) -> None:
        self._context = context
        self._setlike_names: Set[str] = set()

    # -- accumulation calls -------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name == "sum":
            if not (node.args and _is_sorted_call(node.args[0])):
                self._context.report(
                    RULE_ID,
                    node.lineno,
                    "builtin sum() accumulates in iteration order; spell the "
                    "order out (sorted(...) operand or an explicit loop) or "
                    "use math.fsum for order-insensitive totals",
                )
        elif name is not None and "." in name:
            parts = name.split(".")
            if parts[0] in {"np", "numpy"} and parts[-1] in _NUMPY_REDUCTIONS:
                self._context.report(
                    RULE_ID,
                    node.lineno,
                    f"numpy reduction {name}() uses pairwise accumulation that "
                    "need not match the sequential scan it replaces",
                )
            elif parts[-1] in _METHOD_REDUCTIONS and parts[0] not in {"np", "numpy"}:
                self._context.report(
                    RULE_ID,
                    node.lineno,
                    f".{parts[-1]}() array reduction in byte-identity code; "
                    "justify the accumulation order with a pragma if it is "
                    "provably fixed",
                )
        elif isinstance(node.func, ast.Attribute) and (
            node.func.attr in _METHOD_REDUCTIONS
        ):
            # Reductions on non-trivial expressions (subscripts, call
            # results) that dotted_name cannot render.
            self._context.report(
                RULE_ID,
                node.lineno,
                f".{node.func.attr}() array reduction in byte-identity code; "
                "justify the accumulation order with a pragma if it is "
                "provably fixed",
            )
        self.generic_visit(node)

    # -- alias bookkeeping --------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            if is_setlike(node.value, self._setlike_names):
                self._setlike_names.add(node.targets[0].id)
            else:
                self._setlike_names.discard(node.targets[0].id)
        self.generic_visit(node)

    # -- unordered iteration feeding an accumulator -------------------------
    def visit_For(self, node: ast.For) -> None:
        if is_setlike(node.iter, self._setlike_names) and not _is_sorted_call(
            node.iter
        ):
            sink = self._accumulator_sink(node)
            if sink is not None:
                self._context.report(
                    RULE_ID,
                    node.lineno,
                    f"iterates a set/dict and {sink} without an explicit "
                    "sorted(...); unordered iteration makes the result "
                    "run-to-run unstable",
                )
        self.generic_visit(node)

    @staticmethod
    def _accumulator_sink(loop: ast.For) -> Optional[str]:
        """What, if anything, the loop body feeds order-sensitively."""
        for child in ast.walk(loop):
            if child is loop:
                continue
            if isinstance(child, ast.AugAssign) and isinstance(
                child.op, (ast.Add, ast.Sub)
            ):
                return "feeds a += accumulator"
            if isinstance(child, ast.Call):
                callee = dotted_name(child.func)
                if callee is not None and callee.split(".")[-1] in _TIEBREAK_CALLS:
                    return f"feeds a {callee.split('.')[-1]}() tie-break"
        return None


BYTE_IDENTITY_RULE = Rule(
    rule_id=RULE_ID,
    name="byte-identity",
    invariant=(
        "repro.geometry.index and repro.overlay.selection.* preserve exact "
        "float summation order and tie-breaks"
    ),
    factory=ByteIdentityChecker,
    scope=_guards,
)
