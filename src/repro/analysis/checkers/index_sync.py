"""RPL002 -- the index-sync contract.

The spatial-index subsystem (ROADMAP, PR 5) is exact only while every
membership or coordinate mutation maintains the overlay's owned
:class:`~repro.geometry.index.SpatialIndex`.  The sanctioned mutation
paths are ``add_peer`` / ``remove_peer`` / ``apply_batch`` /
``build_equilibrium``; any *other* function that mutates peer state --
the ``_peers`` map (or an alias of it), or a peer's ``coordinates``
attribute -- must touch the index in the same call context (an
``insert``/``remove``/``move``/``rebuild``/``clear`` call on an
index-named object, or a rebind of an ``_index`` attribute), or indexed
selections silently diverge from the scans they must stay byte-identical
with.

Since reprolint v2 the obligation is *interprocedural*: maintenance done
by any function the mutating scope provably calls (through the
:mod:`repro.analysis.flow` call graph) also satisfies it.  Unresolved
calls never do.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set, Tuple

from repro.analysis.checkers.common import (
    SET_MUTATORS,
    dotted_name,
    iter_functions,
    own_nodes,
)
from repro.analysis.core import ModuleContext, Rule

RULE_ID = "RPL002"

#: Functions allowed to mutate peer state (they own the sync obligation and
#: are covered by the hypothesis equivalence suites directly).
SANCTIONED_MUTATORS = frozenset(
    {"add_peer", "remove_peer", "apply_batch", "build_equilibrium"}
)

#: Method calls that count as maintaining the index.
INDEX_MAINTENANCE = frozenset({"insert", "remove", "move", "rebuild", "clear"})


def _is_peer_map(node: ast.AST, aliases: Set[str]) -> bool:
    if isinstance(node, ast.Attribute) and node.attr == "_peers":
        return True
    return isinstance(node, ast.Name) and node.id in aliases


def _is_index_touch(node: ast.Call) -> bool:
    if not isinstance(node.func, ast.Attribute):
        return False
    if node.func.attr not in INDEX_MAINTENANCE:
        return False
    owner = dotted_name(node.func.value)
    return owner is not None and "index" in owner.lower()


def _check_function(
    context: ModuleContext, function: ast.AST, class_name: Optional[str]
) -> None:
    if function.name in SANCTIONED_MUTATORS:
        return
    aliases: Set[str] = set()
    mutations: List[Tuple[int, str]] = []
    index_touched = False
    nodes = sorted(
        own_nodes(function),
        key=lambda node: (getattr(node, "lineno", 0), getattr(node, "col_offset", 0)),
    )
    for node in nodes:
        if isinstance(node, ast.Assign):
            if (
                len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and _is_peer_map(node.value, aliases)
            ):
                # Creating a local alias reads the map, it does not mutate it.
                aliases.add(node.targets[0].id)
                continue
            for target in node.targets:
                if _is_peer_map(target, aliases):
                    mutations.append((node.lineno, "rebinds the peer map"))
                elif isinstance(target, ast.Subscript) and _is_peer_map(
                    target.value, aliases
                ):
                    mutations.append((node.lineno, "assigns a peer-map entry"))
                elif (
                    isinstance(target, ast.Attribute)
                    and target.attr == "coordinates"
                ):
                    mutations.append((node.lineno, "rebinds peer coordinates"))
            if any(
                isinstance(target, ast.Attribute) and "index" in target.attr.lower()
                for target in node.targets
            ):
                index_touched = True
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript) and _is_peer_map(
                    target.value, aliases
                ):
                    mutations.append((node.lineno, "deletes a peer-map entry"))
        elif isinstance(node, ast.Call):
            if _is_index_touch(node):
                index_touched = True
            elif isinstance(node.func, ast.Attribute) and node.func.attr in SET_MUTATORS:
                if _is_peer_map(node.func.value, aliases):
                    mutations.append(
                        (node.lineno, f"calls .{node.func.attr}() on the peer map")
                    )
    if index_touched or not mutations:
        return
    if context.flow.transitively_maintains_index(function):
        # Interprocedural satisfaction: a provably-called function (any
        # call level down) maintains the index for this mutation.
        return
    qualified = f"{class_name}.{function.name}" if class_name else function.name
    for line, what in mutations:
        context.report(
            RULE_ID,
            line,
            f"'{qualified}' {what} outside add_peer/remove_peer/apply_batch/"
            "build_equilibrium without maintaining the owned SpatialIndex "
            "(insert/remove/move in the same scope)",
        )


class IndexSyncChecker(ast.NodeVisitor):
    """Module-level driver: inspect every function scope independently."""

    def __init__(self, context: ModuleContext) -> None:
        self._context = context

    def visit_Module(self, node: ast.Module) -> None:
        for function, class_name in iter_functions(node):
            _check_function(self._context, function, class_name)


INDEX_SYNC_RULE = Rule(
    rule_id=RULE_ID,
    name="index-sync",
    invariant=(
        "peer membership/coordinate mutations outside the sanctioned "
        "methods keep the owned SpatialIndex in sync"
    ),
    factory=IndexSyncChecker,
)
