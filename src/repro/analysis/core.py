"""Core of the contract checker: rules, violations, pragmas, the driver.

A *rule* pairs a machine-readable id (``RPL001`` ...) with a factory that
builds an :class:`ast.NodeVisitor` over one module and a *scope* predicate
deciding which modules the rule guards (the byte-identity rule, for
example, only guards :mod:`repro.geometry.index` and the selection family).
Checkers report through :meth:`ModuleContext.report`; the driver then folds
in the per-line suppression pragmas and returns the surviving violations.

Suppression pragma grammar (one line of scope, trailing or on the line
immediately above)::

    # reprolint: disable=RPL003 reason=entry[0] is a tuple; order is fixed
    # reprolint: disable=RPL001,RPL002 reason=constructor, nothing attached

A pragma without a non-empty ``reason=`` is itself reported as
:data:`PRAGMA_RULE_ID` (RPL000) and cannot be suppressed.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.flow.engine import FlowAnalysis, ProjectModule

__all__ = [
    "PRAGMA_RULE_ID",
    "PARSE_RULE_ID",
    "Violation",
    "Pragma",
    "Rule",
    "ModuleContext",
    "parse_pragmas",
    "infer_module",
    "analyze_source",
    "analyze_file",
    "analyze_project",
]

#: Rule id reported for malformed (reason-less) suppression pragmas.
PRAGMA_RULE_ID = "RPL000"
#: Rule id reported when a file cannot be parsed at all.
PARSE_RULE_ID = "RPL999"

_PRAGMA_PATTERN = re.compile(
    r"#\s*reprolint:\s*disable=(?P<codes>[A-Za-z0-9_,\s]*?)"
    r"(?:\s+reason=(?P<reason>[^#]*))?\s*(?:#|$)"
)


@dataclass(frozen=True)
class Violation:
    """One contract violation at one source line."""

    rule_id: str
    message: str
    path: str
    line: int

    def render(self) -> str:
        """``path:line: RULE message`` -- the one-line report format."""
        return f"{self.path}:{self.line}: {self.rule_id} {self.message}"


@dataclass(frozen=True)
class Pragma:
    """One parsed ``# reprolint: disable=...`` suppression comment."""

    line: int
    codes: frozenset
    reason: str
    #: ``True`` when the comment is alone on its line, in which case it
    #: suppresses the *next* line as well as its own.
    standalone: bool


@dataclass(frozen=True)
class Rule:
    """One registered contract rule."""

    rule_id: str
    name: str
    invariant: str
    factory: Callable[["ModuleContext"], ast.NodeVisitor]
    #: Predicate over the dotted module name (``None`` for files outside the
    #: ``repro`` package, which every rule guards so the fixture corpus and
    #: stray scripts get full checking).
    scope: Callable[[Optional[str]], bool] = lambda module: True

    def applies_to(self, module: Optional[str]) -> bool:
        """Whether this rule guards the given module (``None`` = always)."""
        return module is None or self.scope(module)


@dataclass
class ModuleContext:
    """Everything a checker may need about the module under analysis.

    ``flow`` is the whole-program :class:`FlowAnalysis` shared by every
    module of the run; when analyzing a single source string it still holds
    a one-module analysis, so checkers can query it unconditionally.
    ``flow_key`` is this module's key inside it.
    """

    path: str
    module: Optional[str]
    source: str
    tree: ast.Module
    flow: FlowAnalysis
    flow_key: str
    violations: List[Violation] = field(default_factory=list)

    def report(self, rule_id: str, line: int, message: str) -> None:
        """Record one violation (suppression is applied by the driver)."""
        self.violations.append(Violation(rule_id, message, self.path, line))


def parse_pragmas(source: str) -> List[Pragma]:
    """Extract every ``reprolint`` pragma comment with its line and scope."""
    pragmas: List[Pragma] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _PRAGMA_PATTERN.search(token.string)
            if match is None:
                continue
            codes = frozenset(
                code.strip().upper()
                for code in match.group("codes").split(",")
                if code.strip()
            )
            reason = (match.group("reason") or "").strip()
            prefix = token.line[: token.start[1]]
            pragmas.append(
                Pragma(
                    line=token.start[0],
                    codes=codes,
                    reason=reason,
                    standalone=not prefix.strip(),
                )
            )
    except tokenize.TokenizeError:
        # A file tokenize cannot handle will not parse either; the driver
        # reports the parse failure, so silently yield no pragmas here.
        return []
    return pragmas


def infer_module(path: Path) -> Optional[str]:
    """Dotted module name for files under a ``repro`` package root.

    ``src/repro/geometry/index.py`` maps to ``repro.geometry.index``;
    anything not under a ``repro`` directory (the fixture corpus, scratch
    scripts) maps to ``None``, which makes *every* rule apply.
    """
    parts = list(path.parts)
    if path.suffix == ".py":
        parts[-1] = path.stem
    try:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
    except ValueError:
        return None
    dotted = parts[anchor:]
    if dotted and dotted[-1] == "__init__":
        dotted = dotted[:-1]
    return ".".join(dotted)


def _apply_pragmas(
    violations: Sequence[Violation], pragmas: Sequence[Pragma], path: str
) -> List[Violation]:
    """Drop suppressed violations; add RPL000 for reason-less pragmas."""
    suppressed: Dict[int, frozenset] = {}
    results: List[Violation] = []
    for pragma in pragmas:
        if not pragma.reason or not pragma.codes:
            results.append(
                Violation(
                    PRAGMA_RULE_ID,
                    "suppression pragma without a justification; write "
                    "'# reprolint: disable=RPL00x reason=...'",
                    path,
                    pragma.line,
                )
            )
            continue
        lines = [pragma.line, pragma.line + 1] if pragma.standalone else [pragma.line]
        for line in lines:
            suppressed[line] = suppressed.get(line, frozenset()) | pragma.codes
    for violation in violations:
        if violation.rule_id in suppressed.get(violation.line, frozenset()):
            continue
        results.append(violation)
    return results


def _parse_violation(path: str, error: SyntaxError) -> Violation:
    return Violation(
        PARSE_RULE_ID,
        f"file does not parse: {error.msg}",
        path,
        error.lineno or 1,
    )


def _run_rules(
    context: ModuleContext, rules: Sequence[Rule]
) -> List[Violation]:
    for rule in rules:
        if not rule.applies_to(context.module):
            continue
        rule.factory(context).visit(context.tree)
    violations = _apply_pragmas(
        context.violations, parse_pragmas(context.source), context.path
    )
    return sorted(violations, key=lambda v: (v.line, v.rule_id))


def analyze_source(
    source: str,
    rules: Sequence[Rule],
    *,
    path: str = "<string>",
    module: Optional[str] = None,
) -> List[Violation]:
    """Run every applicable rule over one module's source text.

    The flow analysis here covers just this module, so interprocedural
    queries resolve same-module calls and degrade (conservatively) on
    anything imported.  ``analyze_project`` is the whole-program entry.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [_parse_violation(path, error)]
    project_module = ProjectModule(path=path, module=module, tree=tree)
    flow = FlowAnalysis([project_module])
    context = ModuleContext(
        path=path,
        module=module,
        source=source,
        tree=tree,
        flow=flow,
        flow_key=project_module.key,
    )
    return _run_rules(context, rules)


def analyze_project(
    paths: Sequence[Path], rules: Sequence[Rule]
) -> List[Violation]:
    """Analyze many files against ONE whole-program flow analysis.

    Every file is parsed exactly once; the union of the parseable modules
    forms the call graph, so a notification made one call level below a
    mutation -- even in a different module -- satisfies RPL001/RPL002.
    Unparseable files report :data:`PARSE_RULE_ID` and simply do not
    contribute symbols (their callers degrade to "may call anything").
    """
    violations: List[Violation] = []
    parsed: List[Tuple[Path, str, Optional[str], ast.Module]] = []
    modules: List[ProjectModule] = []
    for path in paths:
        source = path.read_text(encoding="utf-8")
        module = infer_module(path)
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as error:
            violations.append(_parse_violation(str(path), error))
            continue
        parsed.append((path, source, module, tree))
        modules.append(ProjectModule(path=str(path), module=module, tree=tree))
    flow = FlowAnalysis(modules)
    for (path, source, module, tree), project_module in zip(parsed, modules):
        context = ModuleContext(
            path=str(path),
            module=module,
            source=source,
            tree=tree,
            flow=flow,
            flow_key=project_module.key,
        )
        violations.extend(_run_rules(context, rules))
    return violations


def analyze_file(path: Path, rules: Sequence[Rule]) -> List[Violation]:
    """Analyze one file on disk (module name inferred from its path)."""
    source = path.read_text(encoding="utf-8")
    return analyze_source(
        source, rules, path=str(path), module=infer_module(path)
    )
