"""Core of the contract checker: rules, violations, pragmas, the driver.

A *rule* pairs a machine-readable id (``RPL001`` ...) with a factory that
builds an :class:`ast.NodeVisitor` over one module and a *scope* predicate
deciding which modules the rule guards (the byte-identity rule, for
example, only guards :mod:`repro.geometry.index` and the selection family).
Checkers report through :meth:`ModuleContext.report`; the driver then folds
in the per-line suppression pragmas and returns the surviving violations.

Suppression pragma grammar (one line of scope, trailing or on the line
immediately above)::

    # reprolint: disable=RPL003 reason=entry[0] is a tuple; order is fixed
    # reprolint: disable=RPL001,RPL002 reason=constructor, nothing attached

A pragma without a non-empty ``reason=`` is itself reported as
:data:`PRAGMA_RULE_ID` (RPL000) and cannot be suppressed.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

__all__ = [
    "PRAGMA_RULE_ID",
    "PARSE_RULE_ID",
    "Violation",
    "Pragma",
    "Rule",
    "ModuleContext",
    "parse_pragmas",
    "infer_module",
    "analyze_source",
    "analyze_file",
]

#: Rule id reported for malformed (reason-less) suppression pragmas.
PRAGMA_RULE_ID = "RPL000"
#: Rule id reported when a file cannot be parsed at all.
PARSE_RULE_ID = "RPL999"

_PRAGMA_PATTERN = re.compile(
    r"#\s*reprolint:\s*disable=(?P<codes>[A-Za-z0-9_,\s]*?)"
    r"(?:\s+reason=(?P<reason>[^#]*))?\s*(?:#|$)"
)


@dataclass(frozen=True)
class Violation:
    """One contract violation at one source line."""

    rule_id: str
    message: str
    path: str
    line: int

    def render(self) -> str:
        """``path:line: RULE message`` -- the one-line report format."""
        return f"{self.path}:{self.line}: {self.rule_id} {self.message}"


@dataclass(frozen=True)
class Pragma:
    """One parsed ``# reprolint: disable=...`` suppression comment."""

    line: int
    codes: frozenset
    reason: str
    #: ``True`` when the comment is alone on its line, in which case it
    #: suppresses the *next* line as well as its own.
    standalone: bool


@dataclass(frozen=True)
class Rule:
    """One registered contract rule."""

    rule_id: str
    name: str
    invariant: str
    factory: Callable[["ModuleContext"], ast.NodeVisitor]
    #: Predicate over the dotted module name (``None`` for files outside the
    #: ``repro`` package, which every rule guards so the fixture corpus and
    #: stray scripts get full checking).
    scope: Callable[[Optional[str]], bool] = lambda module: True

    def applies_to(self, module: Optional[str]) -> bool:
        """Whether this rule guards the given module (``None`` = always)."""
        return module is None or self.scope(module)


@dataclass
class ModuleContext:
    """Everything a checker may need about the module under analysis."""

    path: str
    module: Optional[str]
    source: str
    tree: ast.Module
    violations: List[Violation] = field(default_factory=list)

    def report(self, rule_id: str, line: int, message: str) -> None:
        """Record one violation (suppression is applied by the driver)."""
        self.violations.append(Violation(rule_id, message, self.path, line))


def parse_pragmas(source: str) -> List[Pragma]:
    """Extract every ``reprolint`` pragma comment with its line and scope."""
    pragmas: List[Pragma] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _PRAGMA_PATTERN.search(token.string)
            if match is None:
                continue
            codes = frozenset(
                code.strip().upper()
                for code in match.group("codes").split(",")
                if code.strip()
            )
            reason = (match.group("reason") or "").strip()
            prefix = token.line[: token.start[1]]
            pragmas.append(
                Pragma(
                    line=token.start[0],
                    codes=codes,
                    reason=reason,
                    standalone=not prefix.strip(),
                )
            )
    except tokenize.TokenizeError:
        # A file tokenize cannot handle will not parse either; the driver
        # reports the parse failure, so silently yield no pragmas here.
        return []
    return pragmas


def infer_module(path: Path) -> Optional[str]:
    """Dotted module name for files under a ``repro`` package root.

    ``src/repro/geometry/index.py`` maps to ``repro.geometry.index``;
    anything not under a ``repro`` directory (the fixture corpus, scratch
    scripts) maps to ``None``, which makes *every* rule apply.
    """
    parts = list(path.parts)
    if path.suffix == ".py":
        parts[-1] = path.stem
    try:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
    except ValueError:
        return None
    dotted = parts[anchor:]
    if dotted and dotted[-1] == "__init__":
        dotted = dotted[:-1]
    return ".".join(dotted)


def _apply_pragmas(
    violations: Sequence[Violation], pragmas: Sequence[Pragma], path: str
) -> List[Violation]:
    """Drop suppressed violations; add RPL000 for reason-less pragmas."""
    suppressed: Dict[int, frozenset] = {}
    results: List[Violation] = []
    for pragma in pragmas:
        if not pragma.reason or not pragma.codes:
            results.append(
                Violation(
                    PRAGMA_RULE_ID,
                    "suppression pragma without a justification; write "
                    "'# reprolint: disable=RPL00x reason=...'",
                    path,
                    pragma.line,
                )
            )
            continue
        lines = [pragma.line, pragma.line + 1] if pragma.standalone else [pragma.line]
        for line in lines:
            suppressed[line] = suppressed.get(line, frozenset()) | pragma.codes
    for violation in violations:
        if violation.rule_id in suppressed.get(violation.line, frozenset()):
            continue
        results.append(violation)
    return results


def analyze_source(
    source: str,
    rules: Sequence[Rule],
    *,
    path: str = "<string>",
    module: Optional[str] = None,
) -> List[Violation]:
    """Run every applicable rule over one module's source text."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [
            Violation(
                PARSE_RULE_ID,
                f"file does not parse: {error.msg}",
                path,
                error.lineno or 1,
            )
        ]
    context = ModuleContext(path=path, module=module, source=source, tree=tree)
    for rule in rules:
        if not rule.applies_to(module):
            continue
        rule.factory(context).visit(tree)
    violations = _apply_pragmas(context.violations, parse_pragmas(source), path)
    return sorted(violations, key=lambda v: (v.line, v.rule_id))


def analyze_file(path: Path, rules: Sequence[Rule]) -> List[Violation]:
    """Analyze one file on disk (module name inferred from its path)."""
    source = path.read_text(encoding="utf-8")
    return analyze_source(
        source, rules, path=str(path), module=infer_module(path)
    )
