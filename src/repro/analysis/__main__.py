"""``python -m repro.analysis`` -- run the contract checkers from a shell."""

import sys

from repro.analysis.runner import main

if __name__ == "__main__":
    sys.exit(main())
