"""Minimal SARIF 2.1.0 rendering of reprolint reports.

Just enough of the standard for GitHub code scanning to ingest: one run,
one driver, the rule metadata of every registered rule, and one ``result``
per violation with a physical location.  Everything is plain data so the
output is byte-stable for identical inputs (rules and results are emitted
in registry / report order).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from repro.analysis.core import PARSE_RULE_ID, PRAGMA_RULE_ID, Rule, Violation

__all__ = ["SARIF_VERSION", "sarif_report", "render_sarif"]

SARIF_VERSION = "2.1.0"
_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Rule ids the framework itself owns (not in the registry tuple).
_FRAMEWORK_RULES = {
    PRAGMA_RULE_ID: "suppression pragmas must carry a reason= justification",
    PARSE_RULE_ID: "every analyzed file must parse",
}


def _rule_descriptor(rule_id: str, name: str, description: str) -> Dict[str, Any]:
    return {
        "id": rule_id,
        "name": name,
        "shortDescription": {"text": description},
        "defaultConfiguration": {"level": "error"},
    }


def sarif_report(
    violations: Sequence[Violation], rules: Sequence[Rule]
) -> Dict[str, Any]:
    """Build the SARIF document as plain JSON-ready data."""
    descriptors: List[Dict[str, Any]] = [
        _rule_descriptor(rule.rule_id, rule.name, rule.invariant) for rule in rules
    ]
    for rule_id, description in sorted(_FRAMEWORK_RULES.items()):
        descriptors.append(
            _rule_descriptor(rule_id, rule_id.lower(), description)
        )
    results: List[Dict[str, Any]] = []
    for violation in violations:
        results.append(
            {
                "ruleId": violation.rule_id,
                "level": "error",
                "message": {"text": violation.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": violation.path.replace("\\", "/"),
                            },
                            "region": {"startLine": max(violation.line, 1)},
                        }
                    }
                ],
            }
        )
    return {
        "$schema": _SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "rules": descriptors,
                    }
                },
                "results": results,
            }
        ],
    }


def render_sarif(violations: Sequence[Violation], rules: Sequence[Rule]) -> str:
    """Serialize the SARIF document (stable key order, 2-space indent)."""
    return json.dumps(sarif_report(violations, rules), indent=2, sort_keys=False)
