"""reprolint: mechanical enforcement of the repo's load-bearing contracts.

The ROADMAP carries three "MUST" contracts that, until this package existed,
were enforced only by hypothesis suites catching divergence *after* it
shipped:

* every mutation of ``OverlayNetwork._neighbours`` must notify the attached
  delta recorders (the delta-stream contract of
  :mod:`repro.overlay.incremental`),
* every membership or coordinate mutation must keep the overlay's owned
  :class:`~repro.geometry.index.SpatialIndex` in sync,
* byte-identity-critical code (the spatial index and the selection family)
  must preserve exact float summation order and tie-breaks, and all of
  ``src/repro`` must stay deterministic under a fixed seed.

``repro.analysis`` turns each contract into an AST-level rule with a
machine-readable id:

========  ==============================================================
RPL001    delta-stream: ``_neighbours`` mutations must notify recorders
RPL002    index-sync: peer/coordinate mutations must maintain the index
RPL003    byte-identity: no unordered float accumulation in guarded modules
RPL004    determinism: no global RNG, unseeded RNG, or wall-clock reads
RPL000    a suppression pragma without a justification is itself an error
========  ==============================================================

Run it as ``python -m repro.analysis [paths...]`` (exit status 0 iff clean),
through the ``lint`` CLI subcommand (``python -m repro.cli lint``), or from
pytest via the self-check in ``tests/analysis/test_self_check.py``.  A rule
is suppressed per line with an *explained* inline pragma::

    acc = sum(block)  # reprolint: disable=RPL003 reason=block is a sorted list

Bare suppressions (no ``reason=``) are reported as RPL000 and are not
themselves suppressible.
"""

from repro.analysis.bench_schema import (
    BENCH_RECORD_SCHEMA,
    validate_bench_directory,
    validate_bench_record,
)
from repro.analysis.core import (
    ModuleContext,
    Pragma,
    Rule,
    Violation,
    analyze_source,
    parse_pragmas,
)
from repro.analysis.runner import all_rules, lint_paths, main

__all__ = [
    "BENCH_RECORD_SCHEMA",
    "ModuleContext",
    "Pragma",
    "Rule",
    "Violation",
    "all_rules",
    "analyze_source",
    "lint_paths",
    "main",
    "parse_pragmas",
    "validate_bench_directory",
    "validate_bench_record",
]
