"""reprolint: mechanical enforcement of the repo's load-bearing contracts.

The ROADMAP carries three "MUST" contracts that, until this package existed,
were enforced only by hypothesis suites catching divergence *after* it
shipped:

* every mutation of ``OverlayNetwork._neighbours`` must notify the attached
  delta recorders (the delta-stream contract of
  :mod:`repro.overlay.incremental`),
* every membership or coordinate mutation must keep the overlay's owned
  :class:`~repro.geometry.index.SpatialIndex` in sync,
* byte-identity-critical code (the spatial index and the selection family)
  must preserve exact float summation order and tie-breaks, and all of
  ``src/repro`` must stay deterministic under a fixed seed.

``repro.analysis`` turns each contract into an AST-level rule with a
machine-readable id.  Since reprolint v2 the rules run against a
whole-program call graph (:mod:`repro.analysis.flow`), so RPL001/RPL002
obligations may be satisfied by a *provably called* helper any number of
call levels down, and three flow-powered rules guard the ROADMAP's next
invariants:

========  ==============================================================
RPL001    delta-stream: ``_neighbours`` mutations must notify recorders
          (directly or via a transitively-called function)
RPL002    index-sync: peer/coordinate mutations must maintain the index
          (directly or via a transitively-called function)
RPL003    byte-identity: no unordered float accumulation in guarded modules
RPL004    determinism: no global RNG, unseeded RNG, or wall-clock reads
RPL005    hot-path complexity: no O(population) work reachable from a
          ``@hot_path`` entry (:func:`repro.contracts.hot_path`)
RPL006    purity: ``path_independent`` selection classes never write
          attributes outside ``__init__`` nor read mutable module globals
          on select paths
RPL007    exception-safety: ``ConvergenceError`` handlers around an
          incremental converge invalidate the engine before resuming
RPL000    a suppression pragma without a justification is itself an error
========  ==============================================================

Run it as ``python -m repro.analysis [paths...]`` or through the ``lint``
CLI subcommand (``python -m repro.cli lint``, same flags), or from pytest
via the self-check in ``tests/analysis/test_self_check.py``.  Exit codes:
0 clean, 1 findings (contract violations and/or bench-schema errors),
2 parse-or-config error (an analyzed file does not parse, or an unknown
rule id was passed to ``--select``/``--ignore``).  ``--format`` renders
``text``, ``json`` or ``sarif`` (SARIF 2.1.0, for code-scanning upload);
``--select``/``--ignore`` filter rules by id.  A rule is suppressed per
line with an *explained* inline pragma::

    acc = sum(block)  # reprolint: disable=RPL003 reason=block is a sorted list

Bare suppressions (no ``reason=``) are reported as RPL000 and are not
themselves suppressible.
"""

from repro.analysis.bench_schema import (
    BENCH_RECORD_SCHEMA,
    validate_bench_directory,
    validate_bench_record,
)
from repro.analysis.core import (
    ModuleContext,
    Pragma,
    Rule,
    Violation,
    analyze_project,
    analyze_source,
    parse_pragmas,
)
from repro.analysis.flow import FlowAnalysis
from repro.analysis.runner import all_rules, lint_paths, main, resolve_selection
from repro.analysis.sarif import render_sarif

__all__ = [
    "BENCH_RECORD_SCHEMA",
    "FlowAnalysis",
    "ModuleContext",
    "Pragma",
    "Rule",
    "Violation",
    "all_rules",
    "analyze_project",
    "analyze_source",
    "lint_paths",
    "main",
    "parse_pragmas",
    "render_sarif",
    "resolve_selection",
    "validate_bench_directory",
    "validate_bench_record",
]
