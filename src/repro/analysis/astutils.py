"""Shared AST plumbing for the contract checkers and the flow engine.

This module is a dependency leaf (it imports only :mod:`ast`), which is
what lets :mod:`repro.analysis.flow` and the checkers share one vocabulary
without an import cycle: ``core`` imports ``flow``, ``flow`` imports only
this module, and the checker modules import both.

The helpers are deliberately *syntactic*: they track names, attribute
chains and same-scope aliases rather than attempting type inference, so
every consumer draws the same line between "provably fine", "needs a
justified pragma" and "violation".
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

__all__ = [
    "SET_MUTATORS",
    "dotted_name",
    "own_nodes",
    "iter_functions",
    "is_setlike",
]

#: Method names that mutate a ``set`` / ``dict`` in place.
SET_MUTATORS = frozenset(
    {
        "add",
        "discard",
        "remove",
        "update",
        "clear",
        "pop",
        "popitem",
        "setdefault",
        "difference_update",
        "intersection_update",
        "symmetric_difference_update",
    }
)

_SCOPE_BOUNDARIES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, ``None`` for anything else."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        if base is None:
            return None
        return f"{base}.{node.attr}"
    return None


def own_nodes(function: ast.AST) -> Iterator[ast.AST]:
    """Every node of a function's own body, not descending into nested defs.

    Nested functions and classes are separate scopes with their own
    notification obligations, so a mutation inside a closure never borrows
    an outer scope's notification call (and vice versa).
    """
    stack: List[ast.AST] = list(ast.iter_child_nodes(function))
    while stack:
        node = stack.pop()
        if isinstance(node, _SCOPE_BOUNDARIES):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def iter_functions(
    tree: ast.Module,
) -> Iterator[Tuple[ast.AST, Optional[str]]]:
    """Yield ``(function, enclosing_class_name)`` for every def in a module."""
    stack: List[Tuple[ast.AST, Optional[str]]] = [(tree, None)]
    while stack:
        node, class_name = stack.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                stack.append((child, child.name))
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, class_name
                stack.append((child, class_name))
            else:
                stack.append((child, class_name))


def is_setlike(node: ast.AST, setlike_names: Set[str]) -> bool:
    """Whether an expression syntactically produces a ``set`` or ``dict``.

    Covers literals and comprehensions, ``set()``/``frozenset()``/``dict()``
    constructor calls, ``.keys()``/``.values()``/``.items()`` views, set
    algebra over any of those, and local names recorded in
    ``setlike_names`` (maintained by the caller from same-scope
    assignments).  Lists and tuples are ordered, hence never set-like.
    """
    if isinstance(node, (ast.Set, ast.SetComp, ast.Dict, ast.DictComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in setlike_names
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name in {"set", "frozenset", "dict"}:
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in {
            "keys",
            "values",
            "items",
        }:
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in {
            "union",
            "intersection",
            "difference",
            "symmetric_difference",
            "copy",
        }:
            return is_setlike(node.func.value, setlike_names)
        return False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return is_setlike(node.left, setlike_names) or is_setlike(
            node.right, setlike_names
        )
    return False
