"""Peer population generators: coordinates + addresses (+ lifetimes).

These helpers assemble :class:`~repro.overlay.peer.PeerInfo` populations from
the coordinate and lifetime generators, reproducing the two experimental
setups of the paper:

* Section 2: peers with uniformly random identifiers (no lifetimes).
* Section 3: peers with known departure times embedded as the first
  coordinate (``x(P, 1) = T(P)``), the remaining coordinates random.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.geometry.point import Point
from repro.overlay.peer import PeerInfo, make_peer
from repro.workloads.coordinates import DEFAULT_VMAX, distinct_uniform_coordinates
from repro.workloads.lifetimes import uniform_lifetimes

__all__ = ["generate_peers", "generate_peers_with_lifetimes"]


def generate_peers(
    count: int,
    dimension: int,
    *,
    vmax: float = DEFAULT_VMAX,
    seed: Optional[int] = None,
) -> List[PeerInfo]:
    """Section 2 population: ``count`` peers with random distinct identifiers."""
    coordinates = distinct_uniform_coordinates(count, dimension, vmax=vmax, seed=seed)
    return [make_peer(peer_id, coords) for peer_id, coords in enumerate(coordinates)]


def generate_peers_with_lifetimes(
    count: int,
    dimension: int,
    *,
    vmax: float = DEFAULT_VMAX,
    lifetime_horizon: Optional[float] = None,
    seed: Optional[int] = None,
) -> List[PeerInfo]:
    """Section 3 population: lifetimes embedded as the first coordinate.

    The lifetime of peer ``P`` becomes ``x(P, 1)``; the remaining ``D - 1``
    coordinates are drawn uniformly.  Lifetimes are drawn from
    ``(0, lifetime_horizon)`` (default ``vmax``, so the embedded coordinate
    stays inside the virtual space).
    """
    if dimension < 1:
        raise ValueError("dimension must be at least 1")
    horizon = vmax if lifetime_horizon is None else lifetime_horizon
    rng = random.Random(0 if seed is None else seed)
    lifetimes = uniform_lifetimes(count, horizon=horizon, rng=rng)
    if dimension == 1:
        other_axes: List[Point] = [Point((0.0,)) for _ in range(count)]
        coordinates = [Point((lifetime,)) for lifetime in lifetimes]
    else:
        other_axes = distinct_uniform_coordinates(count, dimension - 1, vmax=vmax, rng=rng)
        coordinates = [
            Point((lifetime,) + tuple(other))
            for lifetime, other in zip(lifetimes, other_axes)
        ]
    return [
        make_peer(peer_id, coords, lifetime=lifetime)
        for peer_id, (coords, lifetime) in enumerate(zip(coordinates, lifetimes))
    ]
