"""Workload generation: virtual coordinates, lifetimes and churn schedules.

The paper's experiments draw peer coordinates uniformly at random, insert the
peers one at a time, and (in Section 3) additionally assign every peer a
departure time ``T(P)`` which becomes its first coordinate.  This package
generates those workloads reproducibly (explicit seeds everywhere) and offers
a few extra generators (clustered coordinates, grid coordinates, lease- and
battery-style lifetimes, churn schedules) used by the examples and ablations.
"""

from repro.workloads.coordinates import (
    clustered_coordinates,
    distinct_uniform_coordinates,
    grid_coordinates,
)
from repro.workloads.lifetimes import (
    battery_lifetimes,
    lease_lifetimes,
    uniform_lifetimes,
)
from repro.workloads.churn import (
    ChurnEvent,
    departure_schedule,
    interleaved_join_leave_schedule,
    poisson_churn_schedule,
)
from repro.workloads.peers import generate_peers, generate_peers_with_lifetimes
from repro.workloads.traces import (
    ChurnTrace,
    EventBatch,
    diurnal_trace,
    flash_crowd_trace,
    mass_departure_trace,
    poisson_trace,
)

__all__ = [
    "distinct_uniform_coordinates",
    "clustered_coordinates",
    "grid_coordinates",
    "uniform_lifetimes",
    "lease_lifetimes",
    "battery_lifetimes",
    "ChurnEvent",
    "departure_schedule",
    "poisson_churn_schedule",
    "interleaved_join_leave_schedule",
    "generate_peers",
    "generate_peers_with_lifetimes",
    "EventBatch",
    "ChurnTrace",
    "poisson_trace",
    "flash_crowd_trace",
    "mass_departure_trace",
    "diurnal_trace",
]
