"""Churn schedules: ordered sequences of peer arrivals and departures.

The paper inserts peers one at a time and lets the overlay converge between
insertions; Section 3 additionally reasons about departures happening in
lifetime order.  A :class:`ChurnEvent` sequence captures both, and is what the
simulation runner and the ablation benchmarks consume.

The batched-epoch pipeline expresses churn as :class:`~repro.workloads.traces.ChurnTrace`
values instead -- timestamped event *batches* -- and
:meth:`~repro.workloads.traces.ChurnTrace.from_schedule` /
:meth:`~repro.workloads.traces.ChurnTrace.to_schedule` convert between the
two representations losslessly, so every generator here remains usable from
either pipeline.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

__all__ = [
    "ChurnEvent",
    "departure_schedule",
    "poisson_churn_schedule",
    "interleaved_join_leave_schedule",
]

#: Default workload seed of the schedule generators.  The default is an
#: explicit ``0`` -- two unseeded calls return the *same* schedule -- so
#: experiments are reproducible unless the caller opts out by passing
#: ``seed=None`` (a nondeterministically seeded run) or a shared ``rng``.
DEFAULT_SEED = 0


def _resolve_rng(seed: Optional[int], rng: Optional[random.Random]) -> random.Random:
    """Shared seed/rng resolution of the schedule generators.

    ``rng`` wins when given (the ``seed`` keyword must stay at its default
    or ``None``); otherwise ``seed`` is used verbatim, with ``None`` meaning
    a nondeterministic system seed.
    """
    if rng is not None:
        if seed is not None and seed != DEFAULT_SEED:
            raise ValueError("pass either seed or rng, not both")
        return rng
    if seed is None:
        # reprolint: disable=RPL004 reason=seed=None is the documented opt-in to a nondeterministic system seed (seeding contract, PR 4)
        return random.Random()
    return random.Random(seed)


@dataclass(frozen=True, order=True)
class ChurnEvent:
    """A single arrival, departure or identifier move.

    Events order by time (then peer id, then kind) so a list of events can be
    sorted into a schedule directly.  A ``"move"`` carries the peer's new
    virtual coordinates (the batched-epoch pipeline applies it through
    ``OverlayNetwork.move_peer``); joins and leaves carry none.  The
    coordinates are excluded from the ordering so mixed-kind lists stay
    sortable; :func:`sorted` is stable, so same-time moves keep their order.
    """

    time: float
    peer_id: int
    kind: str  # "join", "leave" or "move"
    coordinates: Optional[Tuple[float, ...]] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in ("join", "leave", "move"):
            raise ValueError(f"kind must be 'join', 'leave' or 'move', got {self.kind!r}")
        if self.time < 0:
            raise ValueError("event time must be non-negative")
        if self.kind == "move":
            if self.coordinates is None:
                raise ValueError("a move event must carry the new coordinates")
            object.__setattr__(self, "coordinates", tuple(self.coordinates))
        elif self.coordinates is not None:
            raise ValueError(f"a {self.kind!r} event cannot carry coordinates")


def departure_schedule(lifetimes: Sequence[float]) -> List[ChurnEvent]:
    """Departure events for peers whose index is their id, ordered by lifetime.

    This is exactly the departure process Section 3 reasons about: peer ``i``
    leaves at time ``T(i)``, and peers with smaller lifetimes leave first.
    """
    events = [
        ChurnEvent(time=float(lifetime), peer_id=index, kind="leave")
        for index, lifetime in enumerate(lifetimes)
    ]
    return sorted(events)


def poisson_churn_schedule(
    count: int,
    *,
    arrival_rate: float = 1.0,
    session_mean: float = 100.0,
    seed: Optional[int] = DEFAULT_SEED,
    rng: Optional[random.Random] = None,
) -> List[ChurnEvent]:
    """Poisson arrivals with exponential session lengths.

    A generic churn model (not from the paper) used by the churn ablation to
    compare stability trees against lifetime-oblivious trees under realistic
    arrival/departure interleavings.  Every peer both joins and leaves.

    ``seed`` defaults to ``0`` (unseeded calls are deterministic and
    identical across runs); pass ``seed=None`` for a nondeterministic
    schedule or ``rng`` to draw from shared generator state.
    """
    if arrival_rate <= 0:
        raise ValueError("arrival_rate must be positive")
    if session_mean <= 0:
        raise ValueError("session_mean must be positive")
    generator = _resolve_rng(seed, rng)

    events: List[ChurnEvent] = []
    clock = 0.0
    for peer_id in range(count):
        clock += generator.expovariate(arrival_rate)
        departure = clock + generator.expovariate(1.0 / session_mean)
        events.append(ChurnEvent(time=clock, peer_id=peer_id, kind="join"))
        events.append(ChurnEvent(time=departure, peer_id=peer_id, kind="leave"))
    return sorted(events)


def interleaved_join_leave_schedule(
    count: int,
    *,
    join_interval: float = 2.0,
    leave_fraction: float = 0.2,
    holdoff: float = 6.0,
    seed: Optional[int] = DEFAULT_SEED,
    rng: Optional[random.Random] = None,
) -> List[ChurnEvent]:
    """Paper-style staggered joins with a sampled fraction of leaves mixed in.

    Peer ``i`` joins at ``i * join_interval`` (the paper's one-at-a-time
    insertion procedure); a seeded sample of ``leave_fraction`` of the peers
    additionally leaves at a uniform time between its own join plus
    ``holdoff`` (so a peer is settled into the overlay before it departs)
    and the end of the join phase plus ``holdoff``.  The last-joining peer
    never leaves, so a bootstrap contact is always available.  This is the
    workload the message-level churn replay runs: join-driven candidate
    gains interleaved with departure-driven losses.

    ``seed`` defaults to ``0`` (unseeded calls are deterministic and
    identical across runs); pass ``seed=None`` for a nondeterministic
    schedule or ``rng`` to draw from shared generator state.
    """
    if count < 1:
        raise ValueError("count must be positive")
    if join_interval <= 0:
        raise ValueError("join_interval must be positive")
    if not 0.0 <= leave_fraction < 1.0:
        raise ValueError("leave_fraction must be in [0, 1)")
    if holdoff < 0:
        raise ValueError("holdoff must be non-negative")
    generator = _resolve_rng(seed, rng)

    events = [
        ChurnEvent(time=index * join_interval, peer_id=index, kind="join")
        for index in range(count)
    ]
    join_span = (count - 1) * join_interval
    leavers = generator.sample(range(count - 1), int((count - 1) * leave_fraction))
    for peer_id in sorted(leavers):
        earliest = peer_id * join_interval + holdoff
        departure = generator.uniform(earliest, max(join_span + holdoff, earliest))
        events.append(ChurnEvent(time=departure, peer_id=peer_id, kind="leave"))
    return sorted(events)
