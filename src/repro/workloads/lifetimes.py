"""Lifetime (departure time) generators for the stability experiments.

Section 3 of the paper assumes every peer ``P`` knows the time ``T(P)`` at
which it will leave the system, and motivates the assumption with two
scenarios: cloud applications running on leased virtual machines, and sensor
nodes that know the remaining battery lifetime.  The three generators below
correspond to the paper's "randomly generated" lifetimes and to those two
motivating scenarios.

All generators return *distinct* lifetimes, because Section 3 assumes all
``T(*)`` values are distinct (ties broken by peer-specific properties).
"""

from __future__ import annotations

import random
from typing import List, Optional

__all__ = ["uniform_lifetimes", "lease_lifetimes", "battery_lifetimes"]


def _resolve_rng(seed: Optional[int], rng: Optional[random.Random]) -> random.Random:
    if rng is not None and seed is not None:
        raise ValueError("pass either seed or rng, not both")
    if rng is not None:
        return rng
    return random.Random(0 if seed is None else seed)


def _make_distinct(values: List[float], rng: random.Random) -> List[float]:
    seen: set = set()
    result = []
    for value in values:
        while value in seen:
            value += rng.uniform(1e-9, 1e-6)
        seen.add(value)
        result.append(value)
    return result


def uniform_lifetimes(
    count: int,
    *,
    horizon: float = 1000.0,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> List[float]:
    """Departure times drawn uniformly from ``(0, horizon)``.

    This matches the paper's experiments ("the T(*) values of the peers ...
    were randomly generated").
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    generator = _resolve_rng(seed, rng)
    return _make_distinct([generator.uniform(0.0, horizon) for _ in range(count)], generator)


def lease_lifetimes(
    count: int,
    *,
    lease_durations: Optional[List[float]] = None,
    start_horizon: float = 100.0,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> List[float]:
    """Cloud-lease departure times: random start plus one of a few fixed lease lengths.

    Models the paper's cloud-computing motivation where nodes are applications
    on virtual machines leased for fixed periods (e.g. 1h / 6h / 24h leases).
    """
    generator = _resolve_rng(seed, rng)
    durations = lease_durations if lease_durations is not None else [60.0, 360.0, 1440.0]
    if not durations or any(d <= 0 for d in durations):
        raise ValueError("lease durations must be positive and non-empty")
    values = [
        generator.uniform(0.0, start_horizon) + generator.choice(durations)
        for _ in range(count)
    ]
    return _make_distinct(values, generator)


def battery_lifetimes(
    count: int,
    *,
    mean: float = 500.0,
    spread: float = 0.5,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> List[float]:
    """Sensor-battery departure times: log-normal-ish remaining lifetimes.

    Models the wireless-sensor-network motivation: most sensors have similar
    remaining battery, a few are nearly drained, a few last much longer.
    ``spread`` is the relative standard deviation.
    """
    if mean <= 0:
        raise ValueError("mean must be positive")
    if spread <= 0:
        raise ValueError("spread must be positive")
    generator = _resolve_rng(seed, rng)
    values = [max(1e-3, generator.lognormvariate(0.0, spread) * mean) for _ in range(count)]
    return _make_distinct(values, generator)
