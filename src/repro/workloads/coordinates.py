"""Virtual coordinate generators.

Every generator returns a list of :class:`~repro.geometry.point.Point` whose
per-dimension coordinates are pairwise distinct, matching the paper's
w.l.o.g. assumption.  Distinctness is what makes orthant classification
unambiguous, so the generators enforce it rather than hoping that floating
point draws never collide.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.geometry.point import Point

__all__ = [
    "distinct_uniform_coordinates",
    "clustered_coordinates",
    "grid_coordinates",
    "DEFAULT_VMAX",
]

DEFAULT_VMAX = 1000.0


def _distinct_values(count: int, vmax: float, rng: random.Random) -> List[float]:
    """Draw ``count`` distinct values from ``(0, vmax)``.

    Uniform draws over floats collide with negligible probability, but the
    overlay algorithms genuinely require distinctness, so collisions are
    re-drawn instead of ignored.
    """
    values: set = set()
    while len(values) < count:
        values.add(rng.uniform(0.0, vmax))
    result = list(values)
    rng.shuffle(result)
    return result


def distinct_uniform_coordinates(
    count: int,
    dimension: int,
    *,
    vmax: float = DEFAULT_VMAX,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> List[Point]:
    """Uniform random identifiers with distinct per-dimension coordinates.

    This is the workload of every experiment in the paper ("the coordinates
    of each peer were randomly generated").

    Parameters
    ----------
    count:
        Number of peers ``N``.
    dimension:
        Dimension ``D`` of the coordinate space.
    vmax:
        Upper bound of every coordinate (the paper's ``VMAX``).
    seed, rng:
        Seed for a fresh :class:`random.Random`, or an existing generator.
        Exactly one of the two may be given; with neither, a fixed default
        seed of ``0`` is used so results are reproducible by default.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if dimension < 1:
        raise ValueError("dimension must be at least 1")
    if vmax <= 0:
        raise ValueError("vmax must be positive")
    generator = _resolve_rng(seed, rng)
    per_dimension = [_distinct_values(count, vmax, generator) for _ in range(dimension)]
    return [
        Point(per_dimension[axis][index] for axis in range(dimension))
        for index in range(count)
    ]


def clustered_coordinates(
    count: int,
    dimension: int,
    *,
    clusters: int = 4,
    spread: float = 0.05,
    vmax: float = DEFAULT_VMAX,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> List[Point]:
    """Identifiers clustered around a few random centres.

    Clustered identifiers stress the neighbour selection methods (regions
    become unbalanced) and are used by the ablation benchmarks; the paper
    itself only evaluates uniform identifiers.

    ``spread`` is the cluster standard deviation as a fraction of ``vmax``.
    Coordinates are clamped to ``[0, vmax]`` and then nudged to be distinct.
    """
    if clusters < 1:
        raise ValueError("clusters must be at least 1")
    if spread <= 0:
        raise ValueError("spread must be positive")
    generator = _resolve_rng(seed, rng)
    centres = [
        [generator.uniform(0.0, vmax) for _ in range(dimension)] for _ in range(clusters)
    ]
    raw: List[List[float]] = []
    for _ in range(count):
        centre = generator.choice(centres)
        raw.append(
            [
                min(vmax, max(0.0, generator.gauss(c, spread * vmax)))
                for c in centre
            ]
        )
    return _deduplicate_axes(raw, vmax, generator)


def grid_coordinates(
    side: int,
    dimension: int,
    *,
    vmax: float = DEFAULT_VMAX,
    jitter: float = 1e-3,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> List[Point]:
    """Identifiers on a jittered regular grid (``side ** dimension`` peers).

    Exact grids violate the distinct-coordinate assumption (all peers in a
    grid column share a coordinate), so a small jitter is applied and then
    per-axis distinctness is enforced.
    """
    if side < 1:
        raise ValueError("side must be at least 1")
    generator = _resolve_rng(seed, rng)
    step = vmax / (side + 1)
    raw: List[List[float]] = []

    def build(prefix: List[float]) -> None:
        if len(prefix) == dimension:
            raw.append(list(prefix))
            return
        for i in range(1, side + 1):
            coordinate = i * step + generator.uniform(-jitter, jitter) * step
            build(prefix + [coordinate])

    build([])
    return _deduplicate_axes(raw, vmax, generator)


def _deduplicate_axes(
    raw: List[List[float]], vmax: float, rng: random.Random
) -> List[Point]:
    """Nudge coordinates until every axis has pairwise-distinct values."""
    if not raw:
        return []
    dimension = len(raw[0])
    for axis in range(dimension):
        seen: set = set()
        for row in raw:
            value = row[axis]
            while value in seen:
                value = min(vmax, max(0.0, value + rng.uniform(-1e-6, 1e-6) * vmax + 1e-12))
            seen.add(value)
            row[axis] = value
    return [Point(row) for row in raw]


def _resolve_rng(seed: Optional[int], rng: Optional[random.Random]) -> random.Random:
    if rng is not None and seed is not None:
        raise ValueError("pass either seed or rng, not both")
    if rng is not None:
        return rng
    return random.Random(0 if seed is None else seed)
