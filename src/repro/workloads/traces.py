"""Churn traces: timestamped *batches* of membership events (epochs).

The flat :class:`~repro.workloads.churn.ChurnEvent` lists drive the
one-event-at-a-time pipelines (the message-level replay, the per-event
ablations).  At churn scale the overlay converges once per *epoch* instead
(:meth:`repro.overlay.network.OverlayNetwork.apply_batch`), and the workload
description that matches that execution model is a :class:`ChurnTrace`: an
ordered sequence of :class:`EventBatch` records, each carrying the membership
events of one epoch.

Traces and schedules convert losslessly in both directions --
:meth:`ChurnTrace.from_schedule` buckets any existing schedule into
fixed-length epochs and :meth:`ChurnTrace.to_schedule` flattens a trace back
into the event list every legacy consumer accepts -- so the trace layer
subsumes the ad-hoc schedule lists without breaking them.

Beyond the Poisson join/leave model the schedule generators already provide,
batching unlocks scenarios a one-at-a-time list cannot express naturally:

* :func:`poisson_trace` -- the existing Poisson arrival / exponential
  session model, bucketed into epochs;
* :func:`flash_crowd_trace` -- steady background arrivals, then an entire
  crowd joining in a single epoch and departing together after a dwell;
* :func:`mass_departure_trace` -- correlated failure: every peer inside a
  spatial region departs in one epoch (optionally rejoining later), the
  way a datacenter or region outage takes out co-located peers;
* :func:`diurnal_trace` -- the alive population tracks a day/night wave,
  departed peers rejoining on the upswing.

All generators follow the :mod:`repro.workloads.churn` seeding contract:
``seed`` defaults to an explicit ``0`` (unseeded calls are deterministic),
``seed=None`` is nondeterministic, ``rng`` draws from shared state.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.geometry.distance import DistanceFunction, get_distance
from repro.overlay.peer import PeerInfo
from repro.workloads.churn import (
    DEFAULT_SEED,
    ChurnEvent,
    _resolve_rng,
    poisson_churn_schedule,
)

__all__ = [
    "EventBatch",
    "ChurnTrace",
    "poisson_trace",
    "flash_crowd_trace",
    "mass_departure_trace",
    "diurnal_trace",
]


@dataclass(frozen=True)
class EventBatch:
    """The membership events of one epoch, applied in order.

    Within a batch the event *order* is semantic (a leave followed by a
    rejoin of the same id is well-formed; the reverse is not), so events are
    stored as given, not re-sorted.
    """

    time: float
    events: Tuple[ChurnEvent, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        if not self.events:
            raise ValueError("an event batch must contain at least one event")
        if self.time < 0:
            raise ValueError("batch time must be non-negative")

    @property
    def join_count(self) -> int:
        """Number of join events in the batch."""
        return sum(1 for event in self.events if event.kind == "join")

    @property
    def leave_count(self) -> int:
        """Number of leave events in the batch."""
        return sum(1 for event in self.events if event.kind == "leave")

    @property
    def move_count(self) -> int:
        """Number of move events in the batch."""
        return sum(1 for event in self.events if event.kind == "move")


@dataclass(frozen=True)
class ChurnTrace:
    """An ordered sequence of event batches (one per epoch).

    The canonical workload unit of the batched-epoch pipeline: the trace
    runner applies each batch through
    :meth:`~repro.overlay.network.OverlayNetwork.apply_batch` and samples
    the live tree/connectivity metrics once per batch.
    """

    batches: Tuple[EventBatch, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "batches", tuple(self.batches))
        times = [batch.time for batch in self.batches]
        if any(later <= earlier for earlier, later in zip(times, times[1:])):
            raise ValueError("batch times must be strictly increasing")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def epoch_count(self) -> int:
        """Number of batches (epochs) in the trace."""
        return len(self.batches)

    @property
    def event_count(self) -> int:
        """Total number of membership events across all batches."""
        return sum(len(batch.events) for batch in self.batches)

    def peer_ids(self) -> Set[int]:
        """Every peer id the trace references (for sizing populations)."""
        return {event.peer_id for batch in self.batches for event in batch.events}

    def validate(self, *, initial: Iterable[int] = ()) -> None:
        """Check membership well-formedness by replaying the trace.

        Raises :class:`ValueError` on a join of an already-alive peer, or a
        leave or move of an absent one; ``initial`` names peers alive before
        the trace starts.
        """
        alive = set(initial)
        for batch in self.batches:
            for event in batch.events:
                if event.kind == "join":
                    if event.peer_id in alive:
                        raise ValueError(
                            f"peer {event.peer_id} joins at t={event.time} "
                            "but is already alive"
                        )
                    alive.add(event.peer_id)
                elif event.kind == "move":
                    if event.peer_id not in alive:
                        raise ValueError(
                            f"peer {event.peer_id} moves at t={event.time} "
                            "but is not alive"
                        )
                else:
                    if event.peer_id not in alive:
                        raise ValueError(
                            f"peer {event.peer_id} leaves at t={event.time} "
                            "but is not alive"
                        )
                    alive.discard(event.peer_id)

    # ------------------------------------------------------------------
    # Schedule interoperability (the compat shim)
    # ------------------------------------------------------------------
    def to_schedule(self) -> List[ChurnEvent]:
        """Flatten into the event list the per-event consumers accept.

        Batch-internal order is preserved, so replaying the flattened
        schedule one event at a time performs the same membership changes
        in the same order as the batched replay.
        """
        return [event for batch in self.batches for event in batch.events]

    @classmethod
    def from_schedule(
        cls, events: Sequence[ChurnEvent], *, epoch_length: float
    ) -> "ChurnTrace":
        """Bucket a flat schedule into fixed-length epochs.

        Events are sorted by time (the schedule generators already return
        sorted lists, and :class:`ChurnEvent` orders join before leave on
        ties, keeping rejoins well-formed) and grouped into epochs of
        ``epoch_length``; each batch is stamped with its epoch start time.
        """
        if epoch_length <= 0:
            raise ValueError("epoch_length must be positive")
        buckets: dict = {}
        for event in sorted(events):
            buckets.setdefault(int(event.time // epoch_length), []).append(event)
        return cls(
            batches=tuple(
                EventBatch(time=index * epoch_length, events=tuple(buckets[index]))
                for index in sorted(buckets)
            )
        )


def poisson_trace(
    count: int,
    *,
    arrival_rate: float = 1.0,
    session_mean: float = 100.0,
    epoch_length: float = 10.0,
    seed: Optional[int] = DEFAULT_SEED,
    rng: Optional[random.Random] = None,
) -> ChurnTrace:
    """Poisson arrivals with exponential sessions, bucketed into epochs.

    The batched form of :func:`repro.workloads.churn.poisson_churn_schedule`
    (every peer both joins and leaves); same parameters plus the epoch
    length.
    """
    schedule = poisson_churn_schedule(
        count,
        arrival_rate=arrival_rate,
        session_mean=session_mean,
        seed=seed,
        rng=rng,
    )
    return ChurnTrace.from_schedule(schedule, epoch_length=epoch_length)


def flash_crowd_trace(
    base_count: int,
    crowd_count: int,
    *,
    arrival_rate: float = 1.0,
    epoch_length: float = 10.0,
    dwell_epochs: int = 3,
    seed: Optional[int] = DEFAULT_SEED,
    rng: Optional[random.Random] = None,
) -> ChurnTrace:
    """A steady overlay hit by a crowd that joins -- and leaves -- together.

    Peers ``0 .. base_count-1`` arrive as a Poisson stream (and stay).  One
    epoch after the last base arrival, peers
    ``base_count .. base_count+crowd_count-1`` all join in a single batch
    (the flash); ``dwell_epochs`` epochs later the whole crowd departs in a
    single batch (the recede).  The scenario per-event drivers cannot
    express: hundreds of membership events that semantically belong to one
    instant.
    """
    if base_count < 1:
        raise ValueError("base_count must be positive")
    if crowd_count < 1:
        raise ValueError("crowd_count must be positive")
    if dwell_epochs < 1:
        raise ValueError("dwell_epochs must be positive")
    generator = _resolve_rng(seed, rng)

    clock = 0.0
    arrivals = []
    for peer_id in range(base_count):
        clock += generator.expovariate(arrival_rate)
        arrivals.append(ChurnEvent(time=clock, peer_id=peer_id, kind="join"))
    trace = ChurnTrace.from_schedule(arrivals, epoch_length=epoch_length)

    flash_time = (int(clock // epoch_length) + 1) * epoch_length
    crowd_ids = range(base_count, base_count + crowd_count)
    flash = EventBatch(
        time=flash_time,
        events=tuple(
            ChurnEvent(time=flash_time, peer_id=peer_id, kind="join")
            for peer_id in crowd_ids
        ),
    )
    recede_time = flash_time + dwell_epochs * epoch_length
    recede = EventBatch(
        time=recede_time,
        events=tuple(
            ChurnEvent(time=recede_time, peer_id=peer_id, kind="leave")
            for peer_id in crowd_ids
        ),
    )
    return ChurnTrace(batches=trace.batches + (flash, recede))


def mass_departure_trace(
    peers: Sequence[PeerInfo],
    *,
    center: Optional[Sequence[float]] = None,
    radius: float,
    distance: "DistanceFunction | str" = "l2",
    arrival_rate: float = 1.0,
    epoch_length: float = 10.0,
    rejoin_after_epochs: Optional[int] = None,
    seed: Optional[int] = DEFAULT_SEED,
    rng: Optional[random.Random] = None,
) -> ChurnTrace:
    """Correlated failure: every peer in a spatial region departs at once.

    The population arrives as a Poisson stream; one epoch after the last
    arrival, every peer whose coordinates lie within ``radius`` of
    ``center`` (default: the coordinates of a randomly chosen peer, so the
    region is always populated) departs in a single batch -- the co-located
    failure a datacenter or network-region outage causes.  With
    ``rejoin_after_epochs`` the departed region rejoins in one batch that
    many epochs later (the outage heals).

    At least one peer must survive the departure (an overlay wiped out by
    the outage has no bootstrap contacts to heal from); widen ``radius``
    ranges accordingly.
    """
    if not peers:
        raise ValueError("peers must not be empty")
    if radius <= 0:
        raise ValueError("radius must be positive")
    if rejoin_after_epochs is not None and rejoin_after_epochs < 1:
        raise ValueError("rejoin_after_epochs must be positive when given")
    generator = _resolve_rng(seed, rng)
    measure = get_distance(distance) if isinstance(distance, str) else distance

    origin = tuple(
        center if center is not None else generator.choice(peers).coordinates
    )
    departing = [
        peer for peer in peers if measure(tuple(peer.coordinates), origin) <= radius
    ]
    if len(departing) == len(peers):
        raise ValueError(
            f"all {len(peers)} peers lie within radius {radius} of the region "
            "center; at least one peer must survive the mass departure"
        )
    if not departing:
        raise ValueError(f"no peer lies within radius {radius} of the region center")

    clock = 0.0
    arrivals = []
    for peer in peers:
        clock += generator.expovariate(arrival_rate)
        arrivals.append(ChurnEvent(time=clock, peer_id=peer.peer_id, kind="join"))
    trace = ChurnTrace.from_schedule(arrivals, epoch_length=epoch_length)

    outage_time = (int(clock // epoch_length) + 1) * epoch_length
    batches = trace.batches + (
        EventBatch(
            time=outage_time,
            events=tuple(
                ChurnEvent(time=outage_time, peer_id=peer.peer_id, kind="leave")
                for peer in departing
            ),
        ),
    )
    if rejoin_after_epochs is not None:
        rejoin_time = outage_time + rejoin_after_epochs * epoch_length
        batches += (
            EventBatch(
                time=rejoin_time,
                events=tuple(
                    ChurnEvent(time=rejoin_time, peer_id=peer.peer_id, kind="join")
                    for peer in departing
                ),
            ),
        )
    return ChurnTrace(batches=batches)


def diurnal_trace(
    peak_count: int,
    *,
    cycles: int = 2,
    epochs_per_cycle: int = 12,
    trough_fraction: float = 0.3,
    epoch_length: float = 10.0,
    seed: Optional[int] = DEFAULT_SEED,
    rng: Optional[random.Random] = None,
) -> ChurnTrace:
    """A day/night wave: the alive population tracks a raised cosine.

    Each epoch the target population moves along
    ``trough + (peak - trough) * (1 - cos(2*pi*t / epochs_per_cycle)) / 2``;
    the batch joins or leaves exactly the difference.  Departed peers rejoin
    first on the upswing (exercising the leave/rejoin paths), fresh ids are
    allocated only when the pool of departed peers runs dry; leavers are
    sampled uniformly from the alive set.
    """
    if peak_count < 2:
        raise ValueError("peak_count must be at least 2")
    if cycles < 1:
        raise ValueError("cycles must be positive")
    if epochs_per_cycle < 2:
        raise ValueError("epochs_per_cycle must be at least 2")
    if not 0.0 < trough_fraction < 1.0:
        raise ValueError("trough_fraction must be in (0, 1)")
    generator = _resolve_rng(seed, rng)

    trough = max(1, int(round(peak_count * trough_fraction)))
    alive: List[int] = []
    departed: List[int] = []
    next_id = 0
    batches: List[EventBatch] = []
    for epoch in range(cycles * epochs_per_cycle + 1):
        phase = (1.0 - math.cos(2.0 * math.pi * epoch / epochs_per_cycle)) / 2.0
        target = trough + int(round((peak_count - trough) * phase))
        time = epoch * epoch_length
        events: List[ChurnEvent] = []
        while len(alive) < target:
            if departed:
                peer_id = departed.pop(generator.randrange(len(departed)))
            else:
                peer_id = next_id
                next_id += 1
            alive.append(peer_id)
            events.append(ChurnEvent(time=time, peer_id=peer_id, kind="join"))
        while len(alive) > target:
            peer_id = alive.pop(generator.randrange(len(alive)))
            departed.append(peer_id)
            events.append(ChurnEvent(time=time, peer_id=peer_id, kind="leave"))
        if events:
            batches.append(EventBatch(time=time, events=tuple(events)))
    return ChurnTrace(batches=tuple(batches))
