"""Neighbour selection methods.

A *neighbour selection method* turns a peer's current knowledge of the system
-- the candidate set ``I(P)`` gathered from gossip announcements -- into the
peer's overlay neighbour set.  The paper requires the method to drive the
topology to an equilibrium when the membership stops changing; all methods
here do (they are deterministic functions of ``I(P)``).

Implemented methods (all from the paper):

* :class:`HyperplanesSelection` -- the generic Hyperplanes method: ``H``
  hyperplanes through the (translated) origin partition space into regions
  and the ``K`` closest candidates of each region are kept.
* :class:`OrthogonalHyperplanesSelection` -- instance 1: the ``D`` coordinate
  hyperplanes (regions are the ``2^D`` orthants).
* :class:`SignCoefficientHyperplanesSelection` -- instance 2: hyperplanes
  with coefficients in ``{-1, 0, +1}``.
* :class:`KClosestSelection` -- instance 3 (``H = 0``): the ``K`` closest
  candidates overall.
* :class:`EmptyRectangleSelection` -- the method used by the Section 2
  experiments: keep every candidate ``Q`` such that the axis-aligned
  bounding box of ``P`` and ``Q`` contains no other candidate.
"""

from repro.overlay.selection.base import NeighbourSelectionMethod
from repro.overlay.selection.hyperplanes import HyperplanesSelection
from repro.overlay.selection.orthogonal import OrthogonalHyperplanesSelection
from repro.overlay.selection.sign_vectors import SignCoefficientHyperplanesSelection
from repro.overlay.selection.k_closest import KClosestSelection
from repro.overlay.selection.empty_rectangle import (
    EmptyRectangleSelection,
    brute_force_empty_rectangle_neighbours,
)
from repro.overlay.selection.registry import available_methods, make_selection_method

__all__ = [
    "NeighbourSelectionMethod",
    "HyperplanesSelection",
    "OrthogonalHyperplanesSelection",
    "SignCoefficientHyperplanesSelection",
    "KClosestSelection",
    "EmptyRectangleSelection",
    "brute_force_empty_rectangle_neighbours",
    "available_methods",
    "make_selection_method",
]
