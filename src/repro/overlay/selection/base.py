"""Base protocol for neighbour selection methods."""

from __future__ import annotations

import abc
from typing import Dict, List, Sequence, Set

from repro.overlay.peer import PeerInfo

__all__ = ["NeighbourSelectionMethod"]


class NeighbourSelectionMethod(abc.ABC):
    """A rule mapping a peer's candidate set ``I(P)`` to its neighbour set.

    Subclasses implement :meth:`select`.  The default
    :meth:`compute_equilibrium` evaluates :meth:`select` for every peer with
    the full population as candidates -- the fixed point the gossip process
    converges to when every peer eventually learns about every other peer.
    Methods with a faster vectorised path (the ones used at ``N = 1000``)
    override it.
    """

    @abc.abstractmethod
    def select(
        self, reference: PeerInfo, candidates: Sequence[PeerInfo]
    ) -> List[int]:
        """Return the peer ids the reference peer keeps as overlay neighbours.

        Parameters
        ----------
        reference:
            The peer doing the selecting (``P``).
        candidates:
            The peers ``P`` currently knows about (``I(P)``).  The reference
            peer itself may or may not appear in the sequence; it is never
            selected either way.
        """

    def compute_equilibrium(self, peers: Sequence[PeerInfo]) -> Dict[int, Set[int]]:
        """Neighbour sets when every peer knows every other peer.

        Returns a mapping from peer id to the set of selected neighbour ids
        (the *directed* selection; the overlay topology is its undirected
        closure, built by :class:`repro.overlay.network.OverlayNetwork`).
        """
        result: Dict[int, Set[int]] = {}
        for reference in peers:
            others = [peer for peer in peers if peer.peer_id != reference.peer_id]
            result[reference.peer_id] = set(self.select(reference, others))
        return result

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _exclude_reference(
        reference: PeerInfo, candidates: Sequence[PeerInfo]
    ) -> List[PeerInfo]:
        """Drop the reference peer (and id-duplicates) from the candidate set."""
        seen: Set[int] = {reference.peer_id}
        result: List[PeerInfo] = []
        for candidate in candidates:
            if candidate.peer_id in seen:
                continue
            if candidate.dimension != reference.dimension:
                raise ValueError(
                    f"candidate {candidate.peer_id} has dimension {candidate.dimension}, "
                    f"expected {reference.dimension}"
                )
            seen.add(candidate.peer_id)
            result.append(candidate)
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
