"""Base protocol for neighbour selection methods."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.overlay.peer import PeerInfo

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.geometry.index import SpatialIndex

__all__ = ["AdditiveCohort", "NeighbourSelectionMethod"]


@dataclass(frozen=True)
class AdditiveCohort:
    """One shared-window additive batch for :meth:`~NeighbourSelectionMethod.install_many`.

    A cohort is the vectorised round protocol's unit of additive work: every
    member's candidate set gained exactly the same peers (they share one
    delta window), so the batch is described *implicitly* -- an ascending id
    array plus two resolver callables -- instead of per-member Python lists.
    Methods that can exploit the shared structure (one gain set, many
    members) stay O(changes); the generic fallback expands members into
    per-peer :meth:`~NeighbourSelectionMethod.select_many_additive` updates.

    ``member_ids`` must be ascending and contain only peers whose installed
    selection is known to equal their previous full selection (the additive
    verdict's precondition); ``gained`` must be ascending by id.  The
    resolvers are only invoked for members a method actually touches, which
    is what lets a sub-linear install path skip provably unchanged members
    without ever materialising their state.
    """

    member_ids: Sequence[int]
    gained: Tuple[PeerInfo, ...]
    member_of: Callable[[int], PeerInfo]
    selected_of: Callable[[int], List[PeerInfo]]


class NeighbourSelectionMethod(abc.ABC):
    """A rule mapping a peer's candidate set ``I(P)`` to its neighbour set.

    Subclasses implement :meth:`select`.  The default
    :meth:`compute_equilibrium` evaluates :meth:`select` for every peer with
    the full population as candidates -- the fixed point the gossip process
    converges to when every peer eventually learns about every other peer.
    Methods with a faster vectorised path (the ones used at ``N = 1000``)
    override it.  Batched reselection (the incremental convergence engine)
    goes through :meth:`select_many`, which methods may also vectorise.
    """

    #: ``True`` when :meth:`select` is a *path-independent* choice function,
    #: i.e. for every reference peer ``P``, candidate set ``C`` and extra
    #: candidates ``G``:
    #:
    #: 1. ``select(P, C + G) == select(P, select(P, C) + G)`` -- discarding
    #:    candidates that were not selected does not change what a later,
    #:    larger selection picks; and
    #: 2. removing a candidate that was *not* selected never changes the
    #:    selection.
    #:
    #: Per-region skylines and per-region top-``K`` rankings under a strict
    #: total order both have this property.  The incremental reselection
    #: engine exploits it to re-run a peer's selection against ``selected +
    #: gained`` instead of the full candidate set when the candidate set only
    #: gained members (and to skip the peer entirely when it only lost
    #: non-selected members).  Methods that cannot guarantee the property
    #: must leave it ``False``; the engine then falls back to full-candidate
    #: recomputation, which is always correct.
    path_independent: bool = False

    #: ``True`` when the method implements ``_select_indexed`` -- an
    #: index-backed fast path producing *byte-identical* selections to the
    #: candidate-list scan.  Callers may then pass a
    #: :class:`repro.geometry.index.SpatialIndex` whose contents are exactly
    #: the candidate set (the reference peer itself may also be indexed; it
    #: is excluded by id) to the batched entry points :meth:`select_many` /
    #: :meth:`select_many_additive` -- the surface opting in guarantees.
    #: (The in-repo methods additionally accept ``index=`` on per-call
    #: :meth:`select` as a convenience.)  Methods that do not opt in never
    #: receive an ``index`` -- the overlay layer checks this flag before
    #: taking the indexed path, so third-party subclasses keep working
    #: unchanged.
    supports_index: bool = False

    @abc.abstractmethod
    def select(
        self, reference: PeerInfo, candidates: Sequence[PeerInfo]
    ) -> List[int]:
        """Return the peer ids the reference peer keeps as overlay neighbours.

        Parameters
        ----------
        reference:
            The peer doing the selecting (``P``).
        candidates:
            The peers ``P`` currently knows about (``I(P)``).  The reference
            peer itself may or may not appear in the sequence; it is never
            selected either way.
        """

    def compute_equilibrium(self, peers: Sequence[PeerInfo]) -> Dict[int, Set[int]]:
        """Neighbour sets when every peer knows every other peer.

        Returns a mapping from peer id to the set of selected neighbour ids
        (the *directed* selection; the overlay topology is its undirected
        closure, built by :class:`repro.overlay.network.OverlayNetwork`).
        """
        result: Dict[int, Set[int]] = {}
        for reference in peers:
            others = [peer for peer in peers if peer.peer_id != reference.peer_id]
            result[reference.peer_id] = set(self.select(reference, others))
        return result

    def select_many(
        self,
        references: Sequence[PeerInfo],
        candidates_by_peer: Mapping[int, Sequence[PeerInfo]],
        *,
        index: "Optional[SpatialIndex]" = None,
    ) -> Dict[int, List[int]]:
        """Batched :meth:`select`: one selection per reference peer.

        ``candidates_by_peer`` maps each reference's ``peer_id`` to its
        candidate set ``I(P)``.  The default implementation simply loops over
        :meth:`select`; methods with a vectorised path override it so the
        incremental reselection engine can amortise per-call overhead across
        a whole batch of dirty peers.  Overrides must return exactly what the
        per-peer loop would (same ids per reference, order irrelevant to
        callers that treat the result as a set).

        When ``index`` is given (only valid on methods with
        :attr:`supports_index`), every reference is answered from the index
        instead and ``candidates_by_peer`` is ignored -- the index contents
        *are* the candidate set by the caller's contract, so entries need
        not (and for the churn-scale hot path deliberately do not) exist.
        """
        if index is not None:
            return self._select_many_indexed(references, index)
        return {
            reference.peer_id: self.select(
                reference, candidates_by_peer[reference.peer_id]
            )
            for reference in references
        }

    def _check_index_support(self) -> None:
        """Reject ``index=`` on methods that never opted in (shared guard)."""
        if not self.supports_index:
            raise TypeError(
                f"{type(self).__name__} has no index-backed selection path; "
                "check supports_index before passing index="
            )

    def _select_many_indexed(
        self, references: Sequence[PeerInfo], index: "SpatialIndex"
    ) -> Dict[int, List[int]]:
        """Shared indexed :meth:`select_many` body (supporting methods only)."""
        self._check_index_support()
        return {
            reference.peer_id: self._select_indexed(reference, index)
            for reference in references
        }

    def _select_indexed(
        self, reference: PeerInfo, index: "SpatialIndex"
    ) -> List[int]:
        """Index-backed :meth:`select` body; provided by supporting methods."""
        raise TypeError(
            f"{type(self).__name__} has no index-backed selection path; "
            "check supports_index before passing index="
        )

    def _select_many_dispatch(
        self,
        references: Sequence[PeerInfo],
        candidates_by_peer: Mapping[int, Sequence[PeerInfo]],
        threshold: int,
        vectorised,
        *,
        index: "Optional[SpatialIndex]" = None,
    ) -> Dict[int, List[int]]:
        """Shared :meth:`select_many` body for methods with a numpy path.

        Per reference: candidate sets below ``threshold`` go through the
        plain-python :meth:`select` (array construction would dominate),
        larger ones through ``vectorised(reference, candidates)``.  With an
        ``index`` every reference goes through the indexed path instead.
        """
        if index is not None:
            return self._select_many_indexed(references, index)
        results: Dict[int, List[int]] = {}
        for reference in references:
            candidates = candidates_by_peer[reference.peer_id]
            if len(candidates) < threshold:
                results[reference.peer_id] = self.select(reference, candidates)
            else:
                results[reference.peer_id] = vectorised(reference, candidates)
        return results

    def select_many_additive(
        self,
        updates: Sequence[Tuple[PeerInfo, Sequence[PeerInfo], Sequence[PeerInfo]]],
        *,
        index: "Optional[SpatialIndex]" = None,
    ) -> Optional[Dict[int, List[int]]]:
        """Batched re-selection for purely additive candidate-set deltas.

        Each update is ``(reference, currently_selected, gained)`` where
        ``currently_selected`` is the reference's installed selection (known
        to equal ``select(reference, I(P))`` for its previous candidate set)
        and ``gained`` are the candidates its set gained.  By path
        independence the new selection is ``select(reference,
        currently_selected + gained)``; methods with a vectorised delta rule
        override this to compute the whole batch at once and may *omit*
        references whose selection provably did not change -- callers treat
        missing keys as "unchanged".

        The default returns ``None``, meaning "no specialised path": callers
        fall back to :meth:`select_many` over rebuilt candidate sets.  Only
        meaningful for methods with ``path_independent = True``.

        ``index`` mirrors the :meth:`select_many` parameter for signature
        uniformity across the batched APIs.  An additive update already
        touches only ``O(|selection| + |gained|)`` candidates -- the delta
        rules never scan the population -- so no override consults the index
        today; it is accepted (and validated against :attr:`supports_index`,
        here and in every override) so callers can thread one source of
        truth through every batched call.
        """
        if index is not None:
            self._check_index_support()
        return None

    def install_many(
        self,
        full_references: Sequence[PeerInfo],
        candidates_by_peer: Mapping[int, Sequence[PeerInfo]],
        additive_cohorts: Sequence[AdditiveCohort],
        *,
        index: "Optional[SpatialIndex]" = None,
    ) -> Dict[int, List[int]]:
        """One batched selection call for a whole convergence round.

        The cohort install entry the vectorised round protocol drives:
        ``full_references`` are recomputed against their complete candidate
        sets (from ``index`` when given, else from ``candidates_by_peer``),
        and every :class:`AdditiveCohort` is resolved through the method's
        additive delta rule.  Returns ``peer_id -> selected ids``; cohort
        members omitted from the result are provably unchanged -- exactly
        the contract of :meth:`select_many_additive`, extended to the whole
        round.

        The default implementation reproduces the per-peer engine loop:
        cohorts expand into one additive update per member (sharing the
        cohort's gain list), methods without a delta rule fall back to a
        scan over ``selected + gained``, and -- matching the engine's
        install phase -- only full-candidate recomputations may consult the
        index.  Methods with structure linking full and additive results
        (see :class:`~repro.overlay.selection.empty_rectangle.EmptyRectangleSelection`)
        override this to keep the whole round sub-linear in the population.
        """
        if index is not None:
            self._check_index_support()
        results: Dict[int, List[int]] = {}
        scan_references: List[PeerInfo] = []
        scan_candidates: Dict[int, Sequence[PeerInfo]] = {}
        if index is not None:
            if full_references:
                results.update(self.select_many(full_references, {}, index=index))
        else:
            scan_references.extend(full_references)
            for reference in full_references:
                scan_candidates[reference.peer_id] = candidates_by_peer[
                    reference.peer_id
                ]
        updates: List[Tuple[PeerInfo, Sequence[PeerInfo], Sequence[PeerInfo]]] = []
        for cohort in additive_cohorts:
            gained = list(cohort.gained)
            for raw_id in cohort.member_ids:
                member_id = int(raw_id)
                updates.append(
                    (cohort.member_of(member_id), cohort.selected_of(member_id), gained)
                )
        if updates:
            additive_results = self.select_many_additive(updates)
            if additive_results is None:
                # No specialised delta rule: rebuild the reduced candidate
                # sets (selection + gained) and go through the scan batch.
                for reference, selected, gained in updates:
                    scan_candidates[reference.peer_id] = self.merge_candidate_delta(
                        selected, gained
                    )
                    scan_references.append(reference)
            else:
                results.update(additive_results)
        if scan_references:
            results.update(self.select_many(scan_references, scan_candidates))
        return results

    def select_additive(
        self,
        reference: PeerInfo,
        selected: Sequence[PeerInfo],
        gained: Sequence[PeerInfo],
    ) -> List[int]:
        """Single-reference additive re-selection with automatic fallback.

        The per-peer counterpart of :meth:`select_many_additive`, used by the
        message-level simulator where reselect ticks fire one peer at a time:
        tries the method's vectorised delta rule first (a missing key means
        "selection unchanged"), and otherwise re-selects from ``selected +
        gained``, which path independence makes exact.  Callers must only use
        this on methods with ``path_independent = True`` and with ``selected``
        known to equal ``select(reference, I(P))`` for the previous candidate
        set.
        """
        batched = self.select_many_additive([(reference, selected, gained)])
        if batched is not None:
            if reference.peer_id in batched:
                return list(batched[reference.peer_id])
            return [peer.peer_id for peer in selected]
        return self.select(reference, self.merge_candidate_delta(selected, gained))

    @staticmethod
    def merge_candidate_delta(
        selected: Sequence[PeerInfo], gained: Sequence[PeerInfo]
    ) -> List[PeerInfo]:
        """The reduced candidate set ``selected + gained``, deduplicated by id.

        This is the candidate list every additive fallback re-selects from
        (the incremental engine, :meth:`select_additive` and vectorised
        multi-gain branches alike); keeping it in one place keeps the
        ordering and dedup rule -- ascending peer id, ``gained`` info wins a
        duplicate -- identical across all of them, which the cross-path
        equivalence tests rely on.
        """
        merged: Dict[int, PeerInfo] = {peer.peer_id: peer for peer in selected}
        merged.update({peer.peer_id: peer for peer in gained})
        return [merged[other] for other in sorted(merged)]

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _exclude_reference(
        reference: PeerInfo, candidates: Sequence[PeerInfo]
    ) -> List[PeerInfo]:
        """Drop the reference peer (and id-duplicates) from the candidate set."""
        seen: Set[int] = {reference.peer_id}
        result: List[PeerInfo] = []
        for candidate in candidates:
            if candidate.peer_id in seen:
                continue
            if candidate.dimension != reference.dimension:
                raise ValueError(
                    f"candidate {candidate.peer_id} has dimension {candidate.dimension}, "
                    f"expected {reference.dimension}"
                )
            seen.add(candidate.peer_id)
            result.append(candidate)
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
