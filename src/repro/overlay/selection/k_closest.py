"""The ``H = 0`` selection method (instance 3): the ``K`` closest candidates.

With no hyperplanes there is a single region, so a peer simply keeps the
``K`` candidates closest to it.  The paper lists this as the degenerate
instance of the Hyperplanes method; it produces overlays that are easy to
partition (all neighbours can end up on one side of the peer), which is
exactly why the region-based variants exist -- the ablation benchmarks
quantify that difference.
"""

from __future__ import annotations

from repro.geometry.distance import DistanceFunction
from repro.geometry.hyperplane import HyperplaneSet
from repro.overlay.selection.hyperplanes import HyperplanesSelection

__all__ = ["KClosestSelection"]


class KClosestSelection(HyperplanesSelection):
    """Keep the ``K`` closest candidates overall (single region)."""

    def __init__(self, *, k: int = 1, distance: "DistanceFunction | str" = "l2") -> None:
        super().__init__(HyperplaneSet.empty, k=k, distance=distance)
