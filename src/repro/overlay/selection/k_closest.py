"""The ``H = 0`` selection method (instance 3): the ``K`` closest candidates.

With no hyperplanes there is a single region, so a peer simply keeps the
``K`` candidates closest to it.  The paper lists this as the degenerate
instance of the Hyperplanes method; it produces overlays that are easy to
partition (all neighbours can end up on one side of the peer), which is
exactly why the region-based variants exist -- the ablation benchmarks
quantify that difference.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.geometry.distance import DistanceFunction
from repro.geometry.hyperplane import HyperplaneSet
from repro.overlay.peer import PeerInfo
from repro.overlay.selection.hyperplanes import (
    VECTORISE_THRESHOLD,
    HyperplanesSelection,
    minkowski,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.geometry.index import SpatialIndex

__all__ = ["KClosestSelection"]


class KClosestSelection(HyperplanesSelection):
    """Keep the ``K`` closest candidates overall (single region)."""

    def __init__(self, *, k: int = 1, distance: "DistanceFunction | str" = "l2") -> None:
        super().__init__(HyperplaneSet.empty, k=k, distance=distance)

    def select_many(
        self,
        references: Sequence[PeerInfo],
        candidates_by_peer: Mapping[int, Sequence[PeerInfo]],
        *,
        index: "Optional[SpatialIndex]" = None,
    ) -> Dict[int, List[int]]:
        """Batched selection; a numpy top-``K`` when the distance is Minkowski.

        The numpy path assumes the well-formed inputs the overlay layer
        provides and is only taken for large candidate sets where it pays
        off; everything else goes through the generic per-peer loop.  With
        an ``index`` the query is the classic nearest-``K`` over the k-d
        tree (the single-region instance of ``region_top_k``).
        """
        if self._distance_order is None:
            return super().select_many(references, candidates_by_peer, index=index)
        return self._select_many_dispatch(
            references,
            candidates_by_peer,
            VECTORISE_THRESHOLD,
            self._select_vectorised,
            index=index,
        )

    def _select_vectorised(
        self, reference: PeerInfo, candidates: Sequence[PeerInfo]
    ) -> List[int]:
        others = self._exclude_reference(reference, candidates)
        if not others:
            return []
        ids = np.asarray([peer.peer_id for peer in others], dtype=np.int64)
        coords = np.asarray([tuple(peer.coordinates) for peer in others], dtype=float)
        origin = np.asarray(tuple(reference.coordinates), dtype=float)
        distances = minkowski(coords - origin, self._distance_order)
        # The same (distance, peer id) tie-break as the generic path.
        ranking = np.lexsort((ids, distances))[: self.k]
        return [int(ids[position]) for position in ranking]
