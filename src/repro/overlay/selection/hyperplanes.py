"""The generic Hyperplanes neighbour selection method.

A peer ``P`` conceptually translates every candidate so that ``P`` becomes
the origin of the coordinate system.  A fixed set of ``H`` hyperplanes
through the origin splits space into regions; within every region, ``P``
keeps the ``K`` candidates closest to the origin (i.e. closest to ``P``)
according to a configurable distance function.

The three named instances of the paper are provided as subclasses /
specialisations:

* :class:`~repro.overlay.selection.orthogonal.OrthogonalHyperplanesSelection`
* :class:`~repro.overlay.selection.sign_vectors.SignCoefficientHyperplanesSelection`
* :class:`~repro.overlay.selection.k_closest.KClosestSelection` (``H = 0``)
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.distance import DistanceFunction, get_distance
from repro.geometry.hyperplane import HyperplaneSet
from repro.overlay.peer import PeerInfo
from repro.overlay.selection.base import NeighbourSelectionMethod

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.geometry.index import SpatialIndex

__all__ = ["HyperplanesSelection", "minkowski"]

HyperplaneSetFactory = Callable[[int], HyperplaneSet]

# Minkowski orders of the distance names the numpy fast paths understand.
MINKOWSKI_ORDERS = {"l1": 1.0, "manhattan": 1.0, "l2": 2.0, "euclidean": 2.0,
                    "linf": float("inf"), "chebyshev": float("inf")}

# Below this many candidates the generic python selection beats building
# numpy arrays; the batched APIs switch implementation per reference.
VECTORISE_THRESHOLD = 48


def minkowski(deltas: np.ndarray, order: float) -> np.ndarray:
    """Row-wise Minkowski norm of a matrix of coordinate differences.

    Supports the orders the named distances map to (1, 2 and infinity);
    other orders are rejected rather than silently miscomputed.
    """
    magnitudes = np.abs(deltas)
    if order == 1.0:
        # reprolint: disable=RPL003 reason=row-wise reduction along the fixed dimension axis mirrors the scan's left-to-right L1 accumulation; equality is property-tested
        return magnitudes.sum(axis=1)
    if order == 2.0:
        # reprolint: disable=RPL003 reason=row-wise reduction along the fixed dimension axis mirrors the scan's left-to-right L2 accumulation; equality is property-tested
        return np.sqrt((magnitudes ** 2).sum(axis=1))
    if order == float("inf"):
        return magnitudes.max(axis=1)
    raise ValueError(f"unsupported Minkowski order {order!r}; known: 1, 2, inf")


class HyperplanesSelection(NeighbourSelectionMethod):
    """Keep the ``K`` closest candidates of every hyperplane region.

    Parameters
    ----------
    hyperplane_factory:
        Builds the :class:`~repro.geometry.hyperplane.HyperplaneSet` for a
        given dimension.  The factory is invoked lazily (the dimension is only
        known once peers are seen) and its result cached per dimension.
    k:
        Number of neighbours kept per region (the paper's ``K``).
    distance:
        Distance function used for the "closest" ranking, either a callable
        or a name understood by :func:`repro.geometry.distance.get_distance`.
        Defaults to Euclidean distance.
    """

    # Per-region top-K under the strict (distance, peer id) total order is
    # path independent: removing a candidate ranked below the cut in its
    # region never changes any region's top K.
    path_independent = True

    @property
    def supports_index(self) -> bool:  # type: ignore[override]
        """Indexed selection needs a distance with box lower bounds.

        The spatial index prunes subtrees through monotone Minkowski
        distance bounds, so the index-backed path exists exactly when the
        configured distance is one of the named Minkowski norms -- the same
        condition that gates the numpy fast paths.  Arbitrary distance
        callables fall back to the candidate-list scan.
        """
        return self._distance_order is not None

    def __init__(
        self,
        hyperplane_factory: HyperplaneSetFactory,
        *,
        k: int = 1,
        distance: "DistanceFunction | str" = "l2",
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        self._hyperplane_factory = hyperplane_factory
        self._k = k
        # Minkowski order of the distance when it is a norm known by name;
        # the vectorised subclasses only take their numpy paths when set.
        self._distance_order: Optional[float] = (
            MINKOWSKI_ORDERS.get(distance.strip().lower())
            if isinstance(distance, str)
            else None
        )
        self._distance = get_distance(distance) if isinstance(distance, str) else distance
        self._sets_by_dimension: Dict[int, HyperplaneSet] = {}

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        """Number of neighbours kept per region."""
        return self._k

    @property
    def distance(self) -> DistanceFunction:
        """Distance function used for ranking candidates."""
        return self._distance

    def hyperplane_set(self, dimension: int) -> HyperplaneSet:
        """The hyperplane set used for ``dimension``-dimensional identifiers."""
        if dimension not in self._sets_by_dimension:
            hyperplane_set = self._hyperplane_factory(dimension)
            if hyperplane_set.dimension != dimension:
                raise ValueError(
                    f"hyperplane factory returned a set of dimension "
                    f"{hyperplane_set.dimension}, expected {dimension}"
                )
            self._sets_by_dimension[dimension] = hyperplane_set
        return self._sets_by_dimension[dimension]

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def select(
        self,
        reference: PeerInfo,
        candidates: Sequence[PeerInfo],
        *,
        index: "Optional[SpatialIndex]" = None,
    ) -> List[int]:
        if index is not None:
            return self._select_indexed(reference, index)
        others = self._exclude_reference(reference, candidates)
        if not others:
            return []
        hyperplane_set = self.hyperplane_set(reference.dimension)

        by_region: Dict[tuple, List[PeerInfo]] = {}
        for candidate in others:
            signature = hyperplane_set.signature(
                candidate.coordinates, reference=reference.coordinates
            )
            by_region.setdefault(signature, []).append(candidate)

        selected: List[int] = []
        for signature in sorted(by_region):
            region_candidates = by_region[signature]
            region_candidates.sort(
                key=lambda peer: (
                    self._distance(reference.coordinates, peer.coordinates),
                    peer.peer_id,
                )
            )
            selected.extend(peer.peer_id for peer in region_candidates[: self._k])
        return selected

    def _select_indexed(
        self, reference: PeerInfo, index: "SpatialIndex"
    ) -> List[int]:
        """Per-region top-``K`` over the spatial index.

        One :meth:`~repro.geometry.index.SpatialIndex.region_top_k` query
        answers the whole selection: the index discovers the non-empty
        regions and their ``K`` closest members by best-first traversal,
        output-sensitive in ``regions x K`` instead of linear in the
        candidate count.  The emission order matches the scan exactly --
        regions in sorted signature order, members in ``(distance, peer
        id)`` rank order.  Shared by the whole Hyperplanes family
        (orthogonal, sign-coefficient and the ``H = 0`` K-closest instance,
        whose single region makes this the classic nearest-``K`` query).
        """
        hyperplane_set = self.hyperplane_set(reference.dimension)
        regions = index.region_top_k(
            reference.coordinates,
            hyperplane_set,
            self._k,
            order=self._distance_order,
            exclude=(reference.peer_id,),
        )
        selected: List[int] = []
        for signature in sorted(regions):
            selected.extend(regions[signature])
        return selected

    def select_many_additive(
        self,
        updates: Sequence[Tuple[PeerInfo, Sequence[PeerInfo], Sequence[PeerInfo]]],
        *,
        index: "Optional[SpatialIndex]" = None,
    ) -> Optional[Dict[int, List[int]]]:
        """Per-region top-``K`` delta rule for candidate sets that only gained.

        The regions are independent and the per-region ranking is the strict
        total order ``(distance, peer id)``, so a single gained candidate
        ``Q`` can only affect *its own* region of the reference peer: the
        new selection of that region is the top ``K`` of ``previous region
        selection + Q``, and every other region is untouched.  Concretely:

        * if the region already holds ``K`` members that all rank ahead of
          ``Q``, the selection is unchanged (the reference is *omitted* from
          the result, which callers read as "unchanged");
        * otherwise ``Q`` enters and the now ``(K+1)``-th ranked member of
          the region -- if any -- is evicted.

        Updates with several gained candidates (gossip-limited rounds on
        small neighbourhoods) fall back to a full ``select`` over ``selected
        + gained``, which path independence makes exact.  The rule is shared
        by the whole Hyperplanes family -- orthogonal, sign-coefficient and
        the degenerate ``H = 0`` (K-closest, one region) instance.

        ``index`` is accepted for batched-API uniformity; the delta rule
        already touches only the selection and the gained peers, so it never
        consults the index.
        """
        if index is not None:
            self._check_index_support()
        results: Dict[int, List[int]] = {}
        for reference, selected, gained in updates:
            gained_others = self._exclude_reference(reference, gained)
            if not gained_others:
                continue
            selected_ids = {peer.peer_id for peer in selected}
            if len(gained_others) > 1 or gained_others[0].peer_id in selected_ids:
                results[reference.peer_id] = self.select(
                    reference, self.merge_candidate_delta(selected, gained)
                )
                continue
            gained_peer = gained_others[0]
            hyperplane_set = self.hyperplane_set(reference.dimension)
            signature = hyperplane_set.signature(
                gained_peer.coordinates, reference=reference.coordinates
            )

            def rank(peer: PeerInfo) -> Tuple[float, int]:
                return (
                    self._distance(reference.coordinates, peer.coordinates),
                    peer.peer_id,
                )

            region = [
                peer
                for peer in selected
                if hyperplane_set.signature(
                    peer.coordinates, reference=reference.coordinates
                )
                == signature
            ]
            ranked = sorted(region + [gained_peer], key=rank)
            kept = ranked[: self._k]
            if gained_peer not in kept:
                continue
            evicted = {peer.peer_id for peer in ranked[self._k :]}
            new_selection = [
                peer.peer_id for peer in selected if peer.peer_id not in evicted
            ]
            new_selection.append(gained_peer.peer_id)
            results[reference.peer_id] = sorted(new_selection)
        return results

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(k={self._k})"
