"""The generic Hyperplanes neighbour selection method.

A peer ``P`` conceptually translates every candidate so that ``P`` becomes
the origin of the coordinate system.  A fixed set of ``H`` hyperplanes
through the origin splits space into regions; within every region, ``P``
keeps the ``K`` candidates closest to the origin (i.e. closest to ``P``)
according to a configurable distance function.

The three named instances of the paper are provided as subclasses /
specialisations:

* :class:`~repro.overlay.selection.orthogonal.OrthogonalHyperplanesSelection`
* :class:`~repro.overlay.selection.sign_vectors.SignCoefficientHyperplanesSelection`
* :class:`~repro.overlay.selection.k_closest.KClosestSelection` (``H = 0``)
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro.geometry.distance import DistanceFunction, get_distance
from repro.geometry.hyperplane import HyperplaneSet
from repro.overlay.peer import PeerInfo
from repro.overlay.selection.base import NeighbourSelectionMethod

__all__ = ["HyperplanesSelection"]

HyperplaneSetFactory = Callable[[int], HyperplaneSet]


class HyperplanesSelection(NeighbourSelectionMethod):
    """Keep the ``K`` closest candidates of every hyperplane region.

    Parameters
    ----------
    hyperplane_factory:
        Builds the :class:`~repro.geometry.hyperplane.HyperplaneSet` for a
        given dimension.  The factory is invoked lazily (the dimension is only
        known once peers are seen) and its result cached per dimension.
    k:
        Number of neighbours kept per region (the paper's ``K``).
    distance:
        Distance function used for the "closest" ranking, either a callable
        or a name understood by :func:`repro.geometry.distance.get_distance`.
        Defaults to Euclidean distance.
    """

    def __init__(
        self,
        hyperplane_factory: HyperplaneSetFactory,
        *,
        k: int = 1,
        distance: "DistanceFunction | str" = "l2",
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        self._hyperplane_factory = hyperplane_factory
        self._k = k
        self._distance = get_distance(distance) if isinstance(distance, str) else distance
        self._sets_by_dimension: Dict[int, HyperplaneSet] = {}

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        """Number of neighbours kept per region."""
        return self._k

    @property
    def distance(self) -> DistanceFunction:
        """Distance function used for ranking candidates."""
        return self._distance

    def hyperplane_set(self, dimension: int) -> HyperplaneSet:
        """The hyperplane set used for ``dimension``-dimensional identifiers."""
        if dimension not in self._sets_by_dimension:
            hyperplane_set = self._hyperplane_factory(dimension)
            if hyperplane_set.dimension != dimension:
                raise ValueError(
                    f"hyperplane factory returned a set of dimension "
                    f"{hyperplane_set.dimension}, expected {dimension}"
                )
            self._sets_by_dimension[dimension] = hyperplane_set
        return self._sets_by_dimension[dimension]

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def select(
        self, reference: PeerInfo, candidates: Sequence[PeerInfo]
    ) -> List[int]:
        others = self._exclude_reference(reference, candidates)
        if not others:
            return []
        hyperplane_set = self.hyperplane_set(reference.dimension)

        by_region: Dict[tuple, List[PeerInfo]] = {}
        for candidate in others:
            signature = hyperplane_set.signature(
                candidate.coordinates, reference=reference.coordinates
            )
            by_region.setdefault(signature, []).append(candidate)

        selected: List[int] = []
        for signature in sorted(by_region):
            region_candidates = by_region[signature]
            region_candidates.sort(
                key=lambda peer: (
                    self._distance(reference.coordinates, peer.coordinates),
                    peer.peer_id,
                )
            )
            selected.extend(peer.peer_id for peer in region_candidates[: self._k])
        return selected

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(k={self._k})"
