"""The Orthogonal Hyperplanes neighbour selection method (instance 1).

The hyperplane set consists of the ``D`` coordinate hyperplanes ``x(i) = 0``
(after the conceptual translation that puts the reference peer at the
origin), so the regions are the ``2^D`` orthants around the reference peer
and the method keeps the ``K`` closest candidates of every orthant.

This is the method the paper uses to build the overlay for the Section 3
(stability) experiments, swept over ``D = 2..10`` and ``K = 1..50``; a
vectorised equilibrium path keeps that sweep tractable.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

import numpy as np

from repro.geometry.distance import DistanceFunction
from repro.geometry.hyperplane import HyperplaneSet
from repro.overlay.peer import PeerInfo
from repro.overlay.selection.hyperplanes import HyperplanesSelection

__all__ = ["OrthogonalHyperplanesSelection"]

_DISTANCE_NAMES = {"l1": 1.0, "manhattan": 1.0, "l2": 2.0, "euclidean": 2.0,
                   "linf": float("inf"), "chebyshev": float("inf")}


class OrthogonalHyperplanesSelection(HyperplanesSelection):
    """Keep the ``K`` closest candidates in each of the ``2^D`` orthants."""

    def __init__(self, *, k: int = 1, distance: "DistanceFunction | str" = "l2") -> None:
        self._distance_order = (
            _DISTANCE_NAMES.get(distance.strip().lower()) if isinstance(distance, str) else None
        )
        super().__init__(HyperplaneSet.orthogonal, k=k, distance=distance)

    def compute_equilibrium(self, peers: Sequence[PeerInfo]) -> Dict[int, Set[int]]:
        """Vectorised full-knowledge equilibrium.

        Uses numpy when the configured distance is a Minkowski norm known by
        name (L1, L2, L-infinity); otherwise falls back to the generic
        per-peer path.  Both paths produce identical neighbour sets (up to the
        deterministic peer-id tie-break), which is covered by tests.
        """
        if self._distance_order is None or not peers:
            return super().compute_equilibrium(peers)

        peer_ids = [peer.peer_id for peer in peers]
        coords = np.asarray([tuple(peer.coordinates) for peer in peers], dtype=float)
        count, dimension = coords.shape
        powers = 1 << np.arange(dimension)
        result: Dict[int, Set[int]] = {}

        for index in range(count):
            deltas = coords - coords[index]
            mask = np.ones(count, dtype=bool)
            mask[index] = False
            # Orthant code of every other peer: bit i set when delta on axis i > 0.
            codes = ((deltas > 0) @ powers).astype(np.int64)
            distances = _minkowski(deltas, self._distance_order)
            selected: Set[int] = set()
            other_indices = np.nonzero(mask)[0]
            other_codes = codes[other_indices]
            other_distances = distances[other_indices]
            for code in np.unique(other_codes):
                members = other_indices[other_codes == code]
                member_distances = other_distances[other_codes == code]
                order = np.lexsort((members, member_distances))[: self.k]
                selected.update(int(peer_ids[m]) for m in members[order])
            result[peer_ids[index]] = selected
        return result


def _minkowski(deltas: np.ndarray, order: float) -> np.ndarray:
    """Row-wise Minkowski norm of a matrix of coordinate differences."""
    magnitudes = np.abs(deltas)
    if order == 1.0:
        return magnitudes.sum(axis=1)
    if order == 2.0:
        return np.sqrt((magnitudes ** 2).sum(axis=1))
    return magnitudes.max(axis=1)
