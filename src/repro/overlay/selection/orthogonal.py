"""The Orthogonal Hyperplanes neighbour selection method (instance 1).

The hyperplane set consists of the ``D`` coordinate hyperplanes ``x(i) = 0``
(after the conceptual translation that puts the reference peer at the
origin), so the regions are the ``2^D`` orthants around the reference peer
and the method keeps the ``K`` closest candidates of every orthant.

This is the method the paper uses to build the overlay for the Section 3
(stability) experiments, swept over ``D = 2..10`` and ``K = 1..50``; a
vectorised equilibrium path keeps that sweep tractable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Set

import numpy as np

from repro.geometry.distance import DistanceFunction
from repro.geometry.hyperplane import HyperplaneSet
from repro.overlay.peer import PeerInfo
from repro.overlay.selection.hyperplanes import (
    VECTORISE_THRESHOLD,
    HyperplanesSelection,
    minkowski,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.geometry.index import SpatialIndex

__all__ = ["OrthogonalHyperplanesSelection"]


class OrthogonalHyperplanesSelection(HyperplanesSelection):
    """Keep the ``K`` closest candidates in each of the ``2^D`` orthants."""

    def __init__(self, *, k: int = 1, distance: "DistanceFunction | str" = "l2") -> None:
        super().__init__(HyperplaneSet.orthogonal, k=k, distance=distance)

    def select_many(
        self,
        references: Sequence[PeerInfo],
        candidates_by_peer: Mapping[int, Sequence[PeerInfo]],
        *,
        index: "Optional[SpatialIndex]" = None,
    ) -> Dict[int, List[int]]:
        """Batched per-orthant top-``K``; numpy for named Minkowski distances."""
        if self._distance_order is None:
            return super().select_many(references, candidates_by_peer, index=index)
        return self._select_many_dispatch(
            references,
            candidates_by_peer,
            VECTORISE_THRESHOLD,
            self._select_vectorised,
            index=index,
        )

    def _select_vectorised(
        self, reference: PeerInfo, candidates: Sequence[PeerInfo]
    ) -> List[int]:
        others = self._exclude_reference(reference, candidates)
        if not others:
            return []
        ids = np.asarray([peer.peer_id for peer in others], dtype=np.int64)
        coords = np.asarray([tuple(peer.coordinates) for peer in others], dtype=float)
        origin = np.asarray(tuple(reference.coordinates), dtype=float)
        deltas = coords - origin
        powers = 1 << np.arange(coords.shape[1])
        codes = ((deltas > 0) @ powers).astype(np.int64)
        distances = minkowski(deltas, self._distance_order)
        selected: List[int] = []
        for code in np.unique(codes):
            mask = codes == code
            member_ids = ids[mask]
            ranking = np.lexsort((member_ids, distances[mask]))[: self.k]
            selected.extend(int(member_ids[position]) for position in ranking)
        return selected

    def compute_equilibrium(self, peers: Sequence[PeerInfo]) -> Dict[int, Set[int]]:
        """Vectorised full-knowledge equilibrium.

        Uses numpy when the configured distance is a Minkowski norm known by
        name (L1, L2, L-infinity); otherwise falls back to the generic
        per-peer path.  Both paths produce identical neighbour sets (up to the
        deterministic peer-id tie-break), which is covered by tests.
        """
        if self._distance_order is None or not peers:
            return super().compute_equilibrium(peers)

        peer_ids = [peer.peer_id for peer in peers]
        coords = np.asarray([tuple(peer.coordinates) for peer in peers], dtype=float)
        count, dimension = coords.shape
        powers = 1 << np.arange(dimension)
        result: Dict[int, Set[int]] = {}

        for index in range(count):
            deltas = coords - coords[index]
            mask = np.ones(count, dtype=bool)
            mask[index] = False
            # Orthant code of every other peer: bit i set when delta on axis i > 0.
            codes = ((deltas > 0) @ powers).astype(np.int64)
            distances = minkowski(deltas, self._distance_order)
            selected: Set[int] = set()
            other_indices = np.nonzero(mask)[0]
            other_codes = codes[other_indices]
            other_distances = distances[other_indices]
            for code in np.unique(other_codes):
                members = other_indices[other_codes == code]
                member_distances = other_distances[other_codes == code]
                order = np.lexsort((members, member_distances))[: self.k]
                selected.update(int(peer_ids[m]) for m in members[order])
            result[peer_ids[index]] = selected
        return result

