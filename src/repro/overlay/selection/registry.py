"""Name-based registry of neighbour selection methods.

Experiments and examples are configured with plain strings ("orthogonal",
"empty-rectangle", ...); this module maps those names to constructors so that
configuration files never need to import concrete classes.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.overlay.selection.base import NeighbourSelectionMethod
from repro.overlay.selection.empty_rectangle import EmptyRectangleSelection
from repro.overlay.selection.k_closest import KClosestSelection
from repro.overlay.selection.orthogonal import OrthogonalHyperplanesSelection
from repro.overlay.selection.sign_vectors import SignCoefficientHyperplanesSelection

__all__ = ["available_methods", "make_selection_method"]

_FACTORIES: Dict[str, Callable[..., NeighbourSelectionMethod]] = {
    "empty-rectangle": lambda **kwargs: EmptyRectangleSelection(),
    "orthogonal": OrthogonalHyperplanesSelection,
    "sign-coefficients": SignCoefficientHyperplanesSelection,
    "k-closest": KClosestSelection,
}

_ALIASES: Dict[str, str] = {
    "empty_rectangle": "empty-rectangle",
    "rectangle": "empty-rectangle",
    "orthogonal-hyperplanes": "orthogonal",
    "orthogonal_hyperplanes": "orthogonal",
    "sign": "sign-coefficients",
    "sign_coefficients": "sign-coefficients",
    "h0": "k-closest",
    "k_closest": "k-closest",
    "closest": "k-closest",
}


def available_methods() -> List[str]:
    """Canonical names of all registered neighbour selection methods."""
    return sorted(_FACTORIES)


def make_selection_method(name: str, **kwargs) -> NeighbourSelectionMethod:
    """Instantiate a neighbour selection method by name.

    ``kwargs`` (typically ``k`` and ``distance``) are forwarded to the
    method's constructor.  The empty-rectangle method takes no parameters and
    silently ignores any that are passed, because sweep drivers configure all
    methods uniformly.
    """
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    try:
        factory = _FACTORIES[key]
    except KeyError:
        known = ", ".join(available_methods())
        raise ValueError(f"unknown selection method {name!r}; known: {known}") from None
    return factory(**kwargs)
