"""The sign-coefficient Hyperplanes selection method (instance 2).

The hyperplane set contains every hyperplane
``a(1)·x(1) + ... + a(D)·x(D) = 0`` whose coefficients are ``-1``, ``0`` or
``+1`` (one representative per opposite pair, the zero vector excluded).
With ``(3^D - 1) / 2`` hyperplanes the regions are much finer than the
orthants, so the method keeps more neighbours and yields a denser, more
fault-tolerant overlay -- the paper cites it from the authors' earlier
storage-architecture work.
"""

from __future__ import annotations

from repro.geometry.distance import DistanceFunction
from repro.geometry.hyperplane import HyperplaneSet
from repro.overlay.selection.hyperplanes import HyperplanesSelection

__all__ = ["SignCoefficientHyperplanesSelection"]


class SignCoefficientHyperplanesSelection(HyperplanesSelection):
    """Keep the ``K`` closest candidates in every sign-coefficient region.

    Warning: the number of hyperplanes grows as ``(3^D - 1) / 2``, so the
    number of distinct regions grows quickly with the dimension.  The paper's
    experiments use this method only implicitly (as related work); it is
    provided for completeness and used by the ablation benchmarks at small
    ``D``.
    """

    def __init__(self, *, k: int = 1, distance: "DistanceFunction | str" = "l2") -> None:
        super().__init__(HyperplaneSet.sign_coefficients, k=k, distance=distance)
