"""Empty-rectangle neighbour selection (the Section 2 experimental method).

A peer ``P`` keeps as neighbour every candidate ``Q`` from ``I(P)`` such that
the axis-aligned hyper-rectangle having ``P`` and ``Q`` as opposite corners
contains no other candidate from ``I(P)``.

Equivalence with per-orthant Pareto minima
------------------------------------------

Let ``delta(R) = x(R) - x(P)`` for every candidate ``R``.  A peer ``R`` lies
inside the bounding box of ``P`` and ``Q`` exactly when, on every axis,
``x(R, i)`` lies between ``x(P, i)`` and ``x(Q, i)``; with pairwise-distinct
per-axis coordinates that forces ``sign(delta(R, i)) = sign(delta(Q, i))``
for every axis (``R`` is in the same orthant as ``Q`` relative to ``P``) and
``|delta(R, i)| <= |delta(Q, i)|`` (``R`` dominates ``Q`` component-wise in
absolute value).  Hence:

    ``Q`` is an empty-rectangle neighbour of ``P``
    <=>  no other candidate in ``Q``'s orthant dominates ``Q``
    <=>  ``Q`` is a Pareto-minimal point of its orthant (in ``|delta|``).

This turns an ``O(m^2)`` emptiness test per candidate into one skyline
computation per orthant, which is what makes the paper's ``N = 1000``
experiments (and the ``N = 5000`` point of Figure 1(c)) tractable.  The
brute-force definition is kept as
:func:`brute_force_empty_rectangle_neighbours` and the two are cross-checked
by tests and by property-based (hypothesis) tests.

The equivalence, and therefore the fast path, relies on the paper's
distinct-coordinate assumption; the workload generators enforce it.
"""

from __future__ import annotations

from itertools import product
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.geometry.rectangle import HyperRectangle
# The canonical (L1 magnitude, id)-ordered non-strict dominance rule, shared
# with the spatial index and the brute-force reference so the three paths
# cannot drift apart.
from repro.geometry.index import pareto_minima as _pareto_minima
from repro.overlay.peer import PeerInfo
from repro.overlay.selection.base import AdditiveCohort, NeighbourSelectionMethod

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.geometry.index import SpatialIndex

__all__ = ["EmptyRectangleSelection", "brute_force_empty_rectangle_neighbours"]

# Below this many candidates the plain-python select() beats the numpy path
# (array construction dominates); the batched API switches implementation per
# reference so churn-scale workloads get the best of both.
_VECTORISE_THRESHOLD = 32


class EmptyRectangleSelection(NeighbourSelectionMethod):
    """Keep every candidate whose bounding box with the reference peer is empty."""

    # Per-orthant skylines are path independent: dropping dominated (never
    # selected) candidates cannot change the Pareto minima of the orthant.
    path_independent = True

    # The per-orthant skyline is exactly the spatial index's branch-and-bound
    # skyline query, so the indexed path is byte-identical to the scan.
    supports_index = True

    def select(
        self,
        reference: PeerInfo,
        candidates: Sequence[PeerInfo],
        *,
        index: "Optional[SpatialIndex]" = None,
    ) -> List[int]:
        if index is not None:
            return self._select_indexed(reference, index)
        others = self._exclude_reference(reference, candidates)
        if not others:
            return []

        by_region: Dict[Tuple[int, ...], List[Tuple[Tuple[float, ...], int]]] = {}
        origin = reference.coordinates
        for candidate in others:
            signs = tuple(
                1 if c > o else -1 for c, o in zip(candidate.coordinates, origin)
            )
            # Dominance is checked on sign-flipped *raw* coordinates rather
            # than on |Q - P| differences: the comparisons are then exactly
            # the ones the bounding-box definition performs, so the fast path
            # agrees with brute_force_empty_rectangle_neighbours bit for bit
            # (subtracting first can round away tiny coordinate differences).
            keys = tuple(s * c for s, c in zip(signs, candidate.coordinates))
            by_region.setdefault(signs, []).append((keys, candidate.peer_id))

        selected: List[int] = []
        for signs in sorted(by_region):
            for _, peer_id in _pareto_minima(by_region[signs]):
                selected.append(peer_id)
        return sorted(selected)

    def select_many(
        self,
        references: Sequence[PeerInfo],
        candidates_by_peer: Mapping[int, Sequence[PeerInfo]],
        *,
        index: "Optional[SpatialIndex]" = None,
    ) -> Dict[int, List[int]]:
        """Batched selection, vectorising each large candidate set in numpy.

        The incremental convergence engine mixes tiny candidate sets (a
        peer's previous selection plus the few newly learned peers) with
        occasional full-knowledge recomputations; each reference uses the
        implementation that is faster at its candidate count.  With an
        ``index`` every reference goes through the branch-and-bound skyline
        instead of any scan.
        """
        return self._select_many_dispatch(
            references,
            candidates_by_peer,
            _VECTORISE_THRESHOLD,
            self._select_vectorised,
            index=index,
        )

    def _select_indexed(
        self, reference: PeerInfo, index: "SpatialIndex"
    ) -> List[int]:
        """Per-orthant branch-and-bound skylines over the spatial index.

        One :meth:`~repro.geometry.index.SpatialIndex.orthant_skyline` query
        per orthant around the reference peer, each output-sensitive in the
        skyline size instead of linear in the candidate count.  The index
        contents are the candidate set by the caller's contract; the
        reference excludes itself by id (never by position, matching
        ``_exclude_reference``).
        """
        origin = reference.coordinates
        exclude = (reference.peer_id,)
        selected: List[int] = []
        for signs in product((-1, 1), repeat=reference.dimension):
            selected.extend(index.orthant_skyline(origin, signs, exclude=exclude))
        return sorted(selected)

    def select_many_additive(
        self,
        updates: Sequence[Tuple[PeerInfo, Sequence[PeerInfo], Sequence[PeerInfo]]],
        *,
        index: "Optional[SpatialIndex]" = None,
    ) -> Optional[Dict[int, List[int]]]:
        """Vectorised skyline update for candidate sets that only gained peers.

        The churn-scale hot path: when one peer joins under full knowledge,
        every existing peer's candidate set gains exactly that peer.  For a
        clean reference ``P`` with selection ``S`` the skyline update rule is
        local:

        * if some ``s in S`` dominates the gained peer ``Q`` in ``Q``'s
          orthant, nothing changes (``Q`` is boxed out, and by transitivity
          ``Q`` cannot box out any skyline member either);
        * otherwise ``Q`` joins the selection and evicts exactly the members
          it dominates.

        Both tests are flat comparisons over the ``(reference, selected)``
        pairs, so the whole batch is a handful of numpy operations
        regardless of how many peers are dirty.  References whose selection
        is unchanged may be omitted from the result.  Updates with several
        gained peers (rare: only gossip-limited rounds produce them, on
        small neighbourhoods) simply re-select from ``selected + gained``,
        which path independence makes exact.  Like the fast ``select`` path,
        the vectorised rule relies on the paper's distinct-coordinate
        assumption.

        ``index`` is accepted for batched-API uniformity; the delta rule
        already touches only the selection and the gained peers, so it never
        consults the index.
        """
        if index is not None:
            self._check_index_support()
        results: Dict[int, List[int]] = {}
        singles = []
        for reference, selected, gained in updates:
            if len(gained) == 1:
                singles.append((reference, list(selected), gained[0]))
            else:
                results[reference.peer_id] = self.select(
                    reference, self.merge_candidate_delta(selected, gained)
                )
        results.update(self._additive_step(singles) if singles else {})
        return results

    def install_many(
        self,
        full_references: Sequence[PeerInfo],
        candidates_by_peer: Mapping[int, Sequence[PeerInfo]],
        additive_cohorts: Sequence[AdditiveCohort],
        *,
        index: "Optional[SpatialIndex]" = None,
    ) -> Dict[int, List[int]]:
        """Cohort install via the empty-rectangle symmetry fan-out.

        Under full knowledge, the emptiness of ``box(P, Q)`` is symmetric in
        ``P`` and ``Q``: ``Q`` is in ``select(P, everyone)`` exactly when
        ``P`` is in ``select(Q, everyone)``.  On the vectorised round path
        every gained candidate of an additive cohort is itself a
        full-recompute reference (joins, moves and rejoins all force the
        gained peer onto the full path), so the gained peers' own indexed
        recomputations double as a *reverse index* of exactly the cohort
        members whose selection can change:

        * a member ``P`` named by some gain's recompute gains that peer
          (symmetry: the box is empty both ways), so its additive update is
          a real change and runs through the vectorised single-gain rule;
        * a member named by no gain provably keeps its selection -- a gain
          boxed out of ``select(P, everyone)`` can, by dominance
          transitivity, neither enter it nor evict anything from it.

        Total additive cost is therefore O(changed selections), independent
        of cohort size -- the property the N=100k round protocol rests on.
        Falls back to the generic expansion when there is no index (the scan
        arms) or when a caller hands a cohort whose gains were not fully
        recomputed (never the engine; the precondition is asserted cheaply).
        """
        if index is None:
            return super().install_many(
                full_references, candidates_by_peer, additive_cohorts, index=index
            )
        full_ids = {reference.peer_id for reference in full_references}
        if any(
            gain.peer_id not in full_ids
            for cohort in additive_cohorts
            for gain in cohort.gained
        ):
            return super().install_many(
                full_references, candidates_by_peer, additive_cohorts, index=index
            )
        results = self._select_many_indexed(full_references, index)
        updates: List[Tuple[PeerInfo, Sequence[PeerInfo], Sequence[PeerInfo]]] = []
        for cohort in additive_cohorts:
            member_ids = np.asarray(cohort.member_ids, dtype=np.int64)
            affected: Dict[int, List[PeerInfo]] = {}
            for gain in cohort.gained:
                for selected_id in results[gain.peer_id]:
                    position = int(np.searchsorted(member_ids, selected_id))
                    if (
                        position < len(member_ids)
                        and int(member_ids[position]) == selected_id
                    ):
                        affected.setdefault(selected_id, []).append(gain)
            for member_id in sorted(affected):
                updates.append(
                    (
                        cohort.member_of(member_id),
                        cohort.selected_of(member_id),
                        affected[member_id],
                    )
                )
        if updates:
            delta = self.select_many_additive(updates)
            if delta:
                results.update(delta)
        return results

    def _additive_step(
        self, batch: Sequence[Tuple[PeerInfo, List[PeerInfo], PeerInfo]]
    ) -> Dict[int, List[int]]:
        """One gained candidate per reference; returns only changed selections."""
        ref_coords = np.asarray(
            [tuple(reference.coordinates) for reference, _, _ in batch], dtype=float
        )
        gain_coords = np.asarray(
            [tuple(gained.coordinates) for _, _, gained in batch], dtype=float
        )
        dimension = ref_coords.shape[1]
        powers = 1 << np.arange(dimension)
        greater_gain = gain_coords > ref_coords
        gain_keys = np.where(greater_gain, gain_coords, -gain_coords)
        gain_codes = (greater_gain @ powers).astype(np.int64)

        owners: List[int] = []
        pair_coords: List[Tuple[float, ...]] = []
        for index, (_, selected, _) in enumerate(batch):
            for peer in selected:
                owners.append(index)
                pair_coords.append(tuple(peer.coordinates))
        blocked = np.zeros(len(batch), dtype=bool)
        if owners:
            owner_index = np.asarray(owners, dtype=np.int64)
            member_coords = np.asarray(pair_coords, dtype=float)
            origin = ref_coords[owner_index]
            greater = member_coords > origin
            member_keys = np.where(greater, member_coords, -member_coords)
            member_codes = (greater @ powers).astype(np.int64)
            same_orthant = member_codes == gain_codes[owner_index]
            member_dominates = same_orthant & np.all(
                member_keys <= gain_keys[owner_index], axis=1
            )
            gain_dominates = same_orthant & np.all(
                gain_keys[owner_index] <= member_keys, axis=1
            )
            np.logical_or.at(blocked, owner_index, member_dominates)
            evicted_pairs = np.nonzero(gain_dominates)[0]
        else:
            owner_index = np.zeros(0, dtype=np.int64)
            evicted_pairs = np.zeros(0, dtype=np.int64)

        evicted_by_owner: Dict[int, Set[int]] = {}
        flat_position = 0
        positions: List[int] = []
        for index, (_, selected, _) in enumerate(batch):
            positions.append(flat_position)
            flat_position += len(selected)
        for pair in evicted_pairs:
            owner = int(owner_index[pair])
            if blocked[owner]:
                continue
            offset = int(pair) - positions[owner]
            evicted_by_owner.setdefault(owner, set()).add(offset)

        results: Dict[int, List[int]] = {}
        for index, (reference, selected, gained) in enumerate(batch):
            if blocked[index]:
                continue
            evicted = evicted_by_owner.get(index, ())
            kept = [
                peer.peer_id
                for offset, peer in enumerate(selected)
                if offset not in evicted
            ]
            kept.append(gained.peer_id)
            results[reference.peer_id] = sorted(kept)
        return results

    def _select_vectorised(
        self, reference: PeerInfo, candidates: Sequence[PeerInfo]
    ) -> List[int]:
        """Numpy per-orthant skyline for one reference (see select())."""
        others = self._exclude_reference(reference, candidates)
        if not others:
            return []
        ids = np.asarray([peer.peer_id for peer in others], dtype=np.int64)
        coords = np.asarray([tuple(peer.coordinates) for peer in others], dtype=float)
        origin = np.asarray(tuple(reference.coordinates), dtype=float)
        greater = coords > origin
        # Sign-flipped raw coordinates (see select()): dominance checks on
        # these are exactly the bounding-box comparisons of the paper.
        keys = np.where(greater, coords, -coords)
        powers = 1 << np.arange(coords.shape[1])
        codes = (greater @ powers).astype(np.int64)
        selected: List[int] = []
        for code in np.unique(codes):
            mask = codes == code
            selected.extend(_skyline_ids(keys[mask], ids[mask]))
        return sorted(selected)

    def compute_equilibrium(self, peers: Sequence[PeerInfo]) -> Dict[int, Set[int]]:
        """Vectorised full-knowledge equilibrium (per-orthant skylines in numpy)."""
        if not peers:
            return {}
        peer_ids = np.asarray([peer.peer_id for peer in peers], dtype=np.int64)
        coords = np.asarray([tuple(peer.coordinates) for peer in peers], dtype=float)
        count, dimension = coords.shape
        powers = 1 << np.arange(dimension)
        result: Dict[int, Set[int]] = {}

        for index in range(count):
            greater = coords > coords[index]
            # Sign-flipped raw coordinates (see select()): dominance checks on
            # these are exactly the bounding-box comparisons of the paper.
            keys = np.where(greater, coords, -coords)
            codes = (greater @ powers).astype(np.int64)
            mask = np.ones(count, dtype=bool)
            mask[index] = False
            other_indices = np.nonzero(mask)[0]
            selected: Set[int] = set()
            other_codes = codes[other_indices]
            for code in np.unique(other_codes):
                members = other_indices[other_codes == code]
                selected.update(_skyline_ids(keys[members], peer_ids[members]))
            result[int(peer_ids[index])] = selected
        return result


def _skyline_ids(member_keys: np.ndarray, member_ids: np.ndarray) -> List[int]:
    """Ids of the Pareto-minimal rows of ``member_keys`` (component-wise ``<=``).

    The numpy counterpart of :func:`_pareto_minima`, shared by the vectorised
    equilibrium and batched-selection paths: rows are visited in increasing
    ``(L1 magnitude, peer id)`` order, so a kept row can never be dominated by
    a later one and one pass with dominance checks against the kept set
    suffices.
    """
    # reprolint: disable=RPL003 reason=row-wise reduction over a fixed-arity dimension axis; byte-identity with the scan's L1 key is property-tested (test_indexed_selection)
    order = np.lexsort((member_ids, member_keys.sum(axis=1)))
    kept_rows: List[np.ndarray] = []
    kept_ids: List[int] = []
    for position in order:
        row = member_keys[position]
        if kept_rows and bool(np.all(np.asarray(kept_rows) <= row, axis=1).any()):
            continue
        kept_rows.append(row)
        kept_ids.append(int(member_ids[position]))
    return kept_ids


def brute_force_empty_rectangle_neighbours(
    reference: PeerInfo, candidates: Sequence[PeerInfo]
) -> List[int]:
    """Literal implementation of the paper's definition (quadratic).

    ``Q`` is kept when the closed axis-aligned box spanned by the identifiers
    of the reference peer and ``Q`` contains no other candidate.  Used by
    tests as the ground truth for :class:`EmptyRectangleSelection`.
    """
    others = [c for c in candidates if c.peer_id != reference.peer_id]
    selected: List[int] = []
    for candidate in others:
        box = HyperRectangle.bounding_box(reference.coordinates, candidate.coordinates)
        blocked = False
        for blocker in others:
            if blocker.peer_id == candidate.peer_id:
                continue
            if box.contains(blocker.coordinates):
                blocked = True
                break
        if not blocked:
            selected.append(candidate.peer_id)
    return sorted(selected)
