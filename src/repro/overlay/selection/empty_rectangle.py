"""Empty-rectangle neighbour selection (the Section 2 experimental method).

A peer ``P`` keeps as neighbour every candidate ``Q`` from ``I(P)`` such that
the axis-aligned hyper-rectangle having ``P`` and ``Q`` as opposite corners
contains no other candidate from ``I(P)``.

Equivalence with per-orthant Pareto minima
------------------------------------------

Let ``delta(R) = x(R) - x(P)`` for every candidate ``R``.  A peer ``R`` lies
inside the bounding box of ``P`` and ``Q`` exactly when, on every axis,
``x(R, i)`` lies between ``x(P, i)`` and ``x(Q, i)``; with pairwise-distinct
per-axis coordinates that forces ``sign(delta(R, i)) = sign(delta(Q, i))``
for every axis (``R`` is in the same orthant as ``Q`` relative to ``P``) and
``|delta(R, i)| <= |delta(Q, i)|`` (``R`` dominates ``Q`` component-wise in
absolute value).  Hence:

    ``Q`` is an empty-rectangle neighbour of ``P``
    <=>  no other candidate in ``Q``'s orthant dominates ``Q``
    <=>  ``Q`` is a Pareto-minimal point of its orthant (in ``|delta|``).

This turns an ``O(m^2)`` emptiness test per candidate into one skyline
computation per orthant, which is what makes the paper's ``N = 1000``
experiments (and the ``N = 5000`` point of Figure 1(c)) tractable.  The
brute-force definition is kept as
:func:`brute_force_empty_rectangle_neighbours` and the two are cross-checked
by tests and by property-based (hypothesis) tests.

The equivalence, and therefore the fast path, relies on the paper's
distinct-coordinate assumption; the workload generators enforce it.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from repro.geometry.rectangle import HyperRectangle
from repro.overlay.peer import PeerInfo
from repro.overlay.selection.base import NeighbourSelectionMethod

__all__ = ["EmptyRectangleSelection", "brute_force_empty_rectangle_neighbours"]


class EmptyRectangleSelection(NeighbourSelectionMethod):
    """Keep every candidate whose bounding box with the reference peer is empty."""

    def select(
        self, reference: PeerInfo, candidates: Sequence[PeerInfo]
    ) -> List[int]:
        others = self._exclude_reference(reference, candidates)
        if not others:
            return []

        by_region: Dict[Tuple[int, ...], List[Tuple[Tuple[float, ...], int]]] = {}
        origin = reference.coordinates
        for candidate in others:
            signs = tuple(
                1 if c > o else -1 for c, o in zip(candidate.coordinates, origin)
            )
            # Dominance is checked on sign-flipped *raw* coordinates rather
            # than on |Q - P| differences: the comparisons are then exactly
            # the ones the bounding-box definition performs, so the fast path
            # agrees with brute_force_empty_rectangle_neighbours bit for bit
            # (subtracting first can round away tiny coordinate differences).
            keys = tuple(s * c for s, c in zip(signs, candidate.coordinates))
            by_region.setdefault(signs, []).append((keys, candidate.peer_id))

        selected: List[int] = []
        for signs in sorted(by_region):
            for _, peer_id in _pareto_minima(by_region[signs]):
                selected.append(peer_id)
        return sorted(selected)

    def compute_equilibrium(self, peers: Sequence[PeerInfo]) -> Dict[int, Set[int]]:
        """Vectorised full-knowledge equilibrium (per-orthant skylines in numpy)."""
        if not peers:
            return {}
        peer_ids = [peer.peer_id for peer in peers]
        coords = np.asarray([tuple(peer.coordinates) for peer in peers], dtype=float)
        count, dimension = coords.shape
        powers = 1 << np.arange(dimension)
        result: Dict[int, Set[int]] = {}

        for index in range(count):
            greater = coords > coords[index]
            # Sign-flipped raw coordinates (see select()): dominance checks on
            # these are exactly the bounding-box comparisons of the paper.
            keys = np.where(greater, coords, -coords)
            codes = (greater @ powers).astype(np.int64)
            mask = np.ones(count, dtype=bool)
            mask[index] = False
            other_indices = np.nonzero(mask)[0]
            selected: Set[int] = set()
            other_codes = codes[other_indices]
            for code in np.unique(other_codes):
                members = other_indices[other_codes == code]
                member_keys = keys[members]
                order = np.argsort(member_keys.sum(axis=1), kind="stable")
                kept_rows: List[np.ndarray] = []
                kept_members: List[int] = []
                for position in order:
                    row = member_keys[position]
                    if kept_rows and bool(
                        np.all(np.asarray(kept_rows) <= row, axis=1).any()
                    ):
                        continue
                    kept_rows.append(row)
                    kept_members.append(int(members[position]))
                selected.update(peer_ids[m] for m in kept_members)
            result[peer_ids[index]] = selected
        return result


def _pareto_minima(
    entries: List[Tuple[Tuple[float, ...], int]]
) -> List[Tuple[Tuple[float, ...], int]]:
    """Pareto-minimal entries (component-wise) of ``(|delta|, peer_id)`` pairs.

    Entries are processed in increasing order of the L1 magnitude; an entry
    already kept can never be dominated by a later one, so a single pass with
    dominance checks against the kept set is sufficient.
    """
    ordered = sorted(entries, key=lambda entry: (sum(entry[0]), entry[1]))
    kept: List[Tuple[Tuple[float, ...], int]] = []
    for deltas, peer_id in ordered:
        dominated = any(
            all(k <= d for k, d in zip(kept_deltas, deltas))
            for kept_deltas, _ in kept
        )
        if not dominated:
            kept.append((deltas, peer_id))
    return kept


def brute_force_empty_rectangle_neighbours(
    reference: PeerInfo, candidates: Sequence[PeerInfo]
) -> List[int]:
    """Literal implementation of the paper's definition (quadratic).

    ``Q`` is kept when the closed axis-aligned box spanned by the identifiers
    of the reference peer and ``Q`` contains no other candidate.  Used by
    tests as the ground truth for :class:`EmptyRectangleSelection`.
    """
    others = [c for c in candidates if c.peer_id != reference.peer_id]
    selected: List[int] = []
    for candidate in others:
        box = HyperRectangle.bounding_box(reference.coordinates, candidate.coordinates)
        blocked = False
        for blocker in others:
            if blocker.peer_id == candidate.peer_id:
                continue
            if box.contains(blocker.coordinates):
                blocked = True
                break
        if not blocked:
            selected.append(candidate.peer_id)
    return sorted(selected)
