"""Gossip bookkeeping: existence announcements and bounded-hop knowledge sets.

In the paper every peer periodically broadcasts its existence (identifier and
network address) ``BR >= 2`` hops away from itself within the P2P overlay.
The set ``I(P)`` of peers whose announcements reached ``P`` during the last
``Tmax`` seconds is the candidate set the neighbour selection method is
applied to.

Two layers use this module:

* :class:`repro.overlay.network.OverlayNetwork` uses the bounded-hop
  reachability helpers to compute the steady-state knowledge sets (every
  announcement that can reach ``P`` within ``BR`` hops has reached it).
* :mod:`repro.simulation.protocol` replays the gossip at the message level
  (individual announcements with timestamps and expiry) and uses
  :class:`AnnouncementStore` to model the ``Tmax`` window.

A bounded radius makes every ``I(P)`` a genuinely *explicit* per-peer set,
which is why gossip-limited overlays always run the incremental engine on
``repro.overlay.incremental.ExplicitCandidateState``: the implicit
columnar representation (``repro.overlay.columnar``) can only express the
full-knowledge "everyone alive but me" shape.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Set

from repro.geometry.point import Point
from repro.overlay.peer import NetworkAddress

__all__ = [
    "ExistenceAnnouncement",
    "AnnouncementStore",
    "peers_within_hops",
    "peers_within_hops_of_any",
    "changed_edge_endpoints",
    "knowledge_sets",
    "knowledge_set_deltas",
]


@dataclass(frozen=True)
class ExistenceAnnouncement:
    """One gossip message: "peer ``origin`` with this identifier/address exists".

    ``remaining_hops`` is decremented at every overlay hop; a peer only
    forwards announcements whose remaining hop budget is still positive.
    """

    origin: int
    coordinates: Point
    address: NetworkAddress
    issued_at: float
    remaining_hops: int

    def __post_init__(self) -> None:
        if self.remaining_hops < 0:
            raise ValueError("remaining_hops must be non-negative")

    def forwarded(self) -> "ExistenceAnnouncement":
        """Copy of the announcement after one more overlay hop."""
        if self.remaining_hops == 0:
            raise ValueError("announcement has no hop budget left to forward")
        return ExistenceAnnouncement(
            origin=self.origin,
            coordinates=self.coordinates,
            address=self.address,
            issued_at=self.issued_at,
            remaining_hops=self.remaining_hops - 1,
        )


class AnnouncementStore:
    """Per-peer store of received announcements with a ``Tmax`` expiry window."""

    def __init__(self, window: float) -> None:
        if window <= 0:
            raise ValueError("the announcement window (Tmax) must be positive")
        self._window = window
        self._latest: Dict[int, ExistenceAnnouncement] = {}

    @property
    def window(self) -> float:
        """The ``Tmax`` retention window in seconds."""
        return self._window

    def record(self, announcement: ExistenceAnnouncement) -> None:
        """Remember the most recent announcement from its origin peer."""
        current = self._latest.get(announcement.origin)
        if current is None or announcement.issued_at >= current.issued_at:
            self._latest[announcement.origin] = announcement

    def forget(self, origin: int) -> None:
        """Drop any stored announcement from ``origin`` (e.g. after its departure)."""
        self._latest.pop(origin, None)

    def known_peers(self, now: float) -> Dict[int, ExistenceAnnouncement]:
        """Announcements still inside the ``Tmax`` window at time ``now``."""
        horizon = now - self._window
        return {
            origin: announcement
            for origin, announcement in self._latest.items()
            if announcement.issued_at >= horizon
        }

    def prune(self, now: float) -> List[int]:
        """Discard announcements older than the ``Tmax`` window.

        Returns the origins whose announcements expired, so callers can evict
        their own per-origin state (known addresses, duplicate-suppression
        keys) alongside the store's.
        """
        horizon = now - self._window
        expired = [
            origin
            for origin, announcement in self._latest.items()
            if announcement.issued_at < horizon
        ]
        for origin in expired:
            del self._latest[origin]
        return expired

    def __len__(self) -> int:
        return len(self._latest)


def peers_within_hops(
    adjacency: Mapping[int, Iterable[int]], source: int, radius: int
) -> Set[int]:
    """Peers reachable from ``source`` in at most ``radius`` overlay hops.

    The source itself is excluded from the result.  This is the steady-state
    footprint of the source's existence announcements when they are flooded
    ``radius`` (= ``BR``) hops away.
    """
    if radius < 0:
        raise ValueError("radius must be non-negative")
    if source not in adjacency:
        raise KeyError(f"unknown peer {source}")
    visited: Set[int] = {source}
    frontier = deque([(source, 0)])
    while frontier:
        node, depth = frontier.popleft()
        if depth == radius:
            continue
        for neighbour in adjacency.get(node, ()):
            if neighbour not in visited:
                visited.add(neighbour)
                frontier.append((neighbour, depth + 1))
    visited.discard(source)
    return visited


def peers_within_hops_of_any(
    adjacency: Mapping[int, Iterable[int]], sources: Iterable[int], radius: int
) -> Set[int]:
    """Peers within ``radius`` hops of *any* source (multi-source BFS).

    Unlike :func:`peers_within_hops` the sources themselves are included --
    a source's own knowledge set is affected by whatever made it a source.
    Sources absent from ``adjacency`` are ignored (e.g. a peer that has
    already departed).
    """
    if radius < 0:
        raise ValueError("radius must be non-negative")
    visited: Set[int] = {source for source in sources if source in adjacency}
    frontier = deque((source, 0) for source in sorted(visited))
    while frontier:
        node, depth = frontier.popleft()
        if depth == radius:
            continue
        for neighbour in adjacency.get(node, ()):
            if neighbour not in visited:
                visited.add(neighbour)
                frontier.append((neighbour, depth + 1))
    return visited


def changed_edge_endpoints(
    old_adjacency: Mapping[int, Iterable[int]],
    new_adjacency: Mapping[int, Iterable[int]],
) -> Set[int]:
    """Endpoints of every edge present in one adjacency but not the other.

    Peers that appear or disappear entirely count as changed endpoints too
    (their incident edges, possibly none, changed by definition).  This is
    the seed set for incremental knowledge-set maintenance: a bounded-radius
    reachability set can only change if an edge changed within ``radius``
    hops of it.
    """
    endpoints: Set[int] = set()
    for peer_id in set(old_adjacency) | set(new_adjacency):
        old_neighbours = set(old_adjacency.get(peer_id, ()))
        new_neighbours = set(new_adjacency.get(peer_id, ()))
        if peer_id not in old_adjacency or peer_id not in new_adjacency:
            endpoints.add(peer_id)
            endpoints |= old_neighbours | new_neighbours
        elif old_neighbours != new_neighbours:
            endpoints.add(peer_id)
            endpoints |= old_neighbours ^ new_neighbours
    return endpoints


def knowledge_sets(
    adjacency: Mapping[int, Iterable[int]], radius: int
) -> Dict[int, Set[int]]:
    """Steady-state ``I(P)`` for every peer.

    Announcements travel symmetric overlay links, so ``Q in I(P)`` exactly
    when ``P`` is within ``radius`` hops of ``Q``; with an undirected
    adjacency this is the same as ``P`` reaching ``Q``, which is what is
    computed here.
    """
    return {
        peer_id: peers_within_hops(adjacency, peer_id, radius)
        for peer_id in adjacency
    }


def knowledge_set_deltas(
    old_adjacency: Mapping[int, Iterable[int]],
    new_adjacency: Mapping[int, Iterable[int]],
    radius: int,
    known: Mapping[int, Set[int]],
) -> Dict[int, Set[int]]:
    """Recomputed ``I(P)`` for every peer whose reachability may have changed.

    ``known`` holds the cached steady-state reachability sets under
    ``old_adjacency``.  Only peers within ``radius`` hops of a changed edge
    (in the union of the two graphs, so both vanished and appeared edges are
    covered) are re-explored; the returned mapping contains exactly the peers
    of ``new_adjacency`` whose recomputed set differs from the cached one --
    the *reachability delta* the incremental reselection engine consumes.
    Departed peers simply stop appearing; the caller drops their cache entry.
    """
    seeds = changed_edge_endpoints(old_adjacency, new_adjacency)
    if not seeds:
        return {}
    union_adjacency: Dict[int, Set[int]] = {}
    for source in (old_adjacency, new_adjacency):
        for peer_id, neighbours in source.items():
            union_adjacency.setdefault(peer_id, set()).update(neighbours)
    affected = peers_within_hops_of_any(union_adjacency, seeds, radius)
    deltas: Dict[int, Set[int]] = {}
    for peer_id in affected:
        if peer_id not in new_adjacency:
            continue
        recomputed = peers_within_hops(new_adjacency, peer_id, radius)
        if recomputed != known.get(peer_id):
            deltas[peer_id] = recomputed
    return deltas
