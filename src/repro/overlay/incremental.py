"""Incremental reselection: converge by reacting to deltas, not global sweeps.

The paper's experimental procedure inserts peers one at a time and lets the
overlay converge after every insertion.  Running that with full synchronous
sweeps (:meth:`repro.overlay.network.OverlayNetwork.reselect_round`) costs a
full ``select()`` for every peer in every round, which makes the procedure
roughly cubic in the population size.  This module maintains the information
needed to re-run selection *only where something could have changed* -- the
reaction-to-deltas pattern gossip aggregation protocols use to reach large
populations.

Dirty-set invariants
--------------------

The engine tracks, for every peer ``P``:

* the candidate id set ``I(P)`` at the moment of ``P``'s last installed
  selection -- or the fact that no selection consistent with the engine's
  bookkeeping exists (freshly joined peers, peers whose neighbour set was
  mutated behind the engine's back by a departure), which forces a full
  recomputation;
* membership of the *dirty set* -- ``P`` is dirty exactly when its current
  ``I(P)`` may differ from the one its selection was installed under.

Clean peers therefore provably reproduce their current selection, so a
partial round that re-selects only dirty peers installs the same topology a
full synchronous sweep would; by induction the incremental path follows the
full-sweep trajectory round for round and terminates in the identical fixed
point (the cross-check property tests exercise exactly this).

*How* that state is represented lives behind the :class:`CandidateView`
contract, with two interchangeable implementations:

* the **implicit columnar representation**
  (:class:`repro.overlay.columnar.ColumnarCandidateState`, the default
  under full knowledge): ``I(P)`` is "everyone alive but ``P``", so the
  engine stores a population epoch counter plus per-row epoch stamps and
  needs-full flags in dense numpy columns, and resolves candidate deltas
  lazily from a membership event log in O(changes) -- no O(N) id set is
  ever materialised on the per-event path, and ``note_join``/``note_leave``
  are O(1)/O(selectors) array writes;
* the **explicit representation** (:class:`ExplicitCandidateState`, the
  fallback): per-peer ``last_candidates`` frozensets with pending gain/loss
  accumulators under full knowledge, and cached bounded-hop reachability
  via :func:`repro.overlay.gossip.knowledge_set_deltas` (which re-explores
  only peers within ``BR`` hops of a changed overlay edge) under a gossip
  radius.  Required whenever candidate sets are per-peer subsets; also
  selectable under full knowledge (``columnar=False``) for cross-checks.

Both representations feed the same :func:`classify_reselect` rule with
identical candidate deltas (up to a documented widening for
leave-then-rejoin windows that provably classifies the same), so fixed
points -- and whole convergence trajectories -- are byte-identical across
them; the hypothesis suites in ``tests/overlay`` assert this.

Dirtiness is seeded by membership events (the joined peer, departed peers'
selectors, a moved peer and its selectors) and propagated each round
through candidate-set deltas.

When the selection method declares itself *path independent*
(:attr:`~repro.overlay.selection.base.NeighbourSelectionMethod.path_independent`),
two cheaper re-selection paths apply:

* a peer that only *lost* candidates it had not selected keeps its selection
  with no recomputation at all;
* a peer that only *gained* candidates re-selects from ``selection + gained``
  instead of its full candidate set.

Methods without the property fall back to full-candidate recomputation,
which is always correct.  Selections are batched through
:meth:`~repro.overlay.selection.base.NeighbourSelectionMethod.select_many`
so vectorised methods amortise the per-call overhead.

The full/skip/additive decision itself is :func:`classify_reselect`, shared
with the message-level simulator: a
:class:`repro.simulation.protocol.PeerProcess` applies the same rule to its
``AnnouncementStore`` snapshot on every reselect tick, so the protocol replay
and the offline engine skip and shortcut under exactly the same conditions.

Delta-stream contract
---------------------

Downstream consumers (the event-driven multicast layer of
:mod:`repro.multicast.incremental`, the incremental connectivity tracker of
ablation A4) react to overlay changes without re-reading the whole topology.
They subscribe through :meth:`repro.overlay.network.OverlayNetwork.delta_stream`,
which hands out an :class:`OverlayDeltaRecorder`; every membership event and
every installed selection change -- whichever convergence path produced it --
is recorded, and :meth:`OverlayDeltaRecorder.drain` returns the accumulated
:class:`OverlayDelta` and resets the recorder.  The contract:

* ``joined`` / ``departed`` are the net membership changes since the last
  drain (a peer that joined *and* departed inside one window appears in
  neither; a departure followed by a re-join appears in both, and consumers
  must process the departure first);
* ``touched`` is a superset of the peers whose *undirected* adjacency may
  have changed -- both endpoints of every added or removed selection edge --
  so a consumer that re-derives per-peer state (e.g. the preferred tree
  neighbour, which depends only on a peer's own adjacency) from the
  overlay's *current* state for every touched peer provably reaches the
  same result as a from-scratch recomputation.  Re-processing an
  already-clean peer is always harmless, so over-approximation is safe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

import numpy as np

from repro.contracts import hot_path
from repro.overlay.gossip import knowledge_set_deltas, knowledge_sets
from repro.overlay.peer import PeerInfo
from repro.overlay.selection.base import AdditiveCohort

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.overlay.network import OverlayNetwork

__all__ = [
    "RESELECT_FULL",
    "RESELECT_SKIP",
    "RESELECT_ADDITIVE",
    "classify_reselect",
    "CandidateView",
    "ExplicitCandidateState",
    "IncrementalReselectionEngine",
    "OverlayDelta",
    "OverlayDeltaRecorder",
    "DirectedSelectionMirror",
    "RoundPlan",
    "RoundWindow",
]


@dataclass(frozen=True)
class OverlayDelta:
    """Net overlay changes accumulated between two recorder drains."""

    joined: FrozenSet[int]
    departed: FrozenSet[int]
    touched: FrozenSet[int]

    @property
    def is_empty(self) -> bool:
        """``True`` when nothing happened since the last drain."""
        return not (self.joined or self.departed or self.touched)


class OverlayDeltaRecorder:
    """Accumulates membership and adjacency-touch events for one subscriber.

    Created by :meth:`repro.overlay.network.OverlayNetwork.delta_stream`;
    see the module docstring for the exact delta-stream contract.  The
    recorder only stores peer ids, so keeping one attached costs ``O(changed
    peers)`` per convergence, not ``O(N)``.
    """

    def __init__(self) -> None:
        self._joined: Set[int] = set()
        self._departed: Set[int] = set()
        self._touched: Set[int] = set()

    @hot_path
    def note_join(self, peer_id: int) -> None:
        """A peer entered the overlay (possibly re-using a departed id)."""
        self._joined.add(peer_id)
        self._touched.add(peer_id)

    @hot_path
    def note_leave(self, peer_id: int) -> None:
        """A peer left the overlay."""
        if peer_id in self._joined:
            # A join and a leave inside one window cancel out: the consumer
            # never saw the peer, so it must not be asked to remove it.
            self._joined.discard(peer_id)
        else:
            self._departed.add(peer_id)

    @hot_path
    def note_touch(self, peer_ids: Iterable[int]) -> None:
        """The undirected adjacency of these peers may have changed."""
        self._touched.update(peer_ids)

    @hot_path
    def drain(self) -> OverlayDelta:
        """Return the accumulated delta and reset the recorder."""
        delta = OverlayDelta(
            joined=frozenset(self._joined),
            departed=frozenset(self._departed),
            touched=frozenset(self._touched),
        )
        self._joined = set()
        self._departed = set()
        self._touched = set()
        return delta


class DirectedSelectionMirror:
    """Per-peer copies of the directed selection, maintained from drained deltas.

    The delta-stream consumers (the stability-tree maintainer, the A4
    connectivity feed) all need the same two things the overlay does not
    index: ``O(degree)`` reads of one peer's undirected adjacency (its own
    selection plus the reverse *selector* index) and the per-peer directed
    edge diffs behind each drained :class:`OverlayDelta`.  This mirror is
    the single implementation of that bookkeeping -- departed peers'
    outgoing links dropped first, then every alive touched peer's current
    selection diffed against the stored copy -- so the subtle ordering
    rules live in one place.
    """

    def __init__(self) -> None:
        self._selected: Dict[int, FrozenSet[int]] = {}
        self._selectors: Dict[int, Set[int]] = {}

    def adopt(self, overlay: "OverlayNetwork") -> None:
        """Reset to the overlay's current directed selection wholesale."""
        self._selected = {}
        self._selectors = {}
        for peer_id, selected in overlay.directed_neighbour_map().items():
            self._selected[peer_id] = selected
            for target in selected:
                self._selectors.setdefault(target, set()).add(peer_id)

    def selected(self, peer_id: int) -> FrozenSet[int]:
        """Mirrored directed selection of one peer."""
        return self._selected.get(peer_id, frozenset())

    def selectors(self, peer_id: int) -> FrozenSet[int]:
        """Peers whose mirrored selection contains ``peer_id``."""
        return frozenset(self._selectors.get(peer_id, ()))

    def adjacency(self, peer_id: int) -> Set[int]:
        """Undirected adjacency of one peer: selected plus selectors."""
        return set(self._selected.get(peer_id, frozenset())) | self._selectors.get(
            peer_id, set()
        )

    @hot_path
    def apply(
        self, delta: OverlayDelta, overlay: "OverlayNetwork"
    ) -> Dict[int, "tuple[FrozenSet[int], FrozenSet[int]]"]:
        """Fold one drained delta in; return per-peer ``(gained, lost)`` targets.

        A departed peer's *outgoing* links are dropped up front; its
        *selector* index is deliberately left alone and drained by the alive
        endpoints' own diffs instead (every ex-selector is in ``touched`` by
        contract).  This is what keeps a leave-then-rejoin inside one window
        correct: a selector whose selection is net-unchanged across the
        rejoin produces an empty diff, and its (still valid) reverse-index
        entry must survive.  Selector entries of peers that departed for
        good are popped once empty.

        The result maps every *alive* touched or joined peer -- including
        ones whose selection turned out unchanged, so callers can use the
        key set as their recheck set -- to the directed targets its
        selection gained and lost.
        """
        for peer_id in delta.departed:
            for target in self._selected.pop(peer_id, frozenset()):
                selectors = self._selectors.get(target)
                if selectors:
                    selectors.discard(peer_id)
        diffs: Dict[int, "tuple[FrozenSet[int], FrozenSet[int]]"] = {}
        for peer_id in delta.touched | delta.joined:
            if peer_id not in overlay:
                continue
            current = overlay.selected_neighbours(peer_id)
            previous = self._selected.get(peer_id, frozenset())
            gained = current - previous
            lost = previous - current
            for target in gained:
                self._selectors.setdefault(target, set()).add(peer_id)
            for target in lost:
                selectors = self._selectors.get(target)
                if selectors:
                    selectors.discard(peer_id)
            self._selected[peer_id] = current
            diffs[peer_id] = (gained, lost)
        for peer_id in delta.departed:
            if peer_id not in overlay:
                self._selectors.pop(peer_id, None)
        return diffs

#: Re-run the selection against the complete candidate set.
RESELECT_FULL = "full"
#: The installed selection provably still holds; no recomputation needed.
RESELECT_SKIP = "skip"
#: Re-select from ``installed selection + gained`` (path independence).
RESELECT_ADDITIVE = "additive"


@hot_path
def classify_reselect(
    last_candidates: Optional[FrozenSet[int]],
    gained: Set[int],
    lost: Set[int],
    installed_selection: Set[int],
    path_independent: bool,
) -> str:
    """Decide how a peer's selection must be refreshed for a candidate delta.

    This is the dirty-set decision rule shared by the offline
    :class:`IncrementalReselectionEngine` and the message-level simulator's
    :class:`repro.simulation.protocol.PeerProcess`: given the candidate id
    set at the peer's last installed selection (``None`` = no selection
    consistent with any candidate set exists), the ids gained and lost since
    then, and the installed selection itself, return one of

    * :data:`RESELECT_FULL` -- recompute against the complete candidate set
      (no history, a non-path-independent method, or a selected candidate
      was lost);
    * :data:`RESELECT_SKIP` -- only never-selected candidates were lost (or
      nothing changed at all): path independence guarantees the installed
      selection is exactly what a recomputation would produce;
    * :data:`RESELECT_ADDITIVE` -- the set only gained members (beyond
      harmless losses): path independence lets ``selection + gained`` stand
      in for the full candidate set.

    The skip verdict for an *empty* delta is valid for any deterministic
    method; the skip-on-loss and additive verdicts rely on
    :attr:`~repro.overlay.selection.base.NeighbourSelectionMethod.path_independent`.
    """
    if last_candidates is None or (lost & installed_selection):
        return RESELECT_FULL
    if not gained and not lost:
        return RESELECT_SKIP
    if not path_independent:
        return RESELECT_FULL
    if not gained:
        return RESELECT_SKIP
    return RESELECT_ADDITIVE


#: Per-peer round plan entry: ``(peer_id, verdict, gained, lost)``.
_PlanEntry = Tuple[int, str, Set[int], Set[int]]


@dataclass(frozen=True)
class RoundWindow:
    """One shared delta window of a :class:`RoundPlan`.

    ``members`` is a boolean mask over the plan's scheduled positions
    selecting the peers that carry this window *and* classified additive;
    ``gained`` is the candidate-id set their candidate sets gained -- one
    set shared by the whole group, which is what collapses the per-peer
    delta bookkeeping into a cohort install.  (The window's lost ids never
    reach the install phase: losses only matter to classification.)
    """

    members: "np.ndarray"
    gained: FrozenSet[int]


@dataclass(frozen=True)
class RoundPlan:
    """A whole convergence round, classified as columns over dense rows.

    Produced by :meth:`CandidateView.plan_round` on views that support the
    vectorised round protocol: ``scheduled_rows`` are the dirty
    :class:`~repro.overlay.columnar.DenseIdMap` rows (in row order),
    ``scheduled_ids`` the aligned peer ids, and the three verdict masks
    partition the scheduled positions exactly as the per-peer
    :func:`classify_reselect` loop would (``full | skip | additive``, mutually
    disjoint).  Additive positions are grouped into :class:`RoundWindow`
    cohorts sharing one gained set each.
    """

    scheduled_rows: "np.ndarray"
    scheduled_ids: "np.ndarray"
    full_mask: "np.ndarray"
    skip_mask: "np.ndarray"
    additive_mask: "np.ndarray"
    windows: Tuple[RoundWindow, ...]

#: Non-``None`` stand-in passed to :func:`classify_reselect` when a view
#: reports per-peer history without materialising the candidate set itself
#: (the rule only distinguishes ``None`` from "history exists"; the actual
#: ids travel through ``gained``/``lost``).
_HAS_HISTORY: FrozenSet[int] = frozenset()


class CandidateView:
    """Representation contract for the engine's candidate bookkeeping.

    A view owns everything the engine knows about candidate sets -- per-peer
    history, dirtiness, pending deltas -- behind a representation-neutral
    surface, so the engine's orchestration (classification, batched
    selection, installs) is written once.  Two implementations exist: the
    implicit columnar one (:class:`repro.overlay.columnar.ColumnarCandidateState`,
    full knowledge only, the default) and the explicit dict-backed one
    (:class:`ExplicitCandidateState`, the gossip-radius/fallback path).

    The contract both must satisfy: for every scheduled peer,
    :meth:`delta` must return a ``(has_history, gained, lost)`` triple such
    that :func:`classify_reselect` reaches a verdict installing the same
    selection the other representation would install -- the deltas may
    differ in documented, verdict-equivalent ways (see
    :mod:`repro.overlay.columnar`), the installed topologies may not.

    Round protocol: ``begin_round`` -> engine classifies via ``delta`` and
    ``forget`` -> engine installs, materialising scan-path candidate sets
    via ``full_candidate_ids`` -> ``commit`` per planned peer ->
    ``end_round``.  Membership notifications (``note_join`` / ``note_leave``
    / ``note_move``) arrive between rounds, never inside one.

    Views may additionally support the *vectorised* round protocol by
    overriding :meth:`plan_round`: one call replaces ``begin_round`` + the
    per-peer ``delta``/classify loop, returning verdict columns instead of
    per-peer triples.  A vectorised round still closes with ``end_round``,
    but ``commit`` is never invoked on it -- a view that returns plans must
    fold its round history wholesale in ``end_round`` (the columnar view
    already does; its ``commit`` is a no-op for exactly this reason).
    """

    def note_join(self, peer_id: int) -> None:
        """A peer was added (already present in the overlay's peer map)."""
        raise NotImplementedError

    def note_leave(self, peer_id: int, selector_ids: Iterable[int]) -> None:
        """A peer was removed; ``selector_ids`` had it in their neighbour sets."""
        raise NotImplementedError

    def note_move(self, peer_id: int) -> None:
        """A peer's coordinates changed in place (same id, same links)."""
        raise NotImplementedError

    def begin_round(self) -> List[int]:
        """Start a round; return the sorted ids scheduled for classification."""
        raise NotImplementedError

    def plan_round(
        self,
        selectors_of: Mapping[int, Set[int]],
        path_independent: bool,
    ) -> Optional[RoundPlan]:
        """Start a round *and* classify it in vectorised column form.

        ``selectors_of`` is the overlay's reverse selector index (``target
        id -> ids whose installed selection contains it``), which is how a
        plan resolves the ``lost & installed_selection`` term of
        :func:`classify_reselect` in O(changes) instead of per-peer set
        intersections.  Returns ``None`` (the default) when the view keeps
        the per-peer protocol -- the engine then falls back to
        ``begin_round``/``delta``/``commit`` -- or a :class:`RoundPlan`
        whose verdict columns the engine installs directly.  A returned
        plan, even an empty one, claims the round: the engine will close a
        non-empty plan with ``end_round`` and never call ``commit``.
        """
        return None

    def delta(self, peer_id: int) -> Tuple[bool, Set[int], Set[int]]:
        """``(has_history, gained, lost)`` for one scheduled peer."""
        raise NotImplementedError

    def full_candidate_ids(self, peer_id: int) -> Set[int]:
        """Materialise one peer's current candidate id set (scan path only)."""
        raise NotImplementedError

    def commit(self, peer_id: int, verdict: str, gained: Set[int], lost: Set[int]) -> None:
        """Record that the peer's selection is now consistent with ``I(P)``."""
        raise NotImplementedError

    def forget(self, peer_id: int) -> None:
        """Drop bookkeeping for a scheduled id that left the overlay."""
        raise NotImplementedError

    def end_round(self) -> None:
        """Close the round: clean every scheduled peer, drop round memos."""
        raise NotImplementedError

    def dirty_ids(self) -> FrozenSet[int]:
        """Peers whose candidate sets may have changed since last selection."""
        raise NotImplementedError


class ExplicitCandidateState(CandidateView):
    """Explicit dict/frozenset candidate bookkeeping (the fallback view).

    Keeps a materialised ``last_candidates`` frozenset per peer, pending
    gain/loss id accumulators under full knowledge, and cached bounded-hop
    reachability under a gossip radius.  This is the only representation
    that can express per-peer candidate *subsets*, so gossip-limited
    overlays always use it; full-knowledge overlays built with
    ``columnar=False`` use it too (the benchmark baselines, and the
    property suites cross-checking the columnar path).  Its per-event cost
    is O(N) -- ``note_join``/``note_leave`` walk every tracked peer -- which
    is exactly what the columnar view exists to avoid.
    """

    def __init__(self, overlay: "OverlayNetwork") -> None:
        self._overlay = overlay
        self._radius = overlay.gossip_radius
        # I(P) at each peer's last installed selection; None forces a full
        # recomputation for that peer.
        self._last_candidates: Dict[int, Optional[FrozenSet[int]]] = {}
        # Full-knowledge mode: membership deltas accumulated since each
        # peer's last selection (ids only, so a join costs O(N) set adds).
        self._pending_gain: Dict[int, Set[int]] = {}
        self._pending_loss: Dict[int, Set[int]] = {}
        self._dirty: Set[int] = set()
        # Gossip-limited mode: cached bounded-hop reachability and the
        # adjacency it was computed under.
        self._known: Dict[int, Set[int]] = {}
        self._prev_adjacency: Dict[int, Set[int]] = {}
        # Candidate id sets materialised during the current round, so the
        # classification (gossip deltas) and the install/commit phases
        # compute each set once.
        self._round_candidates: Dict[int, Set[int]] = {}
        # Adopt the overlay's current state: everything dirty, no history.
        for peer_id in overlay.peer_ids:
            self._last_candidates[peer_id] = None
            self._dirty.add(peer_id)
        if self._radius is not None:
            self._prev_adjacency = {
                peer_id: set(neighbour_ids)
                for peer_id, neighbour_ids in overlay.adjacency().items()
            }
            self._known = knowledge_sets(self._prev_adjacency, self._radius)

    # ------------------------------------------------------------------
    # Membership notifications
    # ------------------------------------------------------------------
    def note_join(self, peer_id: int) -> None:
        members = self._overlay._peers  # noqa: SLF001 - view is a friend class
        self._last_candidates[peer_id] = None
        self._dirty.add(peer_id)
        if self._radius is not None:
            # Reachability deltas at the next round pick up the new edges;
            # seed an empty cache entry so candidate building never KeyErrors.
            self._known.setdefault(peer_id, set())
            return
        for other in members:
            if other == peer_id:
                continue
            self._dirty.add(other)
            if self._last_candidates.get(other) is None:
                continue
            # A re-join of a previously departed id supersedes its loss.
            self._pending_loss.setdefault(other, set()).discard(peer_id)
            self._pending_gain.setdefault(other, set()).add(peer_id)

    def note_leave(self, peer_id: int, selector_ids: Iterable[int]) -> None:
        """Selectors' installed neighbour sets were just mutated (the
        departed id was stripped), so no selection consistent with any
        candidate set exists for them any more: they are forced onto the
        full-recompute path.  Everyone else merely lost a candidate it had
        not selected."""
        self.forget(peer_id)
        for selector in selector_ids:
            self._last_candidates[selector] = None
            self._dirty.add(selector)
        if self._radius is not None:
            # The vanished edges are picked up by the adjacency diff at the
            # next round; _prev_adjacency still holds them on purpose.
            return
        for other in self._overlay._peers:  # noqa: SLF001
            if self._last_candidates.get(other) is None:
                self._dirty.add(other)
                continue
            self._pending_gain.setdefault(other, set()).discard(peer_id)
            if peer_id in self._last_candidates[other]:
                self._pending_loss.setdefault(other, set()).add(peer_id)
                self._dirty.add(other)

    def note_move(self, peer_id: int) -> None:
        """The mover needs a full recompute; everyone that tracked it sees
        the id in both ``gained`` and ``lost``, which forces its selectors
        onto the full path (lost ∩ installed) and re-offers the refreshed
        :class:`~repro.overlay.peer.PeerInfo` additively to the rest (infos
        are resolved from the live peer map at install time)."""
        self._last_candidates[peer_id] = None
        self._dirty.add(peer_id)
        if self._radius is not None:
            # Bounded knowledge tracks candidate *ids*, which a move leaves
            # untouched -- the changed coordinates are only visible through
            # a recomputation, so every peer that may know the mover is
            # forced onto the full path.
            for other, last in self._last_candidates.items():
                if last is not None and peer_id in last:
                    self._last_candidates[other] = None
                    self._dirty.add(other)
            return
        for other in self._overlay._peers:  # noqa: SLF001
            if other == peer_id:
                continue
            last = self._last_candidates.get(other)
            if last is None:
                self._dirty.add(other)
                continue
            if peer_id in last:
                self._pending_gain.setdefault(other, set()).add(peer_id)
                self._pending_loss.setdefault(other, set()).add(peer_id)
                self._dirty.add(other)

    def forget(self, peer_id: int) -> None:
        self._last_candidates.pop(peer_id, None)
        self._pending_gain.pop(peer_id, None)
        self._pending_loss.pop(peer_id, None)
        self._dirty.discard(peer_id)
        self._known.pop(peer_id, None)

    # ------------------------------------------------------------------
    # Rounds
    # ------------------------------------------------------------------
    def begin_round(self) -> List[int]:
        """Refresh reachability (gossip mode), return the sorted dirty ids."""
        if self._radius is not None:
            self._refresh_reachability()
        return sorted(self._dirty)

    def delta(self, peer_id: int) -> Tuple[bool, Set[int], Set[int]]:
        last = self._last_candidates.get(peer_id)
        if last is None:
            return False, set(), set()
        if self._radius is None:
            members = self._overlay._peers  # noqa: SLF001
            gained = {g for g in self._pending_gain.get(peer_id, ()) if g in members}
            lost = set(self._pending_loss.get(peer_id, ()))
            return True, gained, lost
        current_ids = self._overlay._candidate_ids(  # noqa: SLF001
            peer_id, self._known.get(peer_id, ())
        )
        self._round_candidates[peer_id] = current_ids
        return True, current_ids - last, last - current_ids

    def full_candidate_ids(self, peer_id: int) -> Set[int]:
        cached = self._round_candidates.get(peer_id)
        if cached is not None:
            return cached
        if self._radius is None:
            current_ids = set(self._overlay._peers)  # noqa: SLF001
            current_ids.discard(peer_id)
        else:
            current_ids = self._overlay._candidate_ids(  # noqa: SLF001
                peer_id, self._known.get(peer_id, ())
            )
        self._round_candidates[peer_id] = current_ids
        return current_ids

    def commit(self, peer_id: int, verdict: str, gained: Set[int], lost: Set[int]) -> None:
        if verdict == RESELECT_FULL:
            self._last_candidates[peer_id] = frozenset(self.full_candidate_ids(peer_id))
        else:
            last = self._last_candidates[peer_id]
            assert last is not None  # non-FULL verdicts imply history
            # (last - lost) | gained, in this order: an id in both sets (a
            # move, a leave-then-rejoin) must survive in the new history.
            self._last_candidates[peer_id] = frozenset((last - lost) | gained)
        self._pending_gain.pop(peer_id, None)
        self._pending_loss.pop(peer_id, None)

    def end_round(self) -> None:
        self._dirty.clear()
        self._round_candidates.clear()

    def dirty_ids(self) -> FrozenSet[int]:
        return frozenset(self._dirty)

    def _refresh_reachability(self) -> None:
        """Diff adjacency against the cached graph; dirty changed knowledge."""
        current = {
            peer_id: set(neighbour_ids)
            for peer_id, neighbour_ids in self._overlay.adjacency().items()
        }
        if current == self._prev_adjacency:
            return
        deltas = knowledge_set_deltas(
            self._prev_adjacency, current, self._radius, self._known
        )
        for peer_id, reachable in deltas.items():
            self._known[peer_id] = reachable
            self._dirty.add(peer_id)
        for peer_id in list(self._known):
            if peer_id not in current:
                del self._known[peer_id]
        self._prev_adjacency = current


class IncrementalReselectionEngine:
    """Delta-driven convergence state for one :class:`OverlayNetwork`.

    The engine is created lazily by the first ``converge(incremental=True)``
    call and kept in sync through the overlay's membership methods; a
    full-sweep round invalidates it (the sweep rewrites every neighbour set
    outside the engine's bookkeeping), after which the next incremental
    convergence starts from an all-dirty state -- one batched full round --
    and is incremental from there on.

    Candidate bookkeeping lives behind the :class:`CandidateView` contract.
    A full-knowledge overlay that owns a dense id map (the default) gets the
    implicit columnar representation -- per-event notifications are O(1)
    array writes; see :mod:`repro.overlay.columnar` -- while gossip-limited
    overlays, and full-knowledge overlays built with ``columnar=False``,
    fall back to :class:`ExplicitCandidateState`.  Both feed the shared
    :func:`classify_reselect` rule and install byte-identical selections,
    so the representation choice is invisible above this class.
    """

    def __init__(
        self, overlay: "OverlayNetwork", *, vectorised: Optional[bool] = None
    ) -> None:
        # Imported here: repro.overlay.columnar subclasses this module's
        # CandidateView/OverlayDeltaRecorder, so the dependency must stay
        # one-directional at import time.
        from repro.overlay.columnar import ColumnarCandidateState

        self._overlay = overlay
        id_rows = overlay.id_rows
        self._view: CandidateView = (
            ColumnarCandidateState(id_rows)
            if id_rows is not None and overlay.gossip_radius is None
            else ExplicitCandidateState(overlay)
        )
        # Vectorised rounds are on unless explicitly disabled; the flag only
        # decides whether plan_round is *offered* -- views without a plan
        # (the explicit fallback) keep the per-peer protocol either way.
        self._vectorised = vectorised is not False

    # ------------------------------------------------------------------
    # Introspection (used by tests)
    # ------------------------------------------------------------------
    @property
    def dirty_peers(self) -> FrozenSet[int]:
        """Peers whose candidate sets may have changed since last selection."""
        return self._view.dirty_ids()

    # ------------------------------------------------------------------
    # Membership notifications (the per-event hot path)
    # ------------------------------------------------------------------
    @hot_path
    def note_join(self, peer_id: int) -> None:
        """A peer was added (already present in the overlay's peer map)."""
        self._view.note_join(peer_id)

    @hot_path
    def note_leave(self, peer_id: int, selectors: Iterable[int]) -> None:
        """A peer was removed; ``selectors`` had it in their neighbour sets."""
        self._view.note_leave(peer_id, selectors)

    @hot_path
    def note_move(self, peer_id: int) -> None:
        """A peer's coordinates changed in place (same id, same links)."""
        self._view.note_move(peer_id)

    # ------------------------------------------------------------------
    # Rounds
    # ------------------------------------------------------------------
    def run_round(self) -> bool:
        """One partial synchronous round; ``True`` if any selection changed.

        Candidate sets are derived from the pre-round topology (the view
        refreshes reachability before any selection is installed), and all
        updates are installed at once -- the same synchronous semantics as
        the full sweep, restricted to dirty peers.

        This wrapper is the *deliberately O(N)* sweep entry: building the
        schedule costs one pass over the population (a vectorised mask over
        the row columns in the columnar view, a sort of the dirty set in
        the explicit one), which is the right trade for a synchronous
        round.

        Two protocols sit below it.  The vectorised one (the default on
        views that support it, i.e. the columnar representation): one
        :meth:`CandidateView.plan_round` call schedules *and* classifies
        the round as numpy verdict columns, and :meth:`_install_plan`
        resolves it through the selection family's cohort entry
        (:meth:`~repro.overlay.selection.base.NeighbourSelectionMethod.install_many`)
        -- the O(N) sweep is numpy passes, every Python loop is O(dirty
        ids + changes).  The per-peer one (the explicit view, and the
        ``vectorised_rounds=False`` baseline arm): the O(dirty + changes)
        classification core :meth:`_plan_round` -- the hot-path half --
        followed by a batched install phase that only touches planned
        peers.  Both install byte-identical selections (property-tested on
        every representation arm).
        """
        if self._vectorised:
            plan = self._view.plan_round(
                self._overlay._selectors_of,  # noqa: SLF001 - friend class
                self._overlay.selection.path_independent,
            )
            if plan is not None:
                if plan.scheduled_rows.size == 0:
                    return False
                changed = self._install_plan(plan)
                self._view.end_round()
                return changed
        schedule = self._view.begin_round()
        if not schedule:
            return False
        entries = self._plan_round(schedule)
        changed = self._install_round(entries)
        self._view.end_round()
        return changed

    @hot_path
    def _plan_round(self, schedule: List[int]) -> List[_PlanEntry]:
        """Classify every scheduled peer: O(dirty + changes), no id sets.

        Resolves each scheduled peer's candidate delta through the view and
        runs :func:`classify_reselect` on it; all population-sized work
        (candidate materialisation for scan-path full recomputes, the
        selections themselves) is deferred to the install phase, so this
        core stays within the hot-path complexity contract whichever
        representation is active.
        """
        overlay = self._overlay
        members = overlay._peers  # noqa: SLF001 - engine is a friend class
        neighbour_sets = overlay._neighbours  # noqa: SLF001
        path_independent = overlay.selection.path_independent
        view = self._view
        plan: List[_PlanEntry] = []
        for peer_id in schedule:
            if peer_id not in members:
                view.forget(peer_id)
                continue
            has_history, gained, lost = view.delta(peer_id)
            verdict = classify_reselect(
                _HAS_HISTORY if has_history else None,
                gained,
                lost,
                neighbour_sets[peer_id],
                path_independent,
            )
            plan.append((peer_id, verdict, gained, lost))
        return plan

    def _install_round(self, plan: List[_PlanEntry]) -> bool:
        """Run and install the planned selections; commit view history.

        Under full knowledge with an owned index, full recomputations are
        answered from the index: the O(N) candidate scan inside the
        selection disappears.  (The index only exists when the population
        is every peer's candidate set, so the two paths are byte-identical
        by the selection methods' indexed-path contract.)  With the
        columnar view active nothing here materialises an O(N) id set
        either -- indexed full recomputes and additive updates never call
        :meth:`CandidateView.full_candidate_ids` -- so the engine's whole
        per-round cost beyond the selections is O(dirty + changes).
        """
        overlay = self._overlay
        view = self._view
        members = overlay._peers  # noqa: SLF001
        neighbour_sets = overlay._neighbours  # noqa: SLF001
        selection = overlay.selection
        index = overlay._selection_index()  # noqa: SLF001
        references: List[PeerInfo] = []
        indexed_references: List[PeerInfo] = []
        candidates_by_peer: Dict[int, List[PeerInfo]] = {}
        additive_updates: List = []

        for peer_id, verdict, gained, _lost in plan:
            if verdict == RESELECT_FULL:
                # Full recomputation against the complete candidate set.
                if index is not None:
                    indexed_references.append(members[peer_id])
                else:
                    candidates_by_peer[peer_id] = [
                        members[other]
                        for other in sorted(view.full_candidate_ids(peer_id))
                    ]
                    references.append(members[peer_id])
            elif verdict == RESELECT_ADDITIVE:
                # Gains only: path independence lets the previous selection
                # stand in for the full previous candidate set.
                additive_updates.append(
                    (
                        members[peer_id],
                        [members[other] for other in sorted(neighbour_sets[peer_id])],
                        [members[other] for other in sorted(gained)],
                    )
                )
            # RESELECT_SKIP: the installed selection provably still holds.

        additive_results: Optional[Dict[int, List[int]]] = None
        if additive_updates:
            additive_results = selection.select_many_additive(additive_updates)
            if additive_results is None:
                # No specialised delta rule: rebuild the reduced candidate
                # sets (selection + gained) and go through the batched API.
                for reference, selected, gained_infos in additive_updates:
                    candidates_by_peer[reference.peer_id] = (
                        selection.merge_candidate_delta(selected, gained_infos)
                    )
                    references.append(reference)

        results: Dict[int, List[int]] = {}
        if references:
            results.update(selection.select_many(references, candidates_by_peer))
        if indexed_references:
            # The additive fallback above may have appended scan references
            # with *reduced* candidate sets, so the indexed batch is kept
            # separate: only full-candidate recomputations may consult the
            # index.
            results.update(selection.select_many(indexed_references, {}, index=index))
        if additive_results:
            results.update(additive_results)
        changed = overlay.install_selections(results)
        for peer_id, verdict, gained, lost in plan:
            view.commit(peer_id, verdict, gained, lost)
        return changed

    def _install_plan(self, plan: RoundPlan) -> bool:
        """Resolve and install one vectorised round plan.

        The column counterpart of :meth:`_install_round`: the verdict masks
        are gathered into one cohort-install call --
        :meth:`~repro.overlay.selection.base.NeighbourSelectionMethod.install_many`
        -- and the results land in ``OverlayNetwork._neighbours`` through
        the single :meth:`~repro.overlay.network.OverlayNetwork.install_selections`
        fan-out, which preserves the RPL001 delta-stream contract per peer.
        Python work here is O(full verdicts + changed selections): additive
        cohorts stay implicit id arrays, so the (usually population-sized)
        additive cohort after an epoch costs numpy passes plus the changed
        members only.  ``commit`` is never called on this path; the view
        folds the round wholesale in ``end_round``.
        """
        overlay = self._overlay
        members = overlay._peers  # noqa: SLF001
        neighbour_sets = overlay._neighbours  # noqa: SLF001
        selection = overlay.selection
        view = self._view
        index = overlay._selection_index()  # noqa: SLF001
        ids = plan.scheduled_ids

        full_ids = np.sort(ids[plan.full_mask])
        full_references = [members[int(peer_id)] for peer_id in full_ids]
        candidates_by_peer: Dict[int, List[PeerInfo]] = {}
        if index is None:
            for reference in full_references:
                candidates_by_peer[reference.peer_id] = [
                    members[other]
                    for other in sorted(view.full_candidate_ids(reference.peer_id))
                ]

        def member_info(peer_id: int) -> PeerInfo:
            return members[int(peer_id)]

        def selected_infos(peer_id: int) -> List[PeerInfo]:
            return [members[other] for other in sorted(neighbour_sets[int(peer_id)])]

        cohorts = [
            AdditiveCohort(
                member_ids=np.sort(ids[window.members]),
                gained=tuple(members[gain] for gain in sorted(window.gained)),
                member_of=member_info,
                selected_of=selected_infos,
            )
            for window in plan.windows
        ]
        results = selection.install_many(
            full_references, candidates_by_peer, cohorts, index=index
        )
        return overlay.install_selections(results)
