"""Incremental reselection: converge by reacting to deltas, not global sweeps.

The paper's experimental procedure inserts peers one at a time and lets the
overlay converge after every insertion.  Running that with full synchronous
sweeps (:meth:`repro.overlay.network.OverlayNetwork.reselect_round`) costs a
full ``select()`` for every peer in every round, which makes the procedure
roughly cubic in the population size.  This module maintains the information
needed to re-run selection *only where something could have changed* -- the
reaction-to-deltas pattern gossip aggregation protocols use to reach large
populations.

Dirty-set invariants
--------------------

The engine tracks, for every peer ``P``:

* ``last_candidates[P]`` -- the candidate id set ``I(P)`` at the moment of
  ``P``'s last installed selection, or ``None`` when no selection consistent
  with the engine's bookkeeping exists (freshly joined peers, peers whose
  neighbour set was mutated behind the engine's back by a departure).
* membership of the *dirty set* -- ``P`` is dirty exactly when its current
  ``I(P)`` may differ from ``last_candidates[P]``.

Clean peers therefore provably reproduce their current selection, so a
partial round that re-selects only dirty peers installs the same topology a
full synchronous sweep would; by induction the incremental path follows the
full-sweep trajectory round for round and terminates in the identical fixed
point (the cross-check property tests exercise exactly this).

Dirtiness is seeded by membership events (the joined peer, departed peers'
selectors) and propagated each round through candidate-set deltas: under
full knowledge via per-peer pending gain/loss accumulators (cheap, ids
only), and under a bounded gossip radius via
:func:`repro.overlay.gossip.knowledge_set_deltas`, which re-explores only
peers within ``BR`` hops of a changed overlay edge.

When the selection method declares itself *path independent*
(:attr:`~repro.overlay.selection.base.NeighbourSelectionMethod.path_independent`),
two cheaper re-selection paths apply:

* a peer that only *lost* candidates it had not selected keeps its selection
  with no recomputation at all;
* a peer that only *gained* candidates re-selects from ``selection + gained``
  instead of its full candidate set.

Methods without the property fall back to full-candidate recomputation,
which is always correct.  Selections are batched through
:meth:`~repro.overlay.selection.base.NeighbourSelectionMethod.select_many`
so vectorised methods amortise the per-call overhead.

The full/skip/additive decision itself is :func:`classify_reselect`, shared
with the message-level simulator: a
:class:`repro.simulation.protocol.PeerProcess` applies the same rule to its
``AnnouncementStore`` snapshot on every reselect tick, so the protocol replay
and the offline engine skip and shortcut under exactly the same conditions.

Delta-stream contract
---------------------

Downstream consumers (the event-driven multicast layer of
:mod:`repro.multicast.incremental`, the incremental connectivity tracker of
ablation A4) react to overlay changes without re-reading the whole topology.
They subscribe through :meth:`repro.overlay.network.OverlayNetwork.delta_stream`,
which hands out an :class:`OverlayDeltaRecorder`; every membership event and
every installed selection change -- whichever convergence path produced it --
is recorded, and :meth:`OverlayDeltaRecorder.drain` returns the accumulated
:class:`OverlayDelta` and resets the recorder.  The contract:

* ``joined`` / ``departed`` are the net membership changes since the last
  drain (a peer that joined *and* departed inside one window appears in
  neither; a departure followed by a re-join appears in both, and consumers
  must process the departure first);
* ``touched`` is a superset of the peers whose *undirected* adjacency may
  have changed -- both endpoints of every added or removed selection edge --
  so a consumer that re-derives per-peer state (e.g. the preferred tree
  neighbour, which depends only on a peer's own adjacency) from the
  overlay's *current* state for every touched peer provably reaches the
  same result as a from-scratch recomputation.  Re-processing an
  already-clean peer is always harmless, so over-approximation is safe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, List, Optional, Set

from repro.contracts import hot_path
from repro.overlay.gossip import knowledge_set_deltas, knowledge_sets
from repro.overlay.peer import PeerInfo

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.overlay.network import OverlayNetwork

__all__ = [
    "RESELECT_FULL",
    "RESELECT_SKIP",
    "RESELECT_ADDITIVE",
    "classify_reselect",
    "IncrementalReselectionEngine",
    "OverlayDelta",
    "OverlayDeltaRecorder",
    "DirectedSelectionMirror",
]


@dataclass(frozen=True)
class OverlayDelta:
    """Net overlay changes accumulated between two recorder drains."""

    joined: FrozenSet[int]
    departed: FrozenSet[int]
    touched: FrozenSet[int]

    @property
    def is_empty(self) -> bool:
        """``True`` when nothing happened since the last drain."""
        return not (self.joined or self.departed or self.touched)


class OverlayDeltaRecorder:
    """Accumulates membership and adjacency-touch events for one subscriber.

    Created by :meth:`repro.overlay.network.OverlayNetwork.delta_stream`;
    see the module docstring for the exact delta-stream contract.  The
    recorder only stores peer ids, so keeping one attached costs ``O(changed
    peers)`` per convergence, not ``O(N)``.
    """

    def __init__(self) -> None:
        self._joined: Set[int] = set()
        self._departed: Set[int] = set()
        self._touched: Set[int] = set()

    @hot_path
    def note_join(self, peer_id: int) -> None:
        """A peer entered the overlay (possibly re-using a departed id)."""
        self._joined.add(peer_id)
        self._touched.add(peer_id)

    @hot_path
    def note_leave(self, peer_id: int) -> None:
        """A peer left the overlay."""
        if peer_id in self._joined:
            # A join and a leave inside one window cancel out: the consumer
            # never saw the peer, so it must not be asked to remove it.
            self._joined.discard(peer_id)
        else:
            self._departed.add(peer_id)

    @hot_path
    def note_touch(self, peer_ids: Iterable[int]) -> None:
        """The undirected adjacency of these peers may have changed."""
        self._touched.update(peer_ids)

    @hot_path
    def drain(self) -> OverlayDelta:
        """Return the accumulated delta and reset the recorder."""
        delta = OverlayDelta(
            joined=frozenset(self._joined),
            departed=frozenset(self._departed),
            touched=frozenset(self._touched),
        )
        self._joined = set()
        self._departed = set()
        self._touched = set()
        return delta


class DirectedSelectionMirror:
    """Per-peer copies of the directed selection, maintained from drained deltas.

    The delta-stream consumers (the stability-tree maintainer, the A4
    connectivity feed) all need the same two things the overlay does not
    index: ``O(degree)`` reads of one peer's undirected adjacency (its own
    selection plus the reverse *selector* index) and the per-peer directed
    edge diffs behind each drained :class:`OverlayDelta`.  This mirror is
    the single implementation of that bookkeeping -- departed peers'
    outgoing links dropped first, then every alive touched peer's current
    selection diffed against the stored copy -- so the subtle ordering
    rules live in one place.
    """

    def __init__(self) -> None:
        self._selected: Dict[int, FrozenSet[int]] = {}
        self._selectors: Dict[int, Set[int]] = {}

    def adopt(self, overlay: "OverlayNetwork") -> None:
        """Reset to the overlay's current directed selection wholesale."""
        self._selected = {}
        self._selectors = {}
        for peer_id, selected in overlay.directed_neighbour_map().items():
            self._selected[peer_id] = selected
            for target in selected:
                self._selectors.setdefault(target, set()).add(peer_id)

    def selected(self, peer_id: int) -> FrozenSet[int]:
        """Mirrored directed selection of one peer."""
        return self._selected.get(peer_id, frozenset())

    def selectors(self, peer_id: int) -> FrozenSet[int]:
        """Peers whose mirrored selection contains ``peer_id``."""
        return frozenset(self._selectors.get(peer_id, ()))

    def adjacency(self, peer_id: int) -> Set[int]:
        """Undirected adjacency of one peer: selected plus selectors."""
        return set(self._selected.get(peer_id, frozenset())) | self._selectors.get(
            peer_id, set()
        )

    @hot_path
    def apply(
        self, delta: OverlayDelta, overlay: "OverlayNetwork"
    ) -> Dict[int, "tuple[FrozenSet[int], FrozenSet[int]]"]:
        """Fold one drained delta in; return per-peer ``(gained, lost)`` targets.

        A departed peer's *outgoing* links are dropped up front; its
        *selector* index is deliberately left alone and drained by the alive
        endpoints' own diffs instead (every ex-selector is in ``touched`` by
        contract).  This is what keeps a leave-then-rejoin inside one window
        correct: a selector whose selection is net-unchanged across the
        rejoin produces an empty diff, and its (still valid) reverse-index
        entry must survive.  Selector entries of peers that departed for
        good are popped once empty.

        The result maps every *alive* touched or joined peer -- including
        ones whose selection turned out unchanged, so callers can use the
        key set as their recheck set -- to the directed targets its
        selection gained and lost.
        """
        for peer_id in delta.departed:
            for target in self._selected.pop(peer_id, frozenset()):
                selectors = self._selectors.get(target)
                if selectors:
                    selectors.discard(peer_id)
        diffs: Dict[int, "tuple[FrozenSet[int], FrozenSet[int]]"] = {}
        for peer_id in delta.touched | delta.joined:
            if peer_id not in overlay:
                continue
            current = overlay.selected_neighbours(peer_id)
            previous = self._selected.get(peer_id, frozenset())
            gained = current - previous
            lost = previous - current
            for target in gained:
                self._selectors.setdefault(target, set()).add(peer_id)
            for target in lost:
                selectors = self._selectors.get(target)
                if selectors:
                    selectors.discard(peer_id)
            self._selected[peer_id] = current
            diffs[peer_id] = (gained, lost)
        for peer_id in delta.departed:
            if peer_id not in overlay:
                self._selectors.pop(peer_id, None)
        return diffs

#: Re-run the selection against the complete candidate set.
RESELECT_FULL = "full"
#: The installed selection provably still holds; no recomputation needed.
RESELECT_SKIP = "skip"
#: Re-select from ``installed selection + gained`` (path independence).
RESELECT_ADDITIVE = "additive"


@hot_path
def classify_reselect(
    last_candidates: Optional[FrozenSet[int]],
    gained: Set[int],
    lost: Set[int],
    installed_selection: Set[int],
    path_independent: bool,
) -> str:
    """Decide how a peer's selection must be refreshed for a candidate delta.

    This is the dirty-set decision rule shared by the offline
    :class:`IncrementalReselectionEngine` and the message-level simulator's
    :class:`repro.simulation.protocol.PeerProcess`: given the candidate id
    set at the peer's last installed selection (``None`` = no selection
    consistent with any candidate set exists), the ids gained and lost since
    then, and the installed selection itself, return one of

    * :data:`RESELECT_FULL` -- recompute against the complete candidate set
      (no history, a non-path-independent method, or a selected candidate
      was lost);
    * :data:`RESELECT_SKIP` -- only never-selected candidates were lost (or
      nothing changed at all): path independence guarantees the installed
      selection is exactly what a recomputation would produce;
    * :data:`RESELECT_ADDITIVE` -- the set only gained members (beyond
      harmless losses): path independence lets ``selection + gained`` stand
      in for the full candidate set.

    The skip verdict for an *empty* delta is valid for any deterministic
    method; the skip-on-loss and additive verdicts rely on
    :attr:`~repro.overlay.selection.base.NeighbourSelectionMethod.path_independent`.
    """
    if last_candidates is None or (lost & installed_selection):
        return RESELECT_FULL
    if not gained and not lost:
        return RESELECT_SKIP
    if not path_independent:
        return RESELECT_FULL
    if not gained:
        return RESELECT_SKIP
    return RESELECT_ADDITIVE


class IncrementalReselectionEngine:
    """Delta-driven convergence state for one :class:`OverlayNetwork`.

    The engine is created lazily by the first ``converge(incremental=True)``
    call and kept in sync through the overlay's membership methods; a
    full-sweep round invalidates it (the sweep rewrites every neighbour set
    outside the engine's bookkeeping), after which the next incremental
    convergence starts from an all-dirty state -- one batched full round --
    and is incremental from there on.
    """

    def __init__(self, overlay: "OverlayNetwork") -> None:
        self._overlay = overlay
        self._radius = overlay.gossip_radius
        # I(P) at each peer's last installed selection; None forces a full
        # recomputation for that peer.
        self._last_candidates: Dict[int, Optional[FrozenSet[int]]] = {}
        # Full-knowledge mode: membership deltas accumulated since each
        # peer's last selection (ids only, so a join costs O(N) set adds).
        self._pending_gain: Dict[int, Set[int]] = {}
        self._pending_loss: Dict[int, Set[int]] = {}
        self._dirty: Set[int] = set()
        # Gossip-limited mode: cached bounded-hop reachability and the
        # adjacency it was computed under.
        self._known: Dict[int, Set[int]] = {}
        self._prev_adjacency: Dict[int, Set[int]] = {}
        self._bootstrap()

    def _bootstrap(self) -> None:
        """Adopt the overlay's current state: everything dirty, no history."""
        overlay = self._overlay
        for peer_id in overlay.peer_ids:
            self._last_candidates[peer_id] = None
            self._dirty.add(peer_id)
        if self._radius is not None:
            self._prev_adjacency = {
                peer_id: set(neighbours)
                for peer_id, neighbours in overlay.adjacency().items()
            }
            self._known = knowledge_sets(self._prev_adjacency, self._radius)

    # ------------------------------------------------------------------
    # Introspection (used by tests)
    # ------------------------------------------------------------------
    @property
    def dirty_peers(self) -> FrozenSet[int]:
        """Peers whose candidate sets may have changed since last selection."""
        return frozenset(self._dirty)

    # ------------------------------------------------------------------
    # Membership notifications
    # ------------------------------------------------------------------
    def note_join(self, peer_id: int) -> None:
        """A peer was added (already present in the overlay's peer map)."""
        members = self._overlay._peers  # noqa: SLF001 - engine is a friend class
        self._last_candidates[peer_id] = None
        self._dirty.add(peer_id)
        if self._radius is not None:
            # Reachability deltas at the next round pick up the new edges;
            # seed an empty cache entry so candidate building never KeyErrors.
            self._known.setdefault(peer_id, set())
            return
        for other in members:
            if other == peer_id:
                continue
            self._dirty.add(other)
            if self._last_candidates.get(other) is None:
                continue
            # A re-join of a previously departed id supersedes its loss.
            self._pending_loss.setdefault(other, set()).discard(peer_id)
            self._pending_gain.setdefault(other, set()).add(peer_id)

    def note_leave(self, peer_id: int, selectors: Iterable[int]) -> None:
        """A peer was removed; ``selectors`` had it in their neighbour sets.

        Selectors' installed neighbour sets were just mutated (the departed
        id was stripped), so no selection consistent with any candidate set
        exists for them any more: they are forced onto the full-recompute
        path.  Everyone else merely lost a candidate it had not selected.
        """
        self._forget(peer_id)
        for selector in selectors:
            self._last_candidates[selector] = None
            self._dirty.add(selector)
        if self._radius is not None:
            # The vanished edges are picked up by the adjacency diff at the
            # next round; _prev_adjacency still holds them on purpose.
            return
        for other in self._overlay._peers:  # noqa: SLF001
            if self._last_candidates.get(other) is None:
                self._dirty.add(other)
                continue
            self._pending_gain.setdefault(other, set()).discard(peer_id)
            if peer_id in self._last_candidates[other]:
                self._pending_loss.setdefault(other, set()).add(peer_id)
                self._dirty.add(other)

    def _forget(self, peer_id: int) -> None:
        self._last_candidates.pop(peer_id, None)
        self._pending_gain.pop(peer_id, None)
        self._pending_loss.pop(peer_id, None)
        self._dirty.discard(peer_id)
        self._known.pop(peer_id, None)

    # ------------------------------------------------------------------
    # Rounds
    # ------------------------------------------------------------------
    def run_round(self) -> bool:
        """One partial synchronous round; ``True`` if any selection changed.

        Candidate sets are derived from the pre-round topology (reachability
        is refreshed before any selection is installed), and all updates are
        installed at once -- the same synchronous semantics as the full
        sweep, restricted to dirty peers.
        """
        overlay = self._overlay
        peers = overlay._peers  # noqa: SLF001
        neighbours = overlay._neighbours  # noqa: SLF001
        if self._radius is not None:
            self._refresh_reachability()
        if not self._dirty:
            return False

        selection = overlay.selection
        # Under full knowledge with an owned index, full recomputations are
        # answered from the index: the O(N) candidate scan inside the
        # selection disappears.  (The index only exists when the population
        # is every peer's candidate set, so the two paths are byte-identical
        # by the selection methods' indexed-path contract.)  The
        # last_candidates bookkeeping below still materialises an O(N) id
        # set per full recompute -- cheap C-level set work next to the
        # selection itself, but the remaining super-linear term; see the
        # ROADMAP open item about an implicit full-knowledge representation.
        index = overlay._selection_index()  # noqa: SLF001
        references: List[PeerInfo] = []
        indexed_references: List[PeerInfo] = []
        candidates_by_peer: Dict[int, List[PeerInfo]] = {}
        additive_updates: List = []
        new_last: Dict[int, FrozenSet[int]] = {}

        for peer_id in sorted(self._dirty):
            if peer_id not in peers:
                self._forget(peer_id)
                continue
            last = self._last_candidates.get(peer_id)
            current_selection = neighbours[peer_id]
            current_ids: Optional[Set[int]] = None
            if last is None:
                gained: Set[int] = set()
                lost: Set[int] = set()
            elif self._radius is None:
                gained = {
                    g for g in self._pending_gain.get(peer_id, ()) if g in peers
                }
                lost = set(self._pending_loss.get(peer_id, ()))
            else:
                current_ids = overlay._candidate_ids(  # noqa: SLF001
                    peer_id, self._known.get(peer_id, ())
                )
                gained = current_ids - last
                lost = last - current_ids

            verdict = classify_reselect(
                last, gained, lost, current_selection, selection.path_independent
            )
            if verdict == RESELECT_FULL:
                # Full recomputation against the complete candidate set.
                if current_ids is None:
                    if self._radius is None:
                        current_ids = set(peers)
                        current_ids.discard(peer_id)
                    else:
                        current_ids = overlay._candidate_ids(  # noqa: SLF001
                            peer_id, self._known.get(peer_id, ())
                        )
                if index is not None:
                    indexed_references.append(peers[peer_id])
                else:
                    candidates_by_peer[peer_id] = [
                        peers[other] for other in sorted(current_ids)
                    ]
                    references.append(peers[peer_id])
                new_last[peer_id] = frozenset(current_ids)
            elif verdict == RESELECT_SKIP:
                # Only never-selected candidates were lost (or nothing changed
                # at all): the installed selection provably still holds.
                new_last[peer_id] = frozenset(last - lost)
            else:
                # Gains only: path independence lets the previous selection
                # stand in for the full previous candidate set.
                additive_updates.append(
                    (
                        peers[peer_id],
                        [peers[other] for other in sorted(current_selection)],
                        [peers[other] for other in sorted(gained)],
                    )
                )
                new_last[peer_id] = frozenset((last | gained) - lost)

        additive_results: Optional[Dict[int, List[int]]] = None
        if additive_updates:
            additive_results = selection.select_many_additive(additive_updates)
            if additive_results is None:
                # No specialised delta rule: rebuild the reduced candidate
                # sets (selection + gained) and go through the batched API.
                for reference, selected, gained_infos in additive_updates:
                    candidates_by_peer[reference.peer_id] = (
                        selection.merge_candidate_delta(selected, gained_infos)
                    )
                    references.append(reference)

        results: Dict[int, List[int]] = {}
        if references:
            results.update(selection.select_many(references, candidates_by_peer))
        if indexed_references:
            # The additive fallback above may have appended scan references
            # with *reduced* candidate sets, so the indexed batch is kept
            # separate: only full-candidate recomputations may consult the
            # index.
            results.update(selection.select_many(indexed_references, {}, index=index))
            references = references + indexed_references
        changed = False
        for reference in references:
            selected = set(results[reference.peer_id])
            previous = neighbours[reference.peer_id]
            if selected != previous:
                neighbours[reference.peer_id] = selected
                overlay.notify_selection_change(reference.peer_id, previous, selected)
                changed = True
        if additive_results:
            for peer_id, selected_ids in additive_results.items():
                selected = set(selected_ids)
                previous = neighbours[peer_id]
                if selected != previous:
                    neighbours[peer_id] = selected
                    overlay.notify_selection_change(peer_id, previous, selected)
                    changed = True
        for peer_id, ids in new_last.items():
            self._last_candidates[peer_id] = ids
            self._pending_gain.pop(peer_id, None)
            self._pending_loss.pop(peer_id, None)
        self._dirty.clear()
        return changed

    def _refresh_reachability(self) -> None:
        """Diff adjacency against the cached graph; dirty changed knowledge."""
        current = {
            peer_id: set(neighbour_ids)
            for peer_id, neighbour_ids in self._overlay.adjacency().items()
        }
        if current == self._prev_adjacency:
            return
        deltas = knowledge_set_deltas(
            self._prev_adjacency, current, self._radius, self._known
        )
        for peer_id, reachable in deltas.items():
            self._known[peer_id] = reachable
            self._dirty.add(peer_id)
        for peer_id in list(self._known):
            if peer_id not in current:
                del self._known[peer_id]
        self._prev_adjacency = current
