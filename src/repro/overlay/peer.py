"""Peer model: identifiers, virtual coordinates, addresses and lifetimes.

A peer in the paper is described by three things:

* a *self-generated identifier*: a point of the ``D``-dimensional virtual
  coordinate space,
* a *network address* (public IP and port) that other peers use to reach it,
* optionally (Section 3) a known departure time ``T(P)``.

:class:`PeerInfo` bundles the three.  Peer ids are plain integers -- they are
bookkeeping handles for the simulation, not protocol-visible data; everything
the protocol itself uses is the identifier (coordinates) and the address.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.geometry.point import CoordinateLike, Point, as_point

__all__ = ["NetworkAddress", "PeerInfo", "make_peer"]


@dataclass(frozen=True, order=True)
class NetworkAddress:
    """A simulated public endpoint (host and port).

    The construction algorithms only ever treat addresses as opaque delivery
    handles, so a simulated address preserves the paper's behaviour exactly;
    see DESIGN.md, "Substitutions".
    """

    host: str
    port: int

    def __post_init__(self) -> None:
        if not self.host:
            raise ValueError("host must be a non-empty string")
        if not (0 < self.port < 65536):
            raise ValueError(f"port must be in (0, 65536), got {self.port}")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.host}:{self.port}"


@dataclass(frozen=True)
class PeerInfo:
    """Everything the overlay knows about one peer.

    Attributes
    ----------
    peer_id:
        Simulation-level integer handle (unique within an overlay).
    coordinates:
        The peer's virtual identifier, a point in ``[0, VMAX]^D``.
    address:
        The peer's (simulated) network address.
    lifetime:
        Departure time ``T(P)``; ``None`` when unknown (Section 2 setting).
    """

    peer_id: int
    coordinates: Point
    address: NetworkAddress
    lifetime: Optional[float] = None

    def __post_init__(self) -> None:
        if self.peer_id < 0:
            raise ValueError("peer_id must be non-negative")
        object.__setattr__(self, "coordinates", as_point(self.coordinates))
        if self.lifetime is not None and self.lifetime < 0:
            raise ValueError("lifetime must be non-negative when given")

    @property
    def dimension(self) -> int:
        """Dimension of the peer's virtual identifier."""
        return self.coordinates.dimension

    def with_lifetime_coordinate(self) -> "PeerInfo":
        """Return a copy whose first coordinate is the lifetime ``T(P)``.

        This is the Section 3 embedding: "we set x(P,1) = T(P)".  Requires a
        known lifetime.
        """
        if self.lifetime is None:
            raise ValueError(
                f"peer {self.peer_id} has no known lifetime; cannot embed it as a coordinate"
            )
        coords = (float(self.lifetime),) + tuple(self.coordinates)[1:]
        return replace(self, coordinates=Point(coords))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        life = "" if self.lifetime is None else f", T={self.lifetime:.3f}"
        return f"Peer {self.peer_id} @ {tuple(self.coordinates)}{life}"


def make_peer(
    peer_id: int,
    coordinates: CoordinateLike,
    *,
    lifetime: Optional[float] = None,
    host: Optional[str] = None,
    port: Optional[int] = None,
) -> PeerInfo:
    """Convenience constructor that fabricates a simulated address.

    By default peer ``i`` is given the address ``10.x.y.z:7000 + (i % 1000)``
    derived from its id; tests and examples rarely care about the concrete
    value, only that it exists and is unique per peer.
    """
    if host is None:
        host = f"10.{(peer_id >> 16) & 0xFF}.{(peer_id >> 8) & 0xFF}.{peer_id & 0xFF}"
    if port is None:
        port = 7000 + (peer_id % 1000)
    return PeerInfo(
        peer_id=peer_id,
        coordinates=as_point(coordinates),
        address=NetworkAddress(host=host, port=port),
        lifetime=lifetime,
    )
