"""Columnar engine state: the implicit full-knowledge candidate representation.

Under full knowledge every peer's candidate set is "everyone alive but me",
so the per-peer frozensets the dict-backed engine bookkeeping materialises
are pure redundancy: the whole population history can be captured once, as a
**population epoch counter** plus an append-only membership event log, and
each peer's candidate state collapses to two scalars -- the epoch at its
last installed selection and a needs-full flag.  This module holds that
representation:

* :class:`DenseIdMap` -- the overlay-owned ``peer id -> row`` map.  Rows are
  dense array indices, never recycled (a rejoin of a departed id reuses its
  row), so every per-peer quantity anywhere in the engine can live in a flat
  numpy column indexed by row.
* :class:`ColumnarCandidateState` -- the full-knowledge implementation of
  the :class:`~repro.overlay.incremental.CandidateView` contract.  Membership
  notifications are O(1) array writes plus one event-log append; a peer's
  candidate delta since its stamp is resolved lazily from the log window in
  O(events in window), shared across every peer with the same stamp; the
  per-round dirty scan is a single vectorised mask over the row columns,
  and :meth:`~ColumnarCandidateState.plan_round` collapses the whole
  schedule-and-classify step into verdict mask columns (one shared gained
  window per stamp group) so a round costs numpy passes plus O(changes)
  Python, never a per-peer loop.
  Nothing ever materialises an O(N) id set on the per-event path
  (mechanically enforced: the notification methods carry
  :func:`~repro.contracts.hot_path` and reprolint rule RPL005 rejects
  population materialisation inside the hot region).
* :class:`ColumnarDeltaRecorder` -- the delta-stream recorder over the same
  dense rows: ``note_join`` / ``note_leave`` / ``note_touch`` are boolean
  array writes instead of Python set operations, and ``drain`` rebuilds the
  same :class:`~repro.overlay.incremental.OverlayDelta` frozensets the
  dict-backed recorder produces (the contract, including join+leave
  cancellation inside one window, is byte-identical).

Equivalence with the explicit representation
--------------------------------------------

The event-log delta rule reproduces the dict engine's pending gain/loss
accumulators, with one deliberate widening: a leave followed by a rejoin of
the same id inside one window yields the id in *both* ``gained`` and
``lost`` (the explicit path yields it only in ``gained``).  Both classify to
the same verdict -- the rejoined id is never in the peer's installed
selection (its selectors were forced onto the full-recompute path at the
departure), so the extra ``lost`` entry cannot trigger the full path -- and
the widened delta is what keeps a rejoin *with different coordinates*
correct without per-peer pending sets.  The property suites in
``tests/overlay`` assert both representations install byte-identical fixed
points over whole churn scripts.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple, Union

import numpy as np

from repro.contracts import hot_path
from repro.overlay.incremental import (
    CandidateView,
    OverlayDelta,
    OverlayDeltaRecorder,
    RoundPlan,
    RoundWindow,
)

__all__ = [
    "DenseIdMap",
    "ColumnarCandidateState",
    "ColumnarDeltaRecorder",
]

_INITIAL_CAPACITY = 64

#: Event-log record kinds.
_JOIN = 0
_LEAVE = 1
_MOVE = 2


def _grown(array: "np.ndarray", capacity: int, fill: object) -> "np.ndarray":
    """Copy ``array`` into a larger buffer, new slots set to ``fill``."""
    grown = np.full(capacity, fill, dtype=array.dtype)
    grown[: len(array)] = array
    return grown


class DenseIdMap:
    """Dense ``peer id -> row`` map shared by the columnar engine components.

    The overlay owns one instance and keeps the alive flags in lockstep with
    its peer map; the candidate state and the columnar delta recorders hang
    their own numpy columns off the same row numbering (growing them lazily
    to :attr:`capacity`).  Rows are never recycled: a departed id keeps its
    row and a rejoin reuses it, which is what lets per-row state like the
    recorder's cancellation flags survive membership churn without any
    compaction bookkeeping.
    """

    def __init__(self) -> None:
        self._row_of_id: Dict[int, int] = {}
        self._id_of_row = np.zeros(_INITIAL_CAPACITY, dtype=np.int64)
        self._alive = np.zeros(_INITIAL_CAPACITY, dtype=bool)
        self._row_count = 0

    @property
    def capacity(self) -> int:
        """Current column length; dependent columns sync to this lazily."""
        return len(self._id_of_row)

    @property
    def row_count(self) -> int:
        """Number of allocated rows (alive peers plus departed ids)."""
        return self._row_count

    @property
    def alive_count(self) -> int:
        """Number of rows currently flagged alive."""
        return int(self._alive[: self._row_count].sum())

    @hot_path
    def ensure_row(self, peer_id: int) -> int:
        """Row of ``peer_id``, allocating one (amortised O(1)) if unseen."""
        row = self._row_of_id.get(peer_id)
        if row is not None:
            return row
        row = self._row_count
        if row == len(self._id_of_row):
            self._id_of_row = _grown(self._id_of_row, 2 * row, 0)
            self._alive = _grown(self._alive, 2 * row, False)
        self._row_of_id[peer_id] = row
        self._id_of_row[row] = peer_id
        self._row_count = row + 1
        return row

    @hot_path
    def mark_alive(self, peer_id: int) -> int:
        """Flag ``peer_id`` alive (allocating its row); returns the row."""
        row = self.ensure_row(peer_id)
        self._alive[row] = True
        return row

    @hot_path
    def mark_dead(self, peer_id: int) -> int:
        """Flag ``peer_id`` departed; its row stays allocated."""
        row = self._row_of_id[peer_id]
        self._alive[row] = False
        return row

    def row_of(self, peer_id: int) -> int:
        """Row of a known id (:class:`KeyError` for ids never seen)."""
        return self._row_of_id[peer_id]

    def id_at(self, row: int) -> int:
        """Peer id stored at ``row`` (as a Python int)."""
        return int(self._id_of_row[row])

    def ids_at(self, rows: "np.ndarray") -> "np.ndarray":
        """Peer ids at an array of rows (one vectorised gather)."""
        return self._id_of_row[rows]

    def is_alive(self, peer_id: int) -> bool:
        """Whether a known id is currently flagged alive."""
        return bool(self._alive[self._row_of_id[peer_id]])

    def alive_mask(self) -> "np.ndarray":
        """Boolean alive column over the allocated rows (shared memory)."""
        return self._alive[: self._row_count]

    def alive_ids(self) -> List[int]:
        """Materialise the alive ids (non-hot helper for full recomputes)."""
        rows = self._id_of_row[: self._row_count][self.alive_mask()]
        return [int(value) for value in rows]


class ColumnarCandidateState(CandidateView):
    """Implicit full-knowledge candidate bookkeeping over dense rows.

    State per peer: an int64 *stamp* (the population epoch at its last
    installed selection) and a boolean *needs-full* flag (no selection
    consistent with any candidate set exists -- fresh joins, peers whose
    neighbour sets were mutated behind the engine's back).  State for the
    population: the epoch counter (``base epoch + len(event log)``) and the
    append-only ``(kind, peer id)`` event log.

    A peer is dirty exactly when it is alive and either needs a full
    recompute or is stamped below the current epoch; the per-round schedule
    is one vectorised mask over the columns (the documented-O(N) sweep of
    :meth:`~repro.overlay.incremental.IncrementalReselectionEngine.run_round`,
    a few numpy passes).  The candidate delta of a stamped peer is the net
    membership flip parity over its log window -- computed once per distinct
    stamp per round and shared -- so classification work is O(dirty peers +
    log window), independent of the population size.

    The log is compacted after every round: entries below the minimum stamp
    of any tracked alive peer can never be consulted again and are dropped,
    so a converged overlay always carries an empty window.
    """

    def __init__(self, rows: DenseIdMap) -> None:
        self._rows = rows
        self._base_epoch = 0
        self._events: List[Tuple[int, int]] = []
        self._stamps = np.full(rows.capacity, -1, dtype=np.int64)
        self._needs_full = np.ones(rows.capacity, dtype=bool)
        #: stamp -> (gained, lost), valid for the current round only.
        self._window_cache: Dict[int, Tuple[Set[int], Set[int]]] = {}
        #: Rows scheduled by the open round: a Python list on the per-peer
        #: protocol (``begin_round``), an int64 array on the vectorised one
        #: (``plan_round``); ``end_round`` stamps either wholesale.
        self._scheduled_rows: Union[List[int], "np.ndarray"] = []

    @property
    def epoch(self) -> int:
        """The population epoch: bumped by every membership event."""
        return self._base_epoch + len(self._events)

    def _sync(self) -> None:
        """Grow the per-row columns to the shared map's capacity."""
        capacity = self._rows.capacity
        if len(self._stamps) < capacity:
            self._stamps = _grown(self._stamps, capacity, -1)
            self._needs_full = _grown(self._needs_full, capacity, True)

    # ------------------------------------------------------------------
    # Membership notifications (the per-event hot path)
    # ------------------------------------------------------------------
    @hot_path
    def note_join(self, peer_id: int) -> None:
        """O(1): flag the joiner for a full recompute, bump the epoch."""
        row = self._rows.ensure_row(peer_id)
        self._sync()
        self._needs_full[row] = True
        self._events.append((_JOIN, peer_id))
        self._window_cache.clear()

    @hot_path
    def note_leave(self, peer_id: int, selector_ids: Iterable[int]) -> None:
        """O(selectors): force selectors onto the full path, bump the epoch."""
        rows = self._rows
        row = rows.ensure_row(peer_id)
        self._sync()
        self._needs_full[row] = True
        for selector in selector_ids:
            self._needs_full[rows.ensure_row(selector)] = True
        self._events.append((_LEAVE, peer_id))
        self._window_cache.clear()

    @hot_path
    def note_move(self, peer_id: int) -> None:
        """O(1): a coordinate change re-identifies the peer as a candidate.

        The mover itself needs a full recompute (its own reference point
        changed, which no candidate delta can express).  Everyone else sees
        the move through the log window: the id lands in both ``gained`` and
        ``lost``, which forces selectors of the mover onto the full path
        (lost ∩ installed) and re-offers the new coordinates to everyone
        else additively.
        """
        row = self._rows.ensure_row(peer_id)
        self._sync()
        self._needs_full[row] = True
        self._events.append((_MOVE, peer_id))
        self._window_cache.clear()

    def forget(self, peer_id: int) -> None:
        """No-op: columnar bookkeeping is row-keyed and alive-gated."""

    # ------------------------------------------------------------------
    # Rounds
    # ------------------------------------------------------------------
    def _dirty_row_array(self) -> "np.ndarray":
        """The alive-and-stale rows, as one vectorised mask pass."""
        self._sync()
        self._window_cache.clear()
        count = self._rows.row_count
        if count == 0:
            return np.zeros(0, dtype=np.int64)
        alive = self._rows.alive_mask()
        stale = self._needs_full[:count] | (self._stamps[:count] != self.epoch)
        return np.flatnonzero(alive & stale)

    def begin_round(self) -> List[int]:
        """Vectorised dirty scan; returns the sorted alive dirty ids."""
        dirty_rows = self._dirty_row_array()
        self._scheduled_rows = [int(row) for row in dirty_rows]
        schedule = [self._rows.id_at(row) for row in self._scheduled_rows]
        schedule.sort()
        return schedule

    @hot_path
    def plan_round(
        self,
        selectors_of: Mapping[int, Set[int]],
        path_independent: bool,
    ) -> Optional[RoundPlan]:
        """Schedule and classify one round as verdict columns.

        The vectorised round protocol (see
        :meth:`repro.overlay.incremental.CandidateView.plan_round`): the
        dirty scan, the per-peer history test and the whole
        :func:`~repro.overlay.incremental.classify_reselect` decision table
        collapse into numpy mask algebra over the scheduled rows.  Python
        touches only change-sized structures -- the distinct stamp values
        (one per converge generation still tracked, typically one), each
        window's gained/lost id sets, and the selectors of each lost id
        (how ``lost & installed_selection`` is resolved without per-peer
        intersections) -- so the plan costs O(dirty rows) in numpy plus
        O(changes) in Python, never O(alive) Python iteration.

        Verdict equivalence with the per-peer loop, stamp group by stamp
        group: rows flagged needs-full have no history -> ``full``; an
        empty window -> ``skip``; a non-path-independent method -> ``full``;
        otherwise members whose installed selection intersects the lost set
        (exactly the scheduled selectors of lost ids) -> ``full``, the rest
        -> ``additive`` when the window gained and ``skip`` when it only
        lost.  The one per-peer subtlety -- ``delta()`` defensively drops a
        peer from its own window, a case the representation provably never
        produces -- is preserved by falling back (``None``) if it ever did.
        """
        scheduled_rows = self._dirty_row_array()
        self._scheduled_rows = scheduled_rows
        rows_map = self._rows
        scheduled_ids = rows_map.ids_at(scheduled_rows)
        total = int(scheduled_rows.size)
        full_mask = self._needs_full[scheduled_rows].copy()
        skip_mask = np.zeros(total, dtype=bool)
        additive_mask = np.zeros(total, dtype=bool)
        windows: List[RoundWindow] = []
        stamped = ~full_mask
        if stamped.any():
            stamps = self._stamps[scheduled_rows]
            position_of_row = np.full(rows_map.row_count, -1, dtype=np.int64)
            position_of_row[scheduled_rows] = np.arange(total, dtype=np.int64)
            for stamp in np.unique(stamps[stamped]):
                member_mask = stamped & (stamps == stamp)
                gained, lost = self._delta_since(int(stamp))
                for window_id in gained | lost:
                    position = int(position_of_row[rows_map.row_of(window_id)])
                    if position >= 0 and member_mask[position]:
                        # A peer inside its own window: documented-impossible
                        # (see delta()); keep the per-peer path's defensive
                        # semantics by handing the round back to it.
                        return None
                if not gained and not lost:
                    skip_mask |= member_mask
                    continue
                if not path_independent:
                    full_mask |= member_mask
                    continue
                rest = member_mask
                if lost:
                    hit = np.zeros(total, dtype=bool)
                    for lost_id in lost:
                        for selector in selectors_of.get(lost_id, ()):
                            position = int(
                                position_of_row[rows_map.row_of(selector)]
                            )
                            if position >= 0 and member_mask[position]:
                                hit[position] = True
                    full_mask |= member_mask & hit
                    rest = member_mask & ~hit
                if not gained:
                    skip_mask |= rest
                elif rest.any():
                    additive_mask |= rest
                    windows.append(
                        RoundWindow(members=rest, gained=frozenset(gained))
                    )
        return RoundPlan(
            scheduled_rows=scheduled_rows,
            scheduled_ids=scheduled_ids,
            full_mask=full_mask,
            skip_mask=skip_mask,
            additive_mask=additive_mask,
            windows=tuple(windows),
        )

    def delta(self, peer_id: int) -> Tuple[bool, Set[int], Set[int]]:
        """``(has history, gained, lost)`` for one scheduled peer."""
        row = self._rows.row_of(peer_id)
        if self._needs_full[row]:
            return False, set(), set()
        gained, lost = self._delta_since(int(self._stamps[row]))
        if peer_id in gained or peer_id in lost:
            # Defensive only: any event naming the peer itself also sets its
            # needs-full flag (join, move) or its alive flag (leave), so a
            # stamped scheduled peer never appears in its own window.
            gained = gained - {peer_id}
            lost = lost - {peer_id}
        return True, gained, lost

    def _delta_since(self, stamp: int) -> Tuple[Set[int], Set[int]]:
        """Net candidate delta over the log window since ``stamp``.

        Membership is resolved by flip parity against the *current* alive
        flag: an id whose window flips are odd changed state, an id with an
        even (non-zero) flip count departed and rejoined -- same id,
        possibly a new identity, hence both gained and lost -- and a moved
        id that stayed alive throughout is likewise both.  The result is
        cached per distinct stamp and shared by every peer carrying it.
        """
        cached = self._window_cache.get(stamp)
        if cached is not None:
            return cached
        rows = self._rows
        toggles: Dict[int, int] = {}
        moved: Set[int] = set()
        for kind, event_id in self._events[stamp - self._base_epoch :]:
            if kind == _MOVE:
                moved.add(event_id)
            else:
                toggles[event_id] = toggles.get(event_id, 0) + 1
        gained: Set[int] = set()
        lost: Set[int] = set()
        for event_id, flips in toggles.items():
            alive_now = rows.is_alive(event_id)
            alive_then = alive_now if flips % 2 == 0 else not alive_now
            if alive_then and alive_now:
                gained.add(event_id)
                lost.add(event_id)
            elif alive_then:
                lost.add(event_id)
            elif alive_now:
                gained.add(event_id)
        for event_id in moved:
            if event_id not in toggles and rows.is_alive(event_id):
                gained.add(event_id)
                lost.add(event_id)
        result = (gained, lost)
        self._window_cache[stamp] = result
        return result

    def full_candidate_ids(self, peer_id: int) -> Set[int]:
        """Materialise one peer's candidates (scan-path full recomputes only)."""
        ids = set(self._rows.alive_ids())
        ids.discard(peer_id)
        return ids

    def commit(
        self, peer_id: int, verdict: str, gained: Set[int], lost: Set[int]
    ) -> None:
        """No-op: every scheduled row is stamped wholesale in ``end_round``."""

    def end_round(self) -> None:
        """Stamp the scheduled rows to the current epoch; compact the log."""
        if len(self._scheduled_rows):
            scheduled = np.asarray(self._scheduled_rows, dtype=np.int64)
            self._stamps[scheduled] = self.epoch
            self._needs_full[scheduled] = False
            self._scheduled_rows = []
        self._window_cache.clear()
        self._compact_log()

    def _compact_log(self) -> None:
        """Drop log entries no tracked alive peer can ever consult again."""
        count = self._rows.row_count
        floor = self.epoch
        if count:
            tracked = self._rows.alive_mask() & ~self._needs_full[:count]
            if tracked.any():
                floor = int(self._stamps[:count][tracked].min())
        drop = floor - self._base_epoch
        if drop > 0:
            del self._events[:drop]
            self._base_epoch = floor

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def dirty_ids(self) -> FrozenSet[int]:
        """Alive peers whose candidate sets may have changed since stamping."""
        self._sync()
        count = self._rows.row_count
        if count == 0:
            return frozenset()
        alive = self._rows.alive_mask()
        stale = self._needs_full[:count] | (self._stamps[:count] != self.epoch)
        return frozenset(self._rows.id_at(int(row)) for row in np.flatnonzero(alive & stale))


class ColumnarDeltaRecorder(OverlayDeltaRecorder):
    """Delta-stream recorder whose event notes are dense boolean array writes.

    Handed out by :meth:`repro.overlay.network.OverlayNetwork.delta_stream`
    on overlays that own a :class:`DenseIdMap`; implements the exact
    recorder contract of the set-backed base class (join+leave inside one
    window cancels, leave+rejoin appears as both, ``drain`` resets), with
    every note collapsed to flag writes at the shared row numbering.
    """

    def __init__(self, rows: DenseIdMap) -> None:
        self._rows = rows
        self._joined_rows = np.zeros(rows.capacity, dtype=bool)
        self._departed_rows = np.zeros(rows.capacity, dtype=bool)
        self._touched_rows = np.zeros(rows.capacity, dtype=bool)
        # One past the highest row noted since the last drain.  Keeps drain
        # O(touched area) -- an idle stream drains (and resets) nothing
        # instead of scanning three capacity-length columns.
        self._high_water = 0

    def _sync(self) -> None:
        capacity = self._rows.capacity
        if len(self._joined_rows) < capacity:
            self._joined_rows = _grown(self._joined_rows, capacity, False)
            self._departed_rows = _grown(self._departed_rows, capacity, False)
            self._touched_rows = _grown(self._touched_rows, capacity, False)

    @hot_path
    def note_join(self, peer_id: int) -> None:
        """A peer entered the overlay (possibly re-using a departed id)."""
        row = self._rows.ensure_row(peer_id)
        self._sync()
        self._joined_rows[row] = True
        self._touched_rows[row] = True
        if row >= self._high_water:
            self._high_water = row + 1

    @hot_path
    def note_leave(self, peer_id: int) -> None:
        """A peer left the overlay."""
        row = self._rows.ensure_row(peer_id)
        self._sync()
        if row >= self._high_water:
            self._high_water = row + 1
        if self._joined_rows[row]:
            # Join and leave inside one window cancel: the consumer never
            # saw the peer, so it must not be asked to remove it.
            self._joined_rows[row] = False
        else:
            self._departed_rows[row] = True

    @hot_path
    def note_touch(self, touched_ids: Iterable[int]) -> None:
        """The undirected adjacency of these peers may have changed."""
        rows = self._rows
        for touched_id in touched_ids:
            row = rows.ensure_row(touched_id)
            if row >= len(self._touched_rows):
                self._sync()
            self._touched_rows[row] = True
            if row >= self._high_water:
                self._high_water = row + 1

    @hot_path
    def drain(self) -> OverlayDelta:
        """Return the accumulated delta and reset the flag columns."""
        limit = self._high_water
        if limit == 0:
            return OverlayDelta(
                joined=frozenset(), departed=frozenset(), touched=frozenset()
            )
        rows = self._rows
        delta = OverlayDelta(
            joined=frozenset(
                rows.id_at(int(row)) for row in np.flatnonzero(self._joined_rows[:limit])
            ),
            departed=frozenset(
                rows.id_at(int(row)) for row in np.flatnonzero(self._departed_rows[:limit])
            ),
            touched=frozenset(
                rows.id_at(int(row)) for row in np.flatnonzero(self._touched_rows[:limit])
            ),
        )
        self._joined_rows[:limit] = False
        self._departed_rows[:limit] = False
        self._touched_rows[:limit] = False
        self._high_water = 0
        return delta
