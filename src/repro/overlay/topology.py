"""Topology snapshots and their statistics.

The overlay topology is the undirected closure of the directed "P selected Q"
relation: messages (gossip, multicast construction requests) travel over
links, and a link exists when either endpoint selected the other.  Figure 1
panels (a) and (c) of the paper report the maximum and average *topology
degree* of a peer, i.e. degrees in this undirected graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Mapping, Set, Tuple

import networkx as nx

from repro.overlay.peer import PeerInfo

__all__ = ["TopologySnapshot", "undirected_closure"]


def undirected_closure(directed: Mapping[int, Iterable[int]]) -> Dict[int, Set[int]]:
    """Symmetric adjacency obtained by adding the reverse of every selected link."""
    adjacency: Dict[int, Set[int]] = {peer_id: set() for peer_id in directed}
    for peer_id, neighbours in directed.items():
        for neighbour in neighbours:
            if neighbour == peer_id:
                continue
            if neighbour not in adjacency:
                raise KeyError(
                    f"peer {peer_id} selected unknown peer {neighbour}; "
                    "the directed map must mention every peer as a key"
                )
            adjacency[peer_id].add(neighbour)
            adjacency[neighbour].add(peer_id)
    return adjacency


@dataclass(frozen=True)
class TopologySnapshot:
    """An immutable view of the overlay at one instant.

    Attributes
    ----------
    peers:
        Peer metadata by id.
    selected:
        The directed selection: ``selected[p]`` is the set of peers ``p``
        chose as neighbours.
    adjacency:
        The undirected closure of ``selected`` -- the communication topology.
    """

    peers: Mapping[int, PeerInfo]
    selected: Mapping[int, FrozenSet[int]]
    adjacency: Mapping[int, FrozenSet[int]]

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_directed(
        cls,
        peers: Mapping[int, PeerInfo],
        directed: Mapping[int, Iterable[int]],
    ) -> "TopologySnapshot":
        """Snapshot from peer metadata and the directed selection map."""
        selected = {peer_id: frozenset(neighbours) for peer_id, neighbours in directed.items()}
        missing = set(peers) - set(selected)
        for peer_id in missing:
            selected[peer_id] = frozenset()
        adjacency = {
            peer_id: frozenset(neighbours)
            for peer_id, neighbours in undirected_closure(selected).items()
        }
        return cls(peers=dict(peers), selected=selected, adjacency=adjacency)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def peer_count(self) -> int:
        """Number of peers in the snapshot."""
        return len(self.peers)

    def degree(self, peer_id: int) -> int:
        """Undirected topology degree of one peer."""
        return len(self.adjacency[peer_id])

    def degrees(self) -> Dict[int, int]:
        """Undirected topology degree of every peer."""
        return {peer_id: len(neighbours) for peer_id, neighbours in self.adjacency.items()}

    def edges(self) -> Set[Tuple[int, int]]:
        """Undirected edges as ``(smaller id, larger id)`` pairs."""
        result: Set[Tuple[int, int]] = set()
        for peer_id, neighbours in self.adjacency.items():
            for neighbour in neighbours:
                result.add((min(peer_id, neighbour), max(peer_id, neighbour)))
        return result

    def edge_count(self) -> int:
        """Number of undirected edges."""
        return len(self.edges())

    # ------------------------------------------------------------------
    # Statistics used by the figures
    # ------------------------------------------------------------------
    def maximum_degree(self) -> int:
        """Maximum topology degree of a peer (Figure 1 (a) and (c))."""
        if not self.adjacency:
            return 0
        return max(len(neighbours) for neighbours in self.adjacency.values())

    def average_degree(self) -> float:
        """Average topology degree of a peer (Figure 1 (a) and (c))."""
        if not self.adjacency:
            return 0.0
        return sum(len(neighbours) for neighbours in self.adjacency.values()) / len(
            self.adjacency
        )

    def is_connected(self) -> bool:
        """``True`` when the undirected topology is a single connected component."""
        if not self.adjacency:
            return True
        start = next(iter(self.adjacency))
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for neighbour in self.adjacency[node]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    stack.append(neighbour)
        return len(seen) == len(self.adjacency)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_networkx(self) -> "nx.Graph":
        """Export the undirected topology as a :class:`networkx.Graph`.

        Node attributes carry the peer coordinates and lifetime, so standard
        networkx algorithms (diameter, centrality, drawing) can be applied
        directly by downstream users.
        """
        graph = nx.Graph()
        for peer_id, info in self.peers.items():
            graph.add_node(
                peer_id,
                coordinates=tuple(info.coordinates),
                lifetime=info.lifetime,
            )
        graph.add_edges_from(self.edges())
        return graph
