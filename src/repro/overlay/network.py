"""The P2P overlay network: membership, knowledge sets and convergence.

:class:`OverlayNetwork` maintains the state the paper's protocol maintains --
which peers exist, which neighbours each peer has selected -- and exposes the
two ways of reaching the equilibrium topology:

* :meth:`OverlayNetwork.converge` runs synchronous *reselection rounds*.
  Two equivalent convergence paths implement them:

  - the **full sweep** (``incremental=False``, the reference path): in every
    round each peer recomputes its candidate set ``I(P)`` (either every
    other peer, or the peers within ``gossip_radius`` = ``BR`` overlay hops
    of it) and applies the neighbour selection method.  This mirrors the
    paper's procedure of letting the overlay converge after every membership
    change, at ``O(N)`` selections per round.
  - the **incremental engine** (``incremental=True``, backed by
    :class:`repro.overlay.incremental.IncrementalReselectionEngine`): only
    *dirty* peers -- those whose candidate set may have changed since their
    last selection -- are re-selected each round, with dirtiness seeded by
    membership events and propagated through candidate-set deltas.  Partial
    rounds install exactly what a full sweep would (clean peers provably
    reproduce their selection), so both paths follow the same trajectory and
    reach the identical fixed point; property tests cross-check this.  The
    engine is what makes the paper's insert-one-converge procedure tractable
    at churn scale (``N = 1000`` and beyond).

* :meth:`OverlayNetwork.build_equilibrium` jumps straight to the
  full-knowledge fixed point using the selection method's (possibly
  vectorised) :meth:`~repro.overlay.selection.base.NeighbourSelectionMethod.compute_equilibrium`.
  The paper states the gossip process should converge to (or close to) this
  topology; tests verify the agreement on small instances.

A message-level replay of the join/gossip protocol (individual announcements,
latencies, ``Tmax`` expiry) lives in :mod:`repro.simulation.protocol` and
produces the same equilibria.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.geometry.index import SpatialIndex
from repro.overlay.columnar import ColumnarDeltaRecorder, DenseIdMap
from repro.overlay.gossip import knowledge_sets
from repro.overlay.incremental import IncrementalReselectionEngine, OverlayDeltaRecorder
from repro.overlay.peer import PeerInfo
from repro.overlay.selection.base import NeighbourSelectionMethod
from repro.overlay.topology import TopologySnapshot, undirected_closure

__all__ = [
    "OverlayNetwork",
    "ConvergenceError",
    "BatchJoin",
    "BatchLeave",
    "BatchMove",
    "BatchEvent",
]


@dataclass(frozen=True)
class BatchJoin:
    """One join inside an :meth:`OverlayNetwork.apply_batch` epoch.

    ``bootstrap=None`` selects the default :meth:`OverlayNetwork.add_peer`
    rule (the lowest existing id); peers that joined earlier in the same
    batch are valid bootstrap contacts because events apply in order.
    """

    peer: PeerInfo
    bootstrap: Optional[FrozenSet[int]] = None


@dataclass(frozen=True)
class BatchLeave:
    """One departure inside an :meth:`OverlayNetwork.apply_batch` epoch."""

    peer_id: int


@dataclass(frozen=True)
class BatchMove:
    """One identifier move inside an :meth:`OverlayNetwork.apply_batch` epoch.

    Applied through :meth:`OverlayNetwork.move_peer`: the peer keeps its id
    and address but relocates to ``coordinates`` in the virtual space, and
    the epoch's single convergence settles every selection the move dirtied.
    """

    peer_id: int
    coordinates: Tuple[float, ...]


#: Accepted by :meth:`OverlayNetwork.apply_batch`: explicit event records, or
#: the shorthands ``PeerInfo`` (a default-bootstrap join) and ``int`` (a leave).
BatchEvent = Union[BatchJoin, BatchLeave, BatchMove, PeerInfo, int]


def _validate_dimension(peer: PeerInfo, dimension: int) -> None:
    """Reject a peer whose identifier dimension differs from the overlay's.

    Shared by :meth:`OverlayNetwork.add_peer` and the bulk builders so a bad
    population always fails with the same clear message instead of crashing
    deep inside the numpy selection code.
    """
    if peer.dimension != dimension:
        raise ValueError(
            f"peer {peer.peer_id} has dimension {peer.dimension}, overlay uses {dimension}"
        )


class ConvergenceError(RuntimeError):
    """Raised when reselection rounds fail to reach a fixed point."""

    def __init__(self, rounds: int) -> None:
        super().__init__(
            f"overlay did not converge within {rounds} reselection rounds; "
            "increase max_rounds or check the selection method for oscillation"
        )
        self.rounds = rounds


class OverlayNetwork:
    """A P2P overlay whose neighbour sets are produced by a selection method.

    Parameters
    ----------
    selection:
        The neighbour selection method every peer applies to its candidate
        set.
    gossip_radius:
        ``BR``, the number of overlay hops existence announcements travel.
        ``None`` (the default) models the full-knowledge steady state in
        which every peer eventually hears about every other peer.
    use_index:
        Whether the overlay owns a :class:`~repro.geometry.index.SpatialIndex`
        over the alive peers' coordinates.  ``None`` (the default) enables
        it exactly under full knowledge, where the population *is* every
        peer's candidate set, so selection methods with an index fast path
        answer from the index instead of scanning -- byte-identically.
        Under a bounded gossip radius candidate sets are per-peer subsets
        the shared index cannot answer, so convergence always falls back to
        scans (the index, if forced on, is still maintained).  Pass
        ``False`` to pin the scan path (the benchmark baselines do).
    columnar:
        Whether the overlay owns a :class:`~repro.overlay.columnar.DenseIdMap`
        and hands the incremental engine / delta recorders the columnar
        (implicit candidate set) representation.  ``None`` (the default)
        enables it exactly under full knowledge -- the representation's
        validity condition, since only there is ``I(P)`` "everyone alive
        but me".  Pass ``False`` to pin the explicit dict/frozenset
        bookkeeping (the benchmark baselines and the cross-checking
        property suites do); passing ``True`` with a ``gossip_radius`` is
        a :class:`ValueError`.
    vectorised_rounds:
        Whether the incremental engine may drive convergence rounds through
        the vectorised round protocol
        (:meth:`~repro.overlay.incremental.CandidateView.plan_round` +
        the selection family's cohort install entry).  ``None``/``True``
        (the default) offers it -- only views that support it (the columnar
        representation) actually take it, so the flag is inert on explicit
        or gossip-limited overlays.  Pass ``False`` to pin the per-peer
        classify/install loop: the baseline arm of the vectorised-round
        benchmarks and equivalence suites, which install byte-identical
        topologies either way.
    """

    def __init__(
        self,
        selection: NeighbourSelectionMethod,
        *,
        gossip_radius: Optional[int] = None,
        use_index: Optional[bool] = None,
        columnar: Optional[bool] = None,
        vectorised_rounds: Optional[bool] = None,
    ) -> None:
        if gossip_radius is not None and gossip_radius < 1:
            raise ValueError("gossip_radius must be at least 1 when given")
        if columnar is None:
            columnar = gossip_radius is None
        elif columnar and gossip_radius is not None:
            raise ValueError(
                "columnar candidate state is implicit full-knowledge state; "
                "it cannot represent gossip-limited candidate subsets"
            )
        self._selection = selection
        self._gossip_radius = gossip_radius
        if use_index is None:
            use_index = gossip_radius is None
        # Maintained across every membership path (add_peer / remove_peer /
        # apply_batch / the bulk builders); convergence failures never touch
        # coordinates, so the index stays exact through them.
        self._index: Optional[SpatialIndex] = SpatialIndex() if use_index else None
        # The dense id->row map the columnar engine state and delta
        # recorders share; rows are never recycled, so a departed-then-
        # rejoined id keeps its row and every consumer's columns stay
        # aligned for the overlay's lifetime.
        self._id_rows: Optional[DenseIdMap] = DenseIdMap() if columnar else None
        # Threaded into every lazily created engine; see the class docstring.
        self._vectorised_rounds = vectorised_rounds
        self._peers: Dict[int, PeerInfo] = {}
        self._neighbours: Dict[int, Set[int]] = {}
        # Reverse selector index: _selectors_of[target] is the set of peers
        # whose installed selection contains `target`.  Maintained by
        # notify_selection_change (every selection install routes through
        # it) plus the membership methods, so remove_peer finds the
        # departed peer's selectors in O(selectors) instead of scanning
        # every neighbour set.
        self._selectors_of: Dict[int, Set[int]] = {}
        # Created lazily by the first converge(incremental=True); kept in
        # sync by the membership methods and dropped whenever a full sweep
        # rewrites the topology behind its back.
        self._engine: Optional[IncrementalReselectionEngine] = None
        # Delta-stream subscribers (see repro.overlay.incremental): every
        # membership event and installed selection change is mirrored into
        # each attached recorder, whichever convergence path produced it.
        self._delta_recorders: List[OverlayDeltaRecorder] = []

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    @property
    def selection(self) -> NeighbourSelectionMethod:
        """The neighbour selection method in use."""
        return self._selection

    @property
    def gossip_radius(self) -> Optional[int]:
        """``BR`` when gossip-limited, ``None`` for full knowledge."""
        return self._gossip_radius

    @property
    def index(self) -> Optional[SpatialIndex]:
        """The owned spatial index over alive peers (``None`` when disabled)."""
        return self._index

    @property
    def id_rows(self) -> Optional[DenseIdMap]:
        """The shared dense id map (``None`` when the columnar path is off)."""
        return self._id_rows

    def _selection_index(self) -> Optional[SpatialIndex]:
        """The index, when this overlay's selections may be answered from it.

        Three conditions gate the fast path: an index is owned, knowledge is
        full (the index contents equal every peer's candidate set plus the
        peer itself), and the selection method implements an index-backed
        selection.  Everything else scans -- which is always correct.
        """
        if (
            self._index is not None
            and self._gossip_radius is None
            and self._selection.supports_index
        ):
            return self._index
        return None

    @property
    def peer_ids(self) -> List[int]:
        """Ids of all current peers, sorted."""
        return sorted(self._peers)

    @property
    def peer_count(self) -> int:
        """Number of peers currently in the overlay."""
        return len(self._peers)

    def peer(self, peer_id: int) -> PeerInfo:
        """Metadata of one peer."""
        return self._peers[peer_id]

    def peers(self) -> List[PeerInfo]:
        """Metadata of all peers, sorted by id."""
        return [self._peers[peer_id] for peer_id in sorted(self._peers)]

    def __contains__(self, peer_id: int) -> bool:
        return peer_id in self._peers

    def add_peer(self, peer: PeerInfo, *, bootstrap: Optional[Iterable[int]] = None) -> None:
        """Add a peer, optionally wiring it to bootstrap neighbours.

        A joining peer in the paper must know one or more peers already in
        the system; those become its initial neighbours.  When ``bootstrap``
        is omitted and the overlay is non-empty, one existing peer is chosen
        deterministically (the lowest id) so that the join is always
        well-formed.
        """
        if peer.peer_id in self._peers:
            raise ValueError(f"peer {peer.peer_id} is already in the overlay")
        if self._peers:
            _validate_dimension(peer, next(iter(self._peers.values())).dimension)
        if bootstrap is None:
            bootstrap_ids: Set[int] = {min(self._peers)} if self._peers else set()
        else:
            bootstrap_ids = set(bootstrap)
            unknown = bootstrap_ids - set(self._peers)
            if unknown:
                raise KeyError(f"bootstrap peers {sorted(unknown)} are not in the overlay")
        self._peers[peer.peer_id] = peer
        self._neighbours[peer.peer_id] = set(bootstrap_ids)
        if self._id_rows is not None:
            self._id_rows.mark_alive(peer.peer_id)
        if self._index is not None:
            if len(self._peers) == 1 and self._index.dimension not in (
                None,
                peer.dimension,
            ):
                # A drained index retains its dimension, but an empty overlay
                # legitimately accepts a population of any dimension -- start
                # the index over rather than rejecting the first joiner.
                self._index = SpatialIndex()
            self._index.insert(peer.peer_id, peer.coordinates)
        if self._engine is not None:
            self._engine.note_join(peer.peer_id)
        if self._delta_recorders:
            for recorder in self._delta_recorders:
                recorder.note_join(peer.peer_id)
        # The bootstrap set is an installed selection change like any other
        # (previous selection: empty), so it goes through the shared
        # notification instead of a special-cased touch -- both endpoints of
        # every bootstrap edge land in ``touched``, which is what keeps
        # multi-peer-bootstrap joins on the delta-stream contract.  Called
        # unconditionally (not just when recorders are attached) because the
        # notifier also maintains the reverse selector index.
        self._notify_selection_change(peer.peer_id, set(), bootstrap_ids)

    def remove_peer(self, peer_id: int) -> PeerInfo:
        """Remove a peer and every link that references it."""
        try:
            info = self._peers.pop(peer_id)
        except KeyError:
            raise KeyError(f"unknown peer {peer_id}") from None
        selected = self._neighbours.pop(peer_id, set())
        if self._id_rows is not None:
            self._id_rows.mark_dead(peer_id)
        if self._index is not None:
            self._index.remove(peer_id)
        # The reverse selector index answers "who selected the departed
        # peer" in O(selectors); the previous implementation scanned every
        # neighbour set, which made each departure O(N) regardless of how
        # isolated the peer was.  Sorted so the downstream engine/recorder
        # notifications see a deterministic order.
        selectors = sorted(self._selectors_of.pop(peer_id, ()))
        for selector in selectors:
            self._neighbours[selector].discard(peer_id)
        for target in selected:
            owners = self._selectors_of.get(target)
            if owners is not None:
                owners.discard(peer_id)
                if not owners:
                    del self._selectors_of[target]
        if self._engine is not None:
            self._engine.note_leave(peer_id, selectors)
        if self._delta_recorders:
            for recorder in self._delta_recorders:
                recorder.note_leave(peer_id)
                # Every peer that shared an undirected link with the departed
                # one just lost that edge.
                recorder.note_touch(selectors)
                recorder.note_touch(selected)
        return info

    def move_peer(self, peer_id: int, coordinates: Iterable[float]) -> PeerInfo:
        """Update one peer's coordinates in place; returns the new metadata.

        The paper's population is mobile in the general setting -- a peer's
        characteristic point can drift without the peer leaving the overlay.
        A move keeps the id (and therefore every installed link referencing
        it) while invalidating every selection that evaluated the old
        coordinates: the spatial index is re-keyed, the incremental engine
        is told the mover and everyone tracking it need reclassification,
        and the delta recorders see the mover plus both its selectors and
        its selected targets as touched (their undirected adjacency may
        change at the next convergence).  The caller converges afterwards,
        exactly like after :meth:`add_peer` / :meth:`remove_peer`.
        """
        try:
            info = self._peers[peer_id]
        except KeyError:
            raise KeyError(f"unknown peer {peer_id}") from None
        moved = replace(info, coordinates=tuple(coordinates))
        _validate_dimension(moved, info.dimension)
        self._peers[peer_id] = moved
        if self._index is not None:
            self._index.move(peer_id, moved.coordinates)
        if self._engine is not None:
            self._engine.note_move(peer_id)
        if self._delta_recorders:
            touched = {peer_id}
            touched.update(self._selectors_of.get(peer_id, ()))
            touched.update(self._neighbours.get(peer_id, ()))
            for recorder in self._delta_recorders:
                recorder.note_touch(touched)
        return moved

    # ------------------------------------------------------------------
    # Neighbour state
    # ------------------------------------------------------------------
    def selected_neighbours(self, peer_id: int) -> FrozenSet[int]:
        """Peers that ``peer_id`` currently selects as neighbours (directed)."""
        return frozenset(self._neighbours[peer_id])

    def directed_neighbour_map(self) -> Dict[int, FrozenSet[int]]:
        """The whole directed selection map."""
        return {peer_id: frozenset(neighbours) for peer_id, neighbours in self._neighbours.items()}

    def adjacency(self) -> Dict[int, Set[int]]:
        """Undirected communication topology (closure of the selection map)."""
        return undirected_closure(self._neighbours)

    def snapshot(self) -> TopologySnapshot:
        """Immutable snapshot of the current topology."""
        return TopologySnapshot.from_directed(self._peers, self._neighbours)

    # ------------------------------------------------------------------
    # Delta stream (see repro.overlay.incremental for the contract)
    # ------------------------------------------------------------------
    def delta_stream(self) -> OverlayDeltaRecorder:
        """Attach and return a new overlay delta recorder.

        From this call on, every membership event and every installed
        selection change -- full sweeps and incremental rounds alike -- is
        mirrored into the recorder; draining it yields the net
        :class:`~repro.overlay.incremental.OverlayDelta` since the previous
        drain.  Consumers attaching to an already-populated overlay must
        bootstrap from :meth:`snapshot` first (events before the attachment
        are not replayed); re-processing peers touched both before and after
        the snapshot is harmless by the contract.

        Columnar overlays get a :class:`~repro.overlay.columnar.ColumnarDeltaRecorder`
        sharing the overlay's dense id map, so recorder touches are flag-array
        writes; the drained deltas are identical either way.
        """
        recorder: OverlayDeltaRecorder = (
            ColumnarDeltaRecorder(self._id_rows)
            if self._id_rows is not None
            else OverlayDeltaRecorder()
        )
        self._delta_recorders.append(recorder)
        return recorder

    def notify_selection_change(
        self, peer_id: int, previous: Set[int], selected: Set[int]
    ) -> None:
        """Record one installed selection change into every delta recorder.

        The undirected adjacency of the selecting peer and of both the
        gained and lost targets may have changed; everything else provably
        kept its adjacency.

        This is the public half of the delta-stream contract: *every* code
        path that mutates ``_neighbours`` -- the membership methods, both
        convergence paths, and the incremental engine (a friend class that
        installs selections directly) -- must route the change through here,
        or downstream consumers silently diverge.  Mechanically enforced by
        reprolint rule RPL001 (``python -m repro.analysis``).

        The same routing invariant is what keeps the reverse selector index
        exact: every installed selection change updates ``_selectors_of``
        here, in O(changed edges), before the recorders are notified.
        """
        for target in selected:
            if target not in previous:
                self._selectors_of.setdefault(target, set()).add(peer_id)
        for target in previous:
            if target not in selected:
                owners = self._selectors_of.get(target)
                if owners is not None:
                    owners.discard(peer_id)
                    if not owners:
                        del self._selectors_of[target]
        if not self._delta_recorders:
            return
        touched = {peer_id}
        touched.update(previous ^ selected)
        for recorder in self._delta_recorders:
            recorder.note_touch(touched)

    #: Thin alias: the notifier predates the public API and internal call
    #: sites (plus external consumers of the private name) keep working.
    _notify_selection_change = notify_selection_change

    def install_selections(self, results: Mapping[int, Iterable[int]]) -> bool:
        """Install a batch of computed selections; ``True`` if any changed.

        The single install fan-out both incremental round protocols end in:
        each entry replaces one peer's directed selection, and every actual
        change routes through :meth:`notify_selection_change` -- so the
        delta-stream contract (RPL001) and the reverse selector index hold
        per peer no matter how the batch was computed (per-peer loop,
        vectorised cohort install, or a mix).  Entries equal to the
        installed selection are skipped without notifying, matching the
        per-peer install loops this replaces; peers absent from ``results``
        are untouched.  Iteration is in ascending peer id for determinism.
        """
        changed = False
        for peer_id in sorted(results):
            selected = set(results[peer_id])
            previous = self._neighbours[peer_id]
            if selected != previous:
                self._neighbours[peer_id] = selected
                self.notify_selection_change(peer_id, previous, selected)
                changed = True
        return changed

    # ------------------------------------------------------------------
    # Knowledge sets and convergence
    # ------------------------------------------------------------------
    def _candidate_ids(self, peer_id: int, reachable: Iterable[int]) -> Set[int]:
        """Candidate ids of one peer given its bounded-hop reachability.

        The single place encoding the gossip-radius candidate semantics: a
        peer knows everything its announcements footprint covers, *plus* its
        bootstrap contacts (a joining peer always knows them even before any
        gossip round has run over the new links), and never itself.  Both the
        public :meth:`knowledge_set`, the full-sweep round and the
        incremental engine build candidate sets through here, so the
        semantics cannot drift between the paths.
        """
        known = set(reachable)
        known |= self._neighbours[peer_id]
        known.discard(peer_id)
        return known

    def knowledge_set(self, peer_id: int) -> List[PeerInfo]:
        """The candidate set ``I(P)`` of one peer under the current topology."""
        if peer_id not in self._peers:
            raise KeyError(f"unknown peer {peer_id}")
        if self._gossip_radius is None:
            return [info for other, info in self._peers.items() if other != peer_id]
        reachable = knowledge_sets(self.adjacency(), self._gossip_radius)[peer_id]
        return [
            self._peers[other]
            for other in sorted(self._candidate_ids(peer_id, reachable))
        ]

    def reselect_round(self) -> bool:
        """One synchronous full-sweep round; returns ``True`` if anything changed.

        Every peer recomputes its candidate set against the *pre-round*
        topology and applies the selection method; all updates are then
        installed at once.  Synchronous rounds make convergence deterministic
        and are the discrete-time counterpart of "periodically, every peer
        broadcasts its existence ... then selects its new overlay neighbours".

        This is the reference path the incremental engine is cross-checked
        against; running it rewrites every neighbour set, so any live engine
        state is discarded.  With an owned index under full knowledge, every
        selection is answered from the index instead of a materialised
        candidate list -- the indexed and scan sweeps install byte-identical
        neighbour sets (property-tested), so the cross-check contract holds
        either way.
        """
        index = self._selection_index()
        if index is not None:
            # The batched entry point is the one every supports_index method
            # guarantees (select's index= keyword is a convenience the
            # in-repo methods add on top).
            results = self._selection.select_many(
                list(self._peers.values()), {}, index=index
            )
            changed = False
            new_neighbours: Dict[int, Set[int]] = {}
            for peer_id in self._peers:
                selected = set(results[peer_id])
                new_neighbours[peer_id] = selected
                if selected != self._neighbours[peer_id]:
                    self._notify_selection_change(
                        peer_id, self._neighbours[peer_id], selected
                    )
                    changed = True
            self._neighbours = new_neighbours
            self.invalidate_engine()
            return changed
        if self._gossip_radius is None:
            candidates_by_peer = {
                peer_id: [info for other, info in self._peers.items() if other != peer_id]
                for peer_id in self._peers
            }
        else:
            reachable = knowledge_sets(self.adjacency(), self._gossip_radius)
            candidates_by_peer = {
                peer_id: [
                    self._peers[other]
                    for other in sorted(self._candidate_ids(peer_id, reachable[peer_id]))
                ]
                for peer_id in self._peers
            }

        changed = False
        new_neighbours: Dict[int, Set[int]] = {}
        for peer_id, candidates in candidates_by_peer.items():
            selected = set(self._selection.select(self._peers[peer_id], candidates))
            new_neighbours[peer_id] = selected
            if selected != self._neighbours[peer_id]:
                self._notify_selection_change(
                    peer_id, self._neighbours[peer_id], selected
                )
                changed = True
        self._neighbours = new_neighbours
        self.invalidate_engine()
        return changed

    def invalidate_engine(self) -> None:
        """Discard any live incremental-reselection engine state.

        The engine's dirty set and ``last_candidates`` describe one
        convergence trajectory; whenever that trajectory is abandoned --
        a full sweep rewrote every neighbour set, or a convergence aborted
        with :class:`ConvergenceError` -- the engine must be dropped so the
        next incremental convergence rebootstraps from an all-dirty state.
        Callers that catch :class:`ConvergenceError` and resume are
        required (reprolint RPL007) to call this before their next
        converge.
        """
        self._engine = None

    def converge(self, *, max_rounds: int = 50, incremental: bool = False) -> int:
        """Run reselection rounds until a fixed point; returns the round count.

        With ``incremental=True`` the rounds are driven by the dirty-set
        engine (only peers whose candidate sets may have changed are
        re-selected); otherwise every round is a full sweep.  Both paths
        reach the identical fixed point -- the incremental one merely skips
        provably unchanged work, so it may report fewer rounds.

        Raises :class:`ConvergenceError` if the topology is still changing
        after ``max_rounds`` rounds.  On that exception path the incremental
        engine is invalidated: the abandoned engine holds mid-trajectory
        state (a consumed dirty set, ``last_candidates`` describing a
        topology the caller may now mutate or abandon), so the next
        incremental convergence rebootstraps from an all-dirty state instead
        of resuming from it.
        """
        if max_rounds < 1:
            raise ValueError("max_rounds must be at least 1")
        if incremental:
            if self._engine is None:
                self._engine = IncrementalReselectionEngine(
                    self, vectorised=self._vectorised_rounds
                )
            engine = self._engine
            for round_index in range(1, max_rounds + 1):
                if not engine.run_round():
                    return round_index
            self.invalidate_engine()
            raise ConvergenceError(max_rounds)
        for round_index in range(1, max_rounds + 1):
            if not self.reselect_round():
                return round_index
        raise ConvergenceError(max_rounds)

    def insert_and_converge(
        self,
        peer: PeerInfo,
        *,
        bootstrap: Optional[Iterable[int]] = None,
        max_rounds: int = 50,
        incremental: bool = False,
    ) -> int:
        """Insert one peer and let the overlay converge (the paper's procedure)."""
        self.add_peer(peer, bootstrap=bootstrap)
        return self.converge(max_rounds=max_rounds, incremental=incremental)

    def remove_and_converge(
        self, peer_id: int, *, max_rounds: int = 50, incremental: bool = False
    ) -> int:
        """Remove one peer and let the overlay converge."""
        self.remove_peer(peer_id)
        if not self._peers:
            return 0
        return self.converge(max_rounds=max_rounds, incremental=incremental)

    def apply_batch(
        self,
        events: Iterable[BatchEvent],
        *,
        incremental: bool = True,
        max_rounds: int = 50,
    ) -> int:
        """Apply one epoch of membership events, then converge **once**.

        This is the batched-epoch counterpart of the per-event
        :meth:`insert_and_converge` / :meth:`remove_and_converge` loop: every
        event seeds the incremental engine (``note_join`` / ``note_leave``)
        and the delta recorders up front, and the overlay pays a single
        convergence for the whole batch instead of one per event.  Under full
        knowledge the post-convergence fixed point is a function of the
        surviving population alone, so the batched path lands on the exact
        topology the one-event-at-a-time procedure reaches (the hypothesis
        equivalence tests assert this, including byte-identical maintained
        stability trees).

        Events apply in order, so a join may bootstrap off a peer that
        joined earlier in the same batch, and a leave followed by a rejoin
        of the same id is well-formed.  The delta-stream contract is
        preserved per *event*, not per batch: a join+leave inside the epoch
        cancels in the drained delta, a leave+rejoin appears as both, and
        every bootstrap edge notifies both endpoints -- which is what lets a
        :class:`~repro.multicast.incremental.StabilityTreeMaintainer`
        ``refresh()`` once per epoch instead of once per event.

        Accepts :class:`BatchJoin` / :class:`BatchLeave` / :class:`BatchMove`
        records or the shorthands ``PeerInfo`` (join, default bootstrap) and
        ``int`` (leave).  Returns the round count of the single convergence
        (``0`` when the batch was empty or emptied the overlay).
        """
        applied = False
        for event in events:
            if isinstance(event, BatchJoin):
                self.add_peer(event.peer, bootstrap=event.bootstrap)
            elif isinstance(event, BatchLeave):
                self.remove_peer(event.peer_id)
            elif isinstance(event, BatchMove):
                self.move_peer(event.peer_id, event.coordinates)
            elif isinstance(event, PeerInfo):
                self.add_peer(event)
            elif isinstance(event, int):
                self.remove_peer(event)
            else:
                raise TypeError(
                    f"unsupported batch event {event!r}; expected BatchJoin, "
                    "BatchLeave, BatchMove, PeerInfo or a peer id"
                )
            applied = True
        if not applied or not self._peers:
            return 0
        return self.converge(max_rounds=max_rounds, incremental=incremental)

    # ------------------------------------------------------------------
    # Bulk builders
    # ------------------------------------------------------------------
    def _rebuild_selectors(self) -> None:
        """Recompute the reverse selector index from the neighbour map.

        Bulk paths that install a whole topology at once (the equilibrium
        builder) rewrite ``_neighbours`` without routing the per-peer
        changes through :meth:`notify_selection_change`; one O(edges) pass
        restores the index.
        """
        self._selectors_of = {}
        for peer_id, neighbour_ids in self._neighbours.items():
            for target in neighbour_ids:
                self._selectors_of.setdefault(target, set()).add(peer_id)

    @classmethod
    def build_equilibrium(
        cls,
        peers: Sequence[PeerInfo],
        selection: NeighbourSelectionMethod,
        *,
        use_index: Optional[bool] = None,
        columnar: Optional[bool] = None,
    ) -> "OverlayNetwork":
        """Full-knowledge equilibrium overlay for a fixed population.

        This is the topology the paper's gossip process converges to when
        every peer has heard about every other peer; it is also the fast path
        used by the figure benchmarks.

        The population is validated the same way :meth:`add_peer` validates a
        joining peer: duplicate ids and mixed identifier dimensions raise
        :class:`ValueError` up front instead of crashing deep inside the
        vectorised equilibrium code.
        """
        overlay = cls(
            selection, gossip_radius=None, use_index=use_index, columnar=columnar
        )
        dimension: Optional[int] = None
        for peer in peers:
            if peer.peer_id in overlay._peers:
                raise ValueError(f"duplicate peer id {peer.peer_id}")
            if dimension is None:
                dimension = peer.dimension
            else:
                _validate_dimension(peer, dimension)
            overlay._peers[peer.peer_id] = peer
            if overlay._id_rows is not None:
                overlay._id_rows.mark_alive(peer.peer_id)
            if overlay._index is not None:
                overlay._index.insert(peer.peer_id, peer.coordinates)
        equilibrium = selection.compute_equilibrium(peers)
        overlay._neighbours = {
            peer_id: set(equilibrium.get(peer_id, set())) for peer_id in overlay._peers
        }
        overlay._rebuild_selectors()
        return overlay

    @classmethod
    def build_incremental(
        cls,
        peers: Sequence[PeerInfo],
        selection: NeighbourSelectionMethod,
        *,
        gossip_radius: Optional[int] = None,
        max_rounds: int = 50,
        rng: Optional[random.Random] = None,
        incremental: bool = True,
        use_index: Optional[bool] = None,
        columnar: Optional[bool] = None,
        vectorised_rounds: Optional[bool] = None,
    ) -> "OverlayNetwork":
        """Insert peers one at a time, converging after every insertion.

        This follows the paper's experimental procedure literally ("the peers
        were inserted one by one in the overlay (the overlay was allowed to
        converge after every insertion)").  Bootstrap contacts are chosen
        uniformly at random among the peers already present (deterministic
        when ``rng`` is seeded).

        Per-insertion convergence uses the incremental engine by default --
        the two paths produce identical topologies and the dirty-set path is
        what keeps churn-scale runs (``N = 1000``) tractable; pass
        ``incremental=False`` to cross-check against full sweeps.
        """
        generator = rng if rng is not None else random.Random(0)
        overlay = cls(
            selection,
            gossip_radius=gossip_radius,
            use_index=use_index,
            columnar=columnar,
            vectorised_rounds=vectorised_rounds,
        )
        for peer in peers:
            if overlay.peer_count == 0:
                overlay.add_peer(peer, bootstrap=())
                continue
            bootstrap = {generator.choice(overlay.peer_ids)}
            overlay.insert_and_converge(
                peer,
                bootstrap=bootstrap,
                max_rounds=max_rounds,
                incremental=incremental,
            )
        return overlay
