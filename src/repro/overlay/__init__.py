"""P2P overlay substrate: peers, gossip, neighbour selection and topology.

The overlay is the substrate both multicast constructions run on.  Peers are
points of a virtual coordinate space (:mod:`repro.overlay.peer`), learn about
each other through bounded-hop gossip (:mod:`repro.overlay.gossip`), choose
their neighbours with a selection method (:mod:`repro.overlay.selection`) and
the resulting topology is managed and measured by
:mod:`repro.overlay.network` and :mod:`repro.overlay.topology`.
"""

from repro.overlay.peer import NetworkAddress, PeerInfo, make_peer
from repro.overlay.gossip import (
    AnnouncementStore,
    ExistenceAnnouncement,
    knowledge_sets,
    peers_within_hops,
)
from repro.overlay.network import (
    BatchJoin,
    BatchLeave,
    BatchMove,
    ConvergenceError,
    OverlayNetwork,
)
from repro.overlay.topology import TopologySnapshot, undirected_closure
from repro.overlay.selection import (
    EmptyRectangleSelection,
    HyperplanesSelection,
    KClosestSelection,
    NeighbourSelectionMethod,
    OrthogonalHyperplanesSelection,
    SignCoefficientHyperplanesSelection,
    available_methods,
    make_selection_method,
)

__all__ = [
    "NetworkAddress",
    "PeerInfo",
    "make_peer",
    "ExistenceAnnouncement",
    "AnnouncementStore",
    "peers_within_hops",
    "knowledge_sets",
    "OverlayNetwork",
    "ConvergenceError",
    "BatchJoin",
    "BatchLeave",
    "BatchMove",
    "TopologySnapshot",
    "undirected_closure",
    "NeighbourSelectionMethod",
    "HyperplanesSelection",
    "OrthogonalHyperplanesSelection",
    "SignCoefficientHyperplanesSelection",
    "KClosestSelection",
    "EmptyRectangleSelection",
    "available_methods",
    "make_selection_method",
]
