"""Figure 1 (b): longest root-to-leaf path of the Section 2 multicast tree.

Setup (from the paper): the same overlays as Figure 1 (a) (``N = 1000``,
empty-rectangle selection, ``D = 2..5``); a multicast tree is constructed
from *every* peer as initiator; for every session the longest root-to-leaf
path is computed, and the panel reports the maximum and the average of that
quantity over the ``N`` sessions.

Besides the two plotted series, this driver verifies the two textual claims
attached to the construction: each session sends exactly ``N - 1`` messages
(equivalently, reaches every peer with no duplicates), and the per-peer tree
degree never exceeds ``2^D`` children.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.experiments import paper_data
from repro.experiments.common import build_section2_topology, derive_seed, sample_roots
from repro.experiments.config import ExperimentScale, resolve_scale
from repro.metrics.paths import path_statistics
from repro.metrics.reporting import SeriesComparison, compare_series, format_table
from repro.multicast.space_partition import SpacePartitionTreeBuilder

__all__ = ["Figure1bRow", "Figure1bResult", "run_figure1b"]


@dataclass(frozen=True)
class Figure1bRow:
    """One bar group of Figure 1 (b): path statistics for one dimension."""

    dimension: int
    peer_count: int
    sessions: int
    maximum_longest_path: int
    average_longest_path: float
    all_sessions_sent_n_minus_1_messages: bool
    all_sessions_respected_degree_bound: bool


@dataclass(frozen=True)
class Figure1bResult:
    """All rows of the panel plus the shape comparison against the paper."""

    scale_name: str
    rows: Tuple[Figure1bRow, ...]

    def to_table(self) -> str:
        """Plain-text table in the panel's layout (one row per dimension)."""
        return format_table(
            [
                "D",
                "peers",
                "sessions",
                "max longest path",
                "avg longest path",
                "N-1 msgs",
                "degree<=2^D",
            ],
            [
                [
                    row.dimension,
                    row.peer_count,
                    row.sessions,
                    row.maximum_longest_path,
                    row.average_longest_path,
                    row.all_sessions_sent_n_minus_1_messages,
                    row.all_sessions_respected_degree_bound,
                ]
                for row in self.rows
            ],
        )

    def compare_with_paper(self) -> Dict[str, SeriesComparison]:
        """Shape comparison of both series against the digitized paper values."""
        rows = [
            row
            for row in self.rows
            if row.dimension in paper_data.FIGURE_1B_MAX_LONGEST_PATH
        ]
        dimensions = [row.dimension for row in rows]
        return {
            "maximum_longest_path": compare_series(
                dimensions,
                [row.maximum_longest_path for row in rows],
                [paper_data.FIGURE_1B_MAX_LONGEST_PATH[d] for d in dimensions],
            ),
            "average_longest_path": compare_series(
                dimensions,
                [row.average_longest_path for row in rows],
                [paper_data.FIGURE_1B_AVG_LONGEST_PATH[d] for d in dimensions],
            ),
        }


def run_figure1b(scale: Optional[ExperimentScale] = None) -> Figure1bResult:
    """Run the Figure 1 (b) sweep at the given (or environment-selected) scale."""
    resolved = scale if scale is not None else resolve_scale()
    builder = SpacePartitionTreeBuilder()
    rows: List[Figure1bRow] = []
    for dimension in resolved.section2_dimensions:
        seed = derive_seed(resolved.seed, 1, dimension)
        topology = build_section2_topology(resolved.peer_count, dimension, seed=seed)
        roots = sample_roots(
            topology.peers.keys(),
            resolved.root_sample,
            seed=derive_seed(resolved.seed, 2, dimension),
        )
        results = builder.build_from_every_root(topology, roots=roots)

        trees = [result.tree for result in results.values()]
        stats = path_statistics(trees)
        expected_messages = topology.peer_count - 1
        messages_ok = all(
            result.messages_sent == expected_messages
            and result.duplicate_deliveries == 0
            and result.delivered_everywhere
            for result in results.values()
        )
        degree_bound = 2**dimension
        degree_ok = all(
            max(len(tree.children(node)) for node in tree.nodes()) <= degree_bound
            for tree in trees
        )
        rows.append(
            Figure1bRow(
                dimension=dimension,
                peer_count=resolved.peer_count,
                sessions=len(roots),
                maximum_longest_path=stats.maximum,
                average_longest_path=stats.average,
                all_sessions_sent_n_minus_1_messages=messages_ok,
                all_sessions_respected_degree_bound=degree_ok,
            )
        )
    return Figure1bResult(scale_name=resolved.name, rows=tuple(rows))
