"""Experiment drivers: one module per figure panel of the paper, plus ablations.

Each driver builds the paper's workload at a configurable scale
(:mod:`repro.experiments.config`), runs the relevant construction and returns
a result object with the measured series, a plain-text table and a shape
comparison against the values digitized from the paper's Figure 1
(:mod:`repro.experiments.paper_data`).  The benchmark harness in
``benchmarks/`` is a thin timing wrapper around these drivers.
"""

from repro.experiments.config import SCALES, ExperimentScale, resolve_scale
from repro.experiments.figure1a import Figure1aResult, Figure1aRow, run_figure1a
from repro.experiments.figure1b import Figure1bResult, Figure1bRow, run_figure1b
from repro.experiments.figure1c import Figure1cResult, Figure1cRow, run_figure1c
from repro.experiments.figure1d_e import (
    StabilitySweepResult,
    StabilitySweepRow,
    run_figure1d,
    run_figure1e,
    run_stability_sweep,
)
from repro.experiments.ablations import (
    AblationResult,
    BaselineComparisonRow,
    ChurnRow,
    PickStrategyRow,
    TraceConvergenceRow,
    run_baseline_comparison,
    run_churn_ablation,
    run_pick_strategy_ablation,
    run_trace_convergence_ablation,
)
from repro.experiments.trace_runner import (
    EpochSample,
    TraceRunner,
    TraceRunResult,
    TraceScenarioRow,
    run_trace_scenarios,
)

__all__ = [
    "ExperimentScale",
    "SCALES",
    "resolve_scale",
    "Figure1aRow",
    "Figure1aResult",
    "run_figure1a",
    "Figure1bRow",
    "Figure1bResult",
    "run_figure1b",
    "Figure1cRow",
    "Figure1cResult",
    "run_figure1c",
    "StabilitySweepRow",
    "StabilitySweepResult",
    "run_stability_sweep",
    "run_figure1d",
    "run_figure1e",
    "AblationResult",
    "BaselineComparisonRow",
    "PickStrategyRow",
    "ChurnRow",
    "run_baseline_comparison",
    "run_pick_strategy_ablation",
    "run_churn_ablation",
    "TraceConvergenceRow",
    "run_trace_convergence_ablation",
    "EpochSample",
    "TraceRunner",
    "TraceRunResult",
    "TraceScenarioRow",
    "run_trace_scenarios",
]
