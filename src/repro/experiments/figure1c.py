"""Figure 1 (c): overlay degree versus peer count at ``D = 2``.

Setup (from the paper): two-dimensional random identifiers, the
empty-rectangle overlay, and peer counts ``N = 100 .. 5000``.  The panel
plots the maximum and average topology degree together with the reference
curve ``10 * log10(N)``; the paper's observation is that both measured
series appear proportional to ``log(N)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.experiments import paper_data
from repro.experiments.common import build_section2_topology, derive_seed
from repro.experiments.config import ExperimentScale, resolve_scale
from repro.metrics.degree import degree_statistics
from repro.metrics.reporting import SeriesComparison, compare_series, format_table

__all__ = ["Figure1cRow", "Figure1cResult", "run_figure1c", "DIMENSION"]

DIMENSION = 2


@dataclass(frozen=True)
class Figure1cRow:
    """One x-position of Figure 1 (c): degree statistics for one peer count."""

    peer_count: int
    maximum_degree: int
    average_degree: float
    log_reference: float  # the paper's "10 * base-10 logarithm of N" curve


@dataclass(frozen=True)
class Figure1cResult:
    """All rows of the panel plus shape comparisons."""

    scale_name: str
    rows: Tuple[Figure1cRow, ...]

    def to_table(self) -> str:
        """Plain-text table in the panel's layout (one row per peer count)."""
        return format_table(
            ["N", "max degree", "avg degree", "10*log10(N)"],
            [
                [row.peer_count, row.maximum_degree, row.average_degree, row.log_reference]
                for row in self.rows
            ],
        )

    def compare_with_log_growth(self) -> SeriesComparison:
        """Shape comparison of the measured maximum degree against ``10*log10(N)``.

        This is the claim the paper actually makes for the panel: the degree
        appears proportional to ``log(N)``.
        """
        return compare_series(
            [row.peer_count for row in self.rows],
            [row.maximum_degree for row in self.rows],
            [row.log_reference for row in self.rows],
        )

    def compare_with_paper(self) -> Dict[str, SeriesComparison]:
        """Shape comparison against the digitized paper series (shared N values only)."""
        rows = [row for row in self.rows if row.peer_count in paper_data.FIGURE_1C_MAX_DEGREE]
        if not rows:
            return {}
        counts = [row.peer_count for row in rows]
        return {
            "maximum_degree": compare_series(
                counts,
                [row.maximum_degree for row in rows],
                [paper_data.FIGURE_1C_MAX_DEGREE[n] for n in counts],
            ),
            "average_degree": compare_series(
                counts,
                [row.average_degree for row in rows],
                [paper_data.FIGURE_1C_AVG_DEGREE[n] for n in counts],
            ),
        }


def run_figure1c(scale: Optional[ExperimentScale] = None) -> Figure1cResult:
    """Run the Figure 1 (c) sweep at the given (or environment-selected) scale."""
    resolved = scale if scale is not None else resolve_scale()
    rows: List[Figure1cRow] = []
    for peer_count in resolved.scaling_peer_counts:
        seed = derive_seed(resolved.seed, 3, peer_count)
        topology = build_section2_topology(peer_count, DIMENSION, seed=seed)
        stats = degree_statistics(topology)
        rows.append(
            Figure1cRow(
                peer_count=peer_count,
                maximum_degree=stats.maximum,
                average_degree=stats.average,
                log_reference=10.0 * math.log10(peer_count),
            )
        )
    return Figure1cResult(scale_name=resolved.name, rows=tuple(rows))
