"""Ablations: design choices the paper states but does not quantify.

Three ablations complement the figure reproductions (ids A1-A3 in
DESIGN.md):

* **Baseline comparison (A1)** -- the introduction motivates the work with
  "existing solutions send many messages"; this ablation measures the
  construction message cost and tree quality of the Section 2 algorithm
  against flooding, a BFS tree, a random spanning tree and sequential
  unicast on the same overlay.
* **Pick strategy (A2)** -- Section 2 picks the *median*-distance neighbour
  of each orthant region; this ablation compares median against nearest,
  farthest and random picks.
* **Churn (A3)** -- Section 3 claims departures never disconnect the tree;
  this ablation replays lifetime-ordered departures against the stability
  tree and against lifetime-oblivious alternatives and counts disconnection
  events.
* **Overlay churn (A4)** -- the paper's churn experiments replay departures
  only against the multicast *tree*; this ablation replays joins and
  lifetime-ordered departures against the *overlay* itself, converging after
  every membership event on the incremental reselection engine (the fast
  path that makes per-event convergence affordable), and reports the
  reconvergence effort and whether the overlay ever disconnects.  The
  connectivity verdict comes from an
  :class:`repro.multicast.incremental.IncrementalConnectivity` tracker fed
  by the overlay delta stream -- no per-event graph reconstruction; edge
  additions fold into the union-find structure on the fly and deletion
  batches trigger at most one epoch rebuild per query.
* **Message replay (A5)** -- the message-level simulator replays the same
  join/leave churn twice, once reapplying the neighbour selection method on
  every reselect tick and once with the dirty-set tick of
  :class:`repro.simulation.protocol.PeerProcess`; the rows show both runs
  settle to the identical topology while the dirty-set run invokes the
  selection method a fraction as often -- the measurement behind trusting
  the fast path in the protocol-faithful experiments.
* **Trace convergence (A7)** -- the batched-epoch path
  (:meth:`repro.overlay.network.OverlayNetwork.apply_batch`, one convergence
  and one tree ``refresh()`` per epoch) against the per-event loop on the
  same Poisson churn trace: both arms must land on the identical overlay
  fixed point and byte-identical maintained stability tree, while the
  per-epoch arm pays a fraction of the engine rounds -- the amortisation
  that makes long churn traces at ``N >= 1000`` tractable.
* **Network model (A8)** -- the message-level replay under the real-network
  :class:`~repro.simulation.netmodel.LinkModel`: the same seeded population
  is settled under the ideal constant-latency network and under arms with
  per-link latency distributions, i.i.d. loss and bandwidth queueing.  The
  rows report the traffic (messages, bytes, retransmissions of the reliable
  notices), whether the settled overlay still reaches the full-knowledge
  analytic fixed point, and the per-peer dissemination-latency percentiles
  of a probe down the maintained Section 3 tree -- the protocol's
  loss-tolerance story, quantified.
* **Tree maintenance (A6)** -- the event-driven multicast layer
  (:class:`repro.multicast.incremental.StabilityTreeMaintainer`) against the
  snapshot-batch path: the same churn trace is driven through both, the
  event-driven arm repairing the stability tree in place (one bootstrap
  rebuild, then single edge re-parents with streaming metrics) while the
  snapshot arm rebuilds :func:`repro.multicast.stability.build_stability_tree`
  per event.  The rows assert the two stay byte-identical at every event and
  report the repair traffic, the rebuild counts, the wall-clock of each arm
  and a "tree health over time" summary drawn from the streaming samples.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.experiments.common import (
    build_section2_topology,
    build_section3_topology,
    derive_seed,
    sample_roots,
)
from repro.experiments.config import ExperimentScale, resolve_scale
from repro.experiments.trace_runner import TraceRunner
from repro.metrics.paths import path_statistics
from repro.metrics.reporting import format_table
from repro.metrics.trees import tree_metrics
from repro.multicast.baselines import (
    bfs_tree,
    flood_multicast,
    random_spanning_tree,
    sequential_unicast_tree,
)
from repro.multicast.dissemination import simulate_departures
from repro.multicast.incremental import OverlayConnectivityFeed, StabilityTreeMaintainer
from repro.multicast.space_partition import PickStrategy, SpacePartitionTreeBuilder
from repro.multicast.stability import StabilityTreeBuilder
from repro.multicast.tree import MulticastTree
from repro.overlay.network import OverlayNetwork
from repro.overlay.selection.empty_rectangle import EmptyRectangleSelection
from repro.overlay.selection.orthogonal import OrthogonalHyperplanesSelection
from repro.simulation.netmodel import (
    ConstantLatency,
    LinkModel,
    LognormalLatency,
    UniformLatency,
)
from repro.simulation.runner import run_dissemination_probe, run_gossip_overlay
from repro.workloads.churn import interleaved_join_leave_schedule
from repro.workloads.peers import generate_peers, generate_peers_with_lifetimes
from repro.workloads.traces import poisson_trace

__all__ = [
    "BaselineComparisonRow",
    "PickStrategyRow",
    "ChurnRow",
    "OverlayChurnRow",
    "MessageReplayRow",
    "NetworkModelRow",
    "TreeMaintenanceRow",
    "TraceConvergenceRow",
    "AblationResult",
    "run_baseline_comparison",
    "run_pick_strategy_ablation",
    "run_churn_ablation",
    "run_overlay_churn_ablation",
    "run_message_replay_ablation",
    "run_network_model_ablation",
    "run_tree_maintenance_ablation",
    "run_trace_convergence_ablation",
]


@dataclass(frozen=True)
class BaselineComparisonRow:
    """Construction cost and tree quality of one strategy on one overlay."""

    strategy: str
    dimension: int
    peer_count: int
    construction_messages: int
    duplicate_deliveries: int
    tree_height: int
    maximum_tree_degree: int


@dataclass(frozen=True)
class PickStrategyRow:
    """Path statistics of the Section 2 construction under one pick strategy."""

    strategy: str
    dimension: int
    sessions: int
    maximum_longest_path: int
    average_longest_path: float


@dataclass(frozen=True)
class ChurnRow:
    """Departure-robustness of one tree-building strategy."""

    strategy: str
    dimension: int
    k: int
    peer_count: int
    departures: int
    disconnection_events: int
    orphaned_peer_events: int


@dataclass(frozen=True)
class OverlayChurnRow:
    """Overlay-level reconvergence effort during one churn phase."""

    phase: str
    dimension: int
    k: int
    events: int
    total_rounds: int
    maximum_rounds_per_event: int
    disconnected_events: int
    connectivity_rebuilds: int


@dataclass(frozen=True)
class NetworkModelRow:
    """One network-model arm of ablation A8."""

    arm: str
    dimension: int
    peers: int
    network: str
    messages_sent: int
    messages_lost: int
    retransmissions: int
    bytes_sent: int
    equilibrium_match: bool
    probe_p50_ms: float
    probe_p99_ms: float
    probe_unreached: int
    wall_seconds: float


@dataclass(frozen=True)
class TreeMaintenanceRow:
    """Event-driven tree maintenance versus snapshot rebuilds, one churn phase."""

    phase: str
    dimension: int
    k: int
    events: int
    reparent_operations: int
    full_rebuilds: int
    snapshot_rebuilds: int
    identical_events: int
    maximum_height: int
    maximum_degree: int
    single_tree_events: int
    event_driven_seconds: float
    snapshot_seconds: float

    @property
    def identical(self) -> bool:
        """``True`` when both arms agreed at every event of the phase."""
        return self.identical_events == self.events


@dataclass(frozen=True)
class TraceConvergenceRow:
    """Cost of one convergence cadence over the same churn trace."""

    arm: str
    dimension: int
    epochs: int
    events: int
    engine_rounds: int
    convergences: int
    reparent_operations: int
    connectivity_rebuilds: int
    wall_seconds: float
    identical: bool


@dataclass(frozen=True)
class MessageReplayRow:
    """Cost of one message-level replay mode over the same churn schedule."""

    mode: str
    dimension: int
    peers: int
    departures: int
    reselect_ticks: int
    selection_invocations: int
    additive_updates: int
    skipped_ticks: int
    wall_seconds: float
    identical_topology: bool


@dataclass(frozen=True)
class AblationResult:
    """Rows of one ablation with a generic table view."""

    name: str
    headers: Tuple[str, ...]
    rows: Tuple[Tuple[object, ...], ...]

    def to_table(self) -> str:
        """Plain-text table of the ablation's rows."""
        return format_table(list(self.headers), [list(row) for row in self.rows])


def run_baseline_comparison(
    scale: Optional[ExperimentScale] = None,
    *,
    dimension: int = 2,
) -> Tuple[List[BaselineComparisonRow], AblationResult]:
    """A1: Section 2 construction versus flooding / BFS / random / unicast."""
    resolved = scale if scale is not None else resolve_scale()
    seed = derive_seed(resolved.seed, 10, dimension)
    topology = build_section2_topology(resolved.peer_count, dimension, seed=seed)
    root = min(topology.peers)
    peer_count = topology.peer_count

    rows: List[BaselineComparisonRow] = []

    construction = SpacePartitionTreeBuilder().build(topology, root)
    rows.append(
        BaselineComparisonRow(
            strategy="space-partition",
            dimension=dimension,
            peer_count=peer_count,
            construction_messages=construction.messages_sent,
            duplicate_deliveries=construction.duplicate_deliveries,
            tree_height=construction.tree.height(),
            maximum_tree_degree=construction.tree.maximum_degree(),
        )
    )

    flood = flood_multicast(topology, root)
    rows.append(
        BaselineComparisonRow(
            strategy="flooding",
            dimension=dimension,
            peer_count=peer_count,
            construction_messages=flood.messages_sent,
            duplicate_deliveries=flood.duplicate_deliveries,
            tree_height=flood.tree.height(),
            maximum_tree_degree=flood.tree.maximum_degree(),
        )
    )

    for name, tree in (
        ("bfs-tree", bfs_tree(topology, root)),
        ("random-spanning-tree", random_spanning_tree(topology, root, rng=random.Random(seed))),
        ("sequential-unicast", sequential_unicast_tree(topology, root)),
    ):
        # Building these trees decentralizedly would require flooding-level
        # message counts; attribute the flooding cost to BFS/random and the
        # star cost (N - 1 direct sends) to sequential unicast.
        messages = flood.messages_sent if name != "sequential-unicast" else peer_count - 1
        rows.append(
            BaselineComparisonRow(
                strategy=name,
                dimension=dimension,
                peer_count=peer_count,
                construction_messages=messages,
                duplicate_deliveries=0,
                tree_height=tree.height(),
                maximum_tree_degree=tree.maximum_degree(),
            )
        )

    table = AblationResult(
        name="baseline-comparison",
        headers=("strategy", "D", "peers", "messages", "duplicates", "height", "max degree"),
        rows=tuple(
            (
                row.strategy,
                row.dimension,
                row.peer_count,
                row.construction_messages,
                row.duplicate_deliveries,
                row.tree_height,
                row.maximum_tree_degree,
            )
            for row in rows
        ),
    )
    return rows, table


def run_pick_strategy_ablation(
    scale: Optional[ExperimentScale] = None,
    *,
    dimension: int = 2,
) -> Tuple[List[PickStrategyRow], AblationResult]:
    """A2: median versus nearest / farthest / random region picks."""
    resolved = scale if scale is not None else resolve_scale()
    seed = derive_seed(resolved.seed, 11, dimension)
    topology = build_section2_topology(resolved.peer_count, dimension, seed=seed)
    roots = sample_roots(
        topology.peers.keys(), resolved.root_sample, seed=derive_seed(resolved.seed, 12, dimension)
    )

    rows: List[PickStrategyRow] = []
    for strategy in PickStrategy.ALL:
        builder = SpacePartitionTreeBuilder(
            pick_strategy=strategy, rng=random.Random(seed)
        )
        results = builder.build_from_every_root(topology, roots=roots)
        stats = path_statistics(result.tree for result in results.values())
        rows.append(
            PickStrategyRow(
                strategy=strategy,
                dimension=dimension,
                sessions=len(roots),
                maximum_longest_path=stats.maximum,
                average_longest_path=stats.average,
            )
        )

    table = AblationResult(
        name="pick-strategy",
        headers=("strategy", "D", "sessions", "max longest path", "avg longest path"),
        rows=tuple(
            (
                row.strategy,
                row.dimension,
                row.sessions,
                row.maximum_longest_path,
                row.average_longest_path,
            )
            for row in rows
        ),
    )
    return rows, table


def run_overlay_churn_ablation(
    scale: Optional[ExperimentScale] = None,
    *,
    dimension: int = 3,
    k: int = 2,
) -> Tuple[List[OverlayChurnRow], AblationResult]:
    """A4: per-event overlay reconvergence under joins and departures.

    Every peer joins one at a time and the overlay converges after every
    join (the paper's insertion procedure); then peers depart in lifetime
    order with the overlay reconverging after every departure.  All
    convergence runs on the incremental reselection engine -- the churn loop
    this ablation exists to exercise -- and the row records how many
    reselection rounds the engine needed and whether the overlay was ever
    observed disconnected after settling.  The connectivity check runs on
    the delta-fed :class:`IncrementalConnectivity` tracker, so no graph is
    reconstructed inside the per-event loop; the row also reports how many
    epoch rebuilds the deletion batches actually triggered.
    """
    resolved = scale if scale is not None else resolve_scale()
    seed = derive_seed(resolved.seed, 14, dimension, k)
    peers = generate_peers_with_lifetimes(resolved.peer_count, dimension, seed=seed)
    rng = random.Random(seed)
    overlay = OverlayNetwork(OrthogonalHyperplanesSelection(k=k))
    feed = OverlayConnectivityFeed(overlay)

    rows: List[OverlayChurnRow] = []
    join_rounds: List[int] = []
    join_disconnected = 0
    for peer in peers:
        if overlay.peer_count == 0:
            overlay.add_peer(peer, bootstrap=())
            feed.sync()
            continue
        bootstrap = {rng.choice(overlay.peer_ids)}
        join_rounds.append(
            overlay.insert_and_converge(peer, bootstrap=bootstrap, incremental=True)
        )
        if not feed.is_connected():
            join_disconnected += 1
    join_rebuilds = feed.tracker.rebuilds
    rows.append(
        OverlayChurnRow(
            phase="join",
            dimension=dimension,
            k=k,
            events=len(join_rounds),
            total_rounds=sum(join_rounds),
            maximum_rounds_per_event=max(join_rounds, default=0),
            disconnected_events=join_disconnected,
            connectivity_rebuilds=join_rebuilds,
        )
    )

    departure_order = sorted(
        peers, key=lambda peer: (peer.lifetime, peer.peer_id)
    )
    leave_rounds: List[int] = []
    leave_disconnected = 0
    for peer in departure_order:
        leave_rounds.append(overlay.remove_and_converge(peer.peer_id, incremental=True))
        if overlay.peer_count > 1 and not feed.is_connected():
            leave_disconnected += 1
    # The last one or two departures skip the connectivity query (a 0/1-peer
    # overlay is trivially connected); fold them in so the tracker mirrors
    # the final overlay state and the rebuild count covers every event.
    feed.sync()
    rows.append(
        OverlayChurnRow(
            phase="leave",
            dimension=dimension,
            k=k,
            events=len(leave_rounds),
            total_rounds=sum(leave_rounds),
            maximum_rounds_per_event=max(leave_rounds, default=0),
            disconnected_events=leave_disconnected,
            connectivity_rebuilds=feed.tracker.rebuilds - join_rebuilds,
        )
    )

    table = AblationResult(
        name="overlay-churn",
        headers=(
            "phase",
            "D",
            "K",
            "events",
            "rounds",
            "max rounds",
            "disconnected",
            "uf rebuilds",
        ),
        rows=tuple(
            (
                row.phase,
                row.dimension,
                row.k,
                row.events,
                row.total_rounds,
                row.maximum_rounds_per_event,
                row.disconnected_events,
                row.connectivity_rebuilds,
            )
            for row in rows
        ),
    )
    return rows, table


def run_churn_ablation(
    scale: Optional[ExperimentScale] = None,
    *,
    dimension: int = 3,
    k: int = 2,
    procedure: str = "equilibrium",
) -> Tuple[List[ChurnRow], AblationResult]:
    """A3: lifetime-ordered departures against stability and oblivious trees.

    ``procedure="insertion"`` builds the underlying overlay with the
    paper-literal insert-one-converge loop (on the incremental engine)
    instead of the direct equilibrium jump.
    """
    resolved = scale if scale is not None else resolve_scale()
    seed = derive_seed(resolved.seed, 13, dimension, k)
    topology = build_section3_topology(
        resolved.peer_count, dimension, k, seed=seed, procedure=procedure
    )
    peer_count = topology.peer_count

    lifetimes = {
        peer_id: (info.lifetime if info.lifetime is not None else info.coordinates[0])
        for peer_id, info in topology.peers.items()
    }
    departure_order = sorted(lifetimes, key=lifetimes.get)

    rows: List[ChurnRow] = []

    stability_tree = StabilityTreeBuilder().build(topology).to_multicast_tree()
    candidates: List[Tuple[str, MulticastTree]] = [("stability", stability_tree)]

    longest_lived = departure_order[-1]
    candidates.append(("bfs-from-longest-lived", bfs_tree(topology, longest_lived)))
    candidates.append(
        (
            "random-spanning-tree",
            random_spanning_tree(topology, longest_lived, rng=random.Random(seed)),
        )
    )

    for name, tree in candidates:
        report = simulate_departures(tree, departure_order)
        rows.append(
            ChurnRow(
                strategy=name,
                dimension=dimension,
                k=k,
                peer_count=peer_count,
                departures=report.departures,
                disconnection_events=report.non_leaf_departures,
                orphaned_peer_events=report.orphaned_peer_events,
            )
        )

    table = AblationResult(
        name="churn",
        headers=("strategy", "D", "K", "peers", "departures", "disconnections", "orphaned"),
        rows=tuple(
            (
                row.strategy,
                row.dimension,
                row.k,
                row.peer_count,
                row.departures,
                row.disconnection_events,
                row.orphaned_peer_events,
            )
            for row in rows
        ),
    )
    return rows, table


def run_message_replay_ablation(
    scale: Optional[ExperimentScale] = None,
    *,
    dimension: int = 2,
    replay_cap: int = 80,
) -> Tuple[List[MessageReplayRow], AblationResult]:
    """A5: dirty-set reselect ticks versus per-tick full reselection.

    Replays the identical seeded join/leave churn schedule through the
    message-level simulator twice -- once reapplying the selection method on
    every peer's every reselect tick, once with the dirty-set tick -- and
    reports the selection-invocation counts, skip counts and wall-clock of
    each mode, together with whether the two settled to the identical
    topology (they must; the equivalence tests assert it).  The population
    is capped at ``replay_cap`` so the full-reselect arm stays affordable
    inside ``ablations``/``all`` CLI runs; the uncapped scaling measurement
    lives in ``benchmarks/test_message_replay_scaling.py``.
    """
    resolved = scale if scale is not None else resolve_scale()
    count = min(resolved.peer_count, replay_cap)
    seed = derive_seed(resolved.seed, 15, dimension, count)
    peers = generate_peers(count, dimension, seed=seed)
    schedule = interleaved_join_leave_schedule(
        count, join_interval=1.0, leave_fraction=0.2, holdoff=6.0, seed=seed
    )

    runs = {}
    timings = {}
    for mode, incremental in (("full-reselect", False), ("dirty-set", True)):
        started = time.perf_counter()
        runs[mode] = run_gossip_overlay(
            peers,
            EmptyRectangleSelection(),
            churn=schedule,
            settle_time=20.0,
            seed=seed,
            incremental_reselect=incremental,
        )
        timings[mode] = time.perf_counter() - started

    identical = (
        runs["dirty-set"].alive_snapshot().edges()
        == runs["full-reselect"].alive_snapshot().edges()
    )
    departures = sum(1 for event in schedule if event.kind == "leave")
    rows = [
        MessageReplayRow(
            mode=mode,
            dimension=dimension,
            peers=count,
            departures=departures,
            reselect_ticks=result.total_reselect_ticks(),
            selection_invocations=result.total_selection_invocations(),
            additive_updates=result.total_additive_updates(),
            skipped_ticks=result.total_reselect_skips(),
            wall_seconds=timings[mode],
            identical_topology=identical,
        )
        for mode, result in runs.items()
    ]

    table = _message_replay_table(rows)
    return rows, table


def run_tree_maintenance_ablation(
    scale: Optional[ExperimentScale] = None,
    *,
    dimension: int = 3,
    k: int = 2,
) -> Tuple[List[TreeMaintenanceRow], AblationResult]:
    """A6: event-driven tree maintenance versus per-event snapshot rebuilds.

    Replays the A4 churn trace (joins one at a time, then lifetime-ordered
    departures, the overlay reconverging incrementally after every event)
    while the Section 3 stability tree is kept current on *both* paths:

    * the event-driven arm -- a :class:`StabilityTreeMaintainer` consuming
      the overlay delta stream, repairing the tree with single edge
      re-parents and streaming metrics (one full rebuild total, at
      bootstrap);
    * the snapshot arm -- :class:`repro.multicast.stability.StabilityTreeBuilder`
      re-run over a fresh topology snapshot after every event, exactly what
      the pipeline did before the event-driven layer existed.

    After every event the two parent maps (and, whenever the forest is one
    tree, the full metric bundles) are compared; ``identical_events`` counts
    the agreements and must equal ``events``.  The health columns summarise
    the streaming tree-health series over the phase.
    """
    resolved = scale if scale is not None else resolve_scale()
    seed = derive_seed(resolved.seed, 16, dimension, k)
    peers = generate_peers_with_lifetimes(resolved.peer_count, dimension, seed=seed)
    rng = random.Random(seed)
    overlay = OverlayNetwork(OrthogonalHyperplanesSelection(k=k))
    maintainer = StabilityTreeMaintainer(overlay)
    builder = StabilityTreeBuilder()

    rows: List[TreeMaintenanceRow] = []

    def run_phase(phase: str, events) -> None:
        event_count = 0
        identical = 0
        single_tree_events = 0
        maximum_height = 0
        maximum_degree = 0
        event_driven_seconds = 0.0
        snapshot_seconds = 0.0
        reparents_before = maintainer.engine.reparent_operations
        rebuilds_before = maintainer.full_rebuilds
        for event in events:
            event()
            event_count += 1

            started = time.perf_counter()
            maintainer.refresh()
            health = maintainer.engine.health_sample(event_count)
            event_driven_seconds += time.perf_counter() - started

            started = time.perf_counter()
            reference = builder.build(overlay.snapshot())
            snapshot_seconds += time.perf_counter() - started

            maximum_height = max(maximum_height, health.height)
            maximum_degree = max(maximum_degree, health.maximum_degree)
            agree = maintainer.forest().preferred == dict(reference.preferred)
            if health.is_single_tree and health.size:
                single_tree_events += 1
                if agree:
                    agree = maintainer.metrics() == tree_metrics(
                        reference.to_multicast_tree()
                    )
            if agree:
                identical += 1
        rows.append(
            TreeMaintenanceRow(
                phase=phase,
                dimension=dimension,
                k=k,
                events=event_count,
                reparent_operations=maintainer.engine.reparent_operations
                - reparents_before,
                full_rebuilds=maintainer.full_rebuilds - rebuilds_before,
                snapshot_rebuilds=event_count,
                identical_events=identical,
                maximum_height=maximum_height,
                maximum_degree=maximum_degree,
                single_tree_events=single_tree_events,
                event_driven_seconds=event_driven_seconds,
                snapshot_seconds=snapshot_seconds,
            )
        )

    def join_events():
        for peer in peers:
            if overlay.peer_count == 0:
                yield lambda p=peer: overlay.add_peer(p, bootstrap=())
            else:
                yield lambda p=peer: overlay.insert_and_converge(
                    p, bootstrap={rng.choice(overlay.peer_ids)}, incremental=True
                )

    def leave_events():
        for peer in sorted(peers, key=lambda p: (p.lifetime, p.peer_id)):
            yield lambda p=peer: overlay.remove_and_converge(
                p.peer_id, incremental=True
            )

    run_phase("join", join_events())
    run_phase("leave", leave_events())

    table = AblationResult(
        name="tree-maintenance",
        headers=(
            "phase",
            "D",
            "K",
            "events",
            "reparents",
            "rebuilds",
            "snapshot rebuilds",
            "identical",
            "max height",
            "max degree",
            "single tree",
            "event-driven [s]",
            "snapshot [s]",
        ),
        rows=tuple(
            (
                row.phase,
                row.dimension,
                row.k,
                row.events,
                row.reparent_operations,
                row.full_rebuilds,
                row.snapshot_rebuilds,
                row.identical,
                row.maximum_height,
                row.maximum_degree,
                row.single_tree_events,
                f"{row.event_driven_seconds:.2f}",
                f"{row.snapshot_seconds:.2f}",
            )
            for row in rows
        ),
    )
    return rows, table


def run_trace_convergence_ablation(
    scale: Optional[ExperimentScale] = None,
    *,
    dimension: int = 3,
) -> Tuple[List[TraceConvergenceRow], AblationResult]:
    """A7: batched-epoch convergence versus the per-event loop on one trace.

    Generates a Poisson join/leave trace over the Section 3 population and
    replays it twice through the :class:`~repro.experiments.trace_runner.TraceRunner`
    -- once converging after every single event (the pre-batching cadence),
    once converging once per epoch via
    :meth:`~repro.overlay.network.OverlayNetwork.apply_batch` -- with the
    stability-tree maintainer and the connectivity tracker live in both
    arms.  The rows report the engine-round budget each cadence paid and
    assert the equivalence the batching relies on: identical final overlay
    topology and byte-identical maintained stability tree.
    """
    resolved = scale if scale is not None else resolve_scale()
    count = resolved.peer_count
    seed = derive_seed(resolved.seed, 17, dimension, count)
    peers = generate_peers_with_lifetimes(count, dimension, seed=seed)
    trace = poisson_trace(
        count, session_mean=count / 2.0, epoch_length=count / 12.0, seed=seed
    )
    runner = TraceRunner(peers, EmptyRectangleSelection, bootstrap_seed=seed)

    per_event = runner.run(trace, per_event=True)
    per_epoch = runner.run(trace, per_event=False)
    identical = (
        per_epoch.final_neighbours == per_event.final_neighbours
        and per_epoch.final_parents == per_event.final_parents
    )

    rows = [
        TraceConvergenceRow(
            arm=result.mode,
            dimension=dimension,
            epochs=result.epoch_count,
            events=result.total_events,
            engine_rounds=result.total_rounds,
            convergences=result.convergences,
            reparent_operations=result.reparent_operations,
            connectivity_rebuilds=result.connectivity_rebuilds,
            wall_seconds=result.wall_seconds,
            identical=identical,
        )
        for result in (per_event, per_epoch)
    ]

    table = AblationResult(
        name="trace-convergence",
        headers=(
            "arm",
            "D",
            "epochs",
            "events",
            "engine rounds",
            "convergences",
            "reparents",
            "uf rebuilds",
            "wall [s]",
            "identical",
        ),
        rows=tuple(
            (
                row.arm,
                row.dimension,
                row.epochs,
                row.events,
                row.engine_rounds,
                row.convergences,
                row.reparent_operations,
                row.connectivity_rebuilds,
                f"{row.wall_seconds:.2f}",
                row.identical,
            )
            for row in rows
        ),
    )
    return rows, table


def run_network_model_ablation(
    scale: Optional[ExperimentScale] = None,
    *,
    dimension: int = 2,
    replay_cap: int = 24,
) -> Tuple[List[NetworkModelRow], AblationResult]:
    """A8: the message-level replay under realistic link models.

    Settles the same seeded population four times -- under the ideal
    degenerate network (constant latency, no loss; byte-identical to the
    legacy scalar-latency path) and under arms that add i.i.d. loss, wider
    latency distributions and a per-link bandwidth cap -- then probes the
    maintained Section 3 tree for per-peer dissemination latencies.  Each
    row reports the overlay-construction traffic (messages, bytes and the
    retransmissions the reliable link notices paid), whether the settled
    overlay still equals the full-knowledge analytic fixed point, and the
    probe's p50/p99.  The population is capped at ``replay_cap`` peers so
    the sweep stays affordable inside ``ablations``/``all`` CLI runs; the
    scaling measurement lives in ``benchmarks/test_network_model_scaling.py``.
    """
    resolved = scale if scale is not None else resolve_scale()
    count = min(resolved.peer_count, replay_cap)
    seed = derive_seed(resolved.seed, 18, dimension, count)
    peers = generate_peers_with_lifetimes(count, dimension, seed=seed)
    equilibrium = OverlayNetwork.build_equilibrium(
        peers, EmptyRectangleSelection()
    ).snapshot().edges()

    arms = (
        ("ideal", LinkModel(ConstantLatency(0.01), seed=seed)),
        ("loss-5%", LinkModel(ConstantLatency(0.01), loss_rate=0.05, seed=seed)),
        (
            "uniform+loss-5%",
            LinkModel(UniformLatency(0.005, 0.03), loss_rate=0.05, seed=seed),
        ),
        (
            "lognormal+loss-10%+bw",
            LinkModel(
                LognormalLatency(0.02, 0.5),
                loss_rate=0.10,
                bandwidth_bytes_per_second=2_000_000.0,
                seed=seed,
            ),
        ),
    )

    rows = []
    for arm, model in arms:
        started = time.perf_counter()
        simulated = run_gossip_overlay(
            peers,
            EmptyRectangleSelection(),
            settle_time=40.0,
            network=model,
            seed=seed,
        )
        overlay_stats = simulated.overlay_stats
        messages_sent = overlay_stats.messages_sent
        messages_lost = overlay_stats.messages_lost
        bytes_sent = overlay_stats.bytes_sent
        retransmissions = sum(
            process.retransmissions for process in simulated.processes.values()
        )
        match = simulated.snapshot().edges() == equilibrium
        probe = run_dissemination_probe(simulated, extra_time=30.0)
        wall_seconds = time.perf_counter() - started
        rows.append(
            NetworkModelRow(
                arm=arm,
                dimension=dimension,
                peers=count,
                network=model.describe(),
                messages_sent=messages_sent,
                messages_lost=messages_lost,
                retransmissions=retransmissions,
                bytes_sent=bytes_sent,
                equilibrium_match=match,
                probe_p50_ms=probe.statistics.p50 * 1000.0,
                probe_p99_ms=probe.statistics.p99 * 1000.0,
                probe_unreached=len(probe.unreached_peers),
                wall_seconds=wall_seconds,
            )
        )

    table = AblationResult(
        name="network-model",
        headers=(
            "arm",
            "D",
            "peers",
            "messages",
            "lost",
            "retrans",
            "bytes",
            "eq match",
            "p50 [ms]",
            "p99 [ms]",
            "unreached",
            "wall [s]",
        ),
        rows=tuple(
            (
                row.arm,
                row.dimension,
                row.peers,
                row.messages_sent,
                row.messages_lost,
                row.retransmissions,
                row.bytes_sent,
                row.equilibrium_match,
                f"{row.probe_p50_ms:.1f}",
                f"{row.probe_p99_ms:.1f}",
                row.probe_unreached,
                f"{row.wall_seconds:.2f}",
            )
            for row in rows
        ),
    )
    return rows, table


def _message_replay_table(rows: List[MessageReplayRow]) -> AblationResult:
    """Table view of the A5 rows (split out to keep the driver readable)."""
    return AblationResult(
        name="message-replay",
        headers=(
            "mode",
            "D",
            "peers",
            "departures",
            "ticks",
            "full selections",
            "additive",
            "skipped",
            "wall [s]",
            "identical",
        ),
        rows=tuple(
            (
                row.mode,
                row.dimension,
                row.peers,
                row.departures,
                row.reselect_ticks,
                row.selection_invocations,
                row.additive_updates,
                row.skipped_ticks,
                f"{row.wall_seconds:.2f}",
                row.identical_topology,
            )
            for row in rows
        ),
    )
