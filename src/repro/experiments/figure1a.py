"""Figure 1 (a): overlay degree versus dimension.

Setup (from the paper): ``N = 1000`` peers with random coordinates, the
empty-rectangle neighbour selection, one measurement per dimension
``D = 2..5``.  Reported series: maximum and average topology degree of a
peer.  The paper's qualitative findings, which this driver checks the shape
of, are that both series grow quickly with ``D`` and that ``D = 2`` offers
the best degree/path-length trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.experiments import paper_data
from repro.experiments.common import build_section2_topology, derive_seed
from repro.experiments.config import ExperimentScale, resolve_scale
from repro.metrics.degree import degree_statistics
from repro.metrics.reporting import SeriesComparison, compare_series, format_table

__all__ = ["Figure1aRow", "Figure1aResult", "run_figure1a"]


@dataclass(frozen=True)
class Figure1aRow:
    """One bar group of Figure 1 (a): degree statistics for one dimension."""

    dimension: int
    peer_count: int
    maximum_degree: int
    average_degree: float


@dataclass(frozen=True)
class Figure1aResult:
    """All rows of the panel plus the shape comparison against the paper."""

    scale_name: str
    rows: Tuple[Figure1aRow, ...]

    def to_table(self) -> str:
        """Plain-text table in the panel's layout (one row per dimension)."""
        return format_table(
            ["D", "peers", "max degree", "avg degree"],
            [
                [row.dimension, row.peer_count, row.maximum_degree, row.average_degree]
                for row in self.rows
            ],
        )

    def compare_with_paper(self) -> Dict[str, SeriesComparison]:
        """Shape comparison of both series against the digitized paper values.

        Only dimensions the paper reports (2..5) participate; the comparison
        is meaningful even at reduced peer counts because it looks at
        orderings and trends rather than absolute values.
        """
        rows = [row for row in self.rows if row.dimension in paper_data.FIGURE_1A_MAX_DEGREE]
        dimensions = [row.dimension for row in rows]
        return {
            "maximum_degree": compare_series(
                dimensions,
                [row.maximum_degree for row in rows],
                [paper_data.FIGURE_1A_MAX_DEGREE[d] for d in dimensions],
            ),
            "average_degree": compare_series(
                dimensions,
                [row.average_degree for row in rows],
                [paper_data.FIGURE_1A_AVG_DEGREE[d] for d in dimensions],
            ),
        }


def run_figure1a(scale: Optional[ExperimentScale] = None) -> Figure1aResult:
    """Run the Figure 1 (a) sweep at the given (or environment-selected) scale."""
    resolved = scale if scale is not None else resolve_scale()
    rows: List[Figure1aRow] = []
    for dimension in resolved.section2_dimensions:
        seed = derive_seed(resolved.seed, 1, dimension)
        topology = build_section2_topology(resolved.peer_count, dimension, seed=seed)
        stats = degree_statistics(topology)
        rows.append(
            Figure1aRow(
                dimension=dimension,
                peer_count=resolved.peer_count,
                maximum_degree=stats.maximum,
                average_degree=stats.average,
            )
        )
    return Figure1aResult(scale_name=resolved.name, rows=tuple(rows))
