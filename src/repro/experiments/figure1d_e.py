"""Figure 1 (d) and (e): the stability-tree sweep over ``D`` and ``K``.

Setup (from the paper): ``N = 1000`` peers whose first coordinate is their
departure time ``T(P)``, an Orthogonal Hyperplanes overlay with ``K`` peers
kept per orthant, dimensions ``D = 2..10`` and ``K = 1..50``.  The preferred
tree neighbour of every peer is the overlay neighbour with the largest
lifetime exceeding its own.

Both panels read from the same sweep:

* Figure 1 (d): the diameter of the resulting multicast tree.
* Figure 1 (e): the maximum tree degree of a peer.

The sweep also verifies the invariants the paper reports as always holding:
the preferred links form a single tree, it is rooted at the longest-lived
peer, and lifetimes decrease from parents to children.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.experiments import paper_data
from repro.experiments.common import build_section3_topology, derive_seed
from repro.experiments.config import ExperimentScale, resolve_scale
from repro.metrics.reporting import SeriesComparison, compare_series, format_table
from repro.multicast.stability import StabilityTreeBuilder

__all__ = [
    "StabilitySweepRow",
    "StabilitySweepResult",
    "run_stability_sweep",
    "run_figure1d",
    "run_figure1e",
]


@dataclass(frozen=True)
class StabilitySweepRow:
    """One ``(D, K)`` point of the Section 3 sweep."""

    dimension: int
    k: int
    peer_count: int
    tree_diameter: int
    maximum_tree_degree: int
    is_single_tree: bool
    root_has_largest_lifetime: bool
    parents_outlive_children: bool


@dataclass(frozen=True)
class StabilitySweepResult:
    """All ``(D, K)`` points, with per-panel table/comparison views."""

    scale_name: str
    rows: Tuple[StabilitySweepRow, ...]
    procedure: str = "equilibrium"

    # ------------------------------------------------------------------
    # Panel views
    # ------------------------------------------------------------------
    def diameter_series(self) -> Dict[int, List[Tuple[int, int]]]:
        """Figure 1 (d): for each dimension, the ``(K, diameter)`` series."""
        series: Dict[int, List[Tuple[int, int]]] = {}
        for row in self.rows:
            series.setdefault(row.dimension, []).append((row.k, row.tree_diameter))
        return {dimension: sorted(points) for dimension, points in series.items()}

    def degree_series(self) -> Dict[int, List[Tuple[int, int]]]:
        """Figure 1 (e): for each dimension, the ``(K, max tree degree)`` series."""
        series: Dict[int, List[Tuple[int, int]]] = {}
        for row in self.rows:
            series.setdefault(row.dimension, []).append((row.k, row.maximum_tree_degree))
        return {dimension: sorted(points) for dimension, points in series.items()}

    def all_invariants_hold(self) -> bool:
        """``True`` when every configuration reproduced the paper's three checks."""
        return all(
            row.is_single_tree
            and row.root_has_largest_lifetime
            and row.parents_outlive_children
            for row in self.rows
        )

    def to_table(self) -> str:
        """Plain-text table with one row per ``(D, K)`` configuration."""
        return format_table(
            ["D", "K", "peers", "diameter", "max tree degree", "tree", "ordered"],
            [
                [
                    row.dimension,
                    row.k,
                    row.peer_count,
                    row.tree_diameter,
                    row.maximum_tree_degree,
                    row.is_single_tree,
                    row.parents_outlive_children,
                ]
                for row in self.rows
            ],
        )

    # ------------------------------------------------------------------
    # Paper-shape comparisons
    # ------------------------------------------------------------------
    def compare_diameter_with_paper(self) -> Dict[int, SeriesComparison]:
        """Shape comparison of the diameter-vs-K curves against the digitized values."""
        return self._compare(paper_data.FIGURE_1D_DIAMETER, self.diameter_series())

    def compare_degree_with_paper(self) -> Dict[int, SeriesComparison]:
        """Shape comparison of the degree-vs-K curves against the digitized values."""
        return self._compare(paper_data.FIGURE_1E_MAX_DEGREE, self.degree_series())

    @staticmethod
    def _compare(
        reference: Dict[int, Dict[int, float]],
        measured: Dict[int, List[Tuple[int, int]]],
    ) -> Dict[int, SeriesComparison]:
        comparisons: Dict[int, SeriesComparison] = {}
        for dimension, reference_points in reference.items():
            if dimension not in measured:
                continue
            measured_points = dict(measured[dimension])
            shared_k = sorted(set(reference_points) & set(measured_points))
            if len(shared_k) < 2:
                continue
            comparisons[dimension] = compare_series(
                shared_k,
                [measured_points[k] for k in shared_k],
                [reference_points[k] for k in shared_k],
            )
        return comparisons


def run_stability_sweep(
    scale: Optional[ExperimentScale] = None,
    *,
    procedure: str = "equilibrium",
) -> StabilitySweepResult:
    """Run the full Section 3 sweep (feeds both Figure 1 (d) and (e)).

    ``procedure="insertion"`` rebuilds every ``(D, K)`` overlay with the
    paper-literal churn loop -- peers inserted one at a time, converging
    after every insertion -- on the incremental reselection engine instead
    of the direct equilibrium jump.  Both procedures reach the same
    full-knowledge topology; the insertion replay exists to validate that
    equivalence at figure scale, which the engine makes affordable.
    """
    resolved = scale if scale is not None else resolve_scale()
    builder = StabilityTreeBuilder()
    rows: List[StabilitySweepRow] = []
    for dimension in resolved.section3_dimensions:
        for k in resolved.k_values:
            seed = derive_seed(resolved.seed, 4, dimension, k)
            topology = build_section3_topology(
                resolved.peer_count, dimension, k, seed=seed, procedure=procedure
            )
            forest = builder.build(topology)
            is_tree = forest.is_single_tree()
            if is_tree:
                tree = forest.to_multicast_tree()
                diameter = tree.diameter()
                max_degree = tree.maximum_degree()
            else:
                diameter = -1
                max_degree = -1
            rows.append(
                StabilitySweepRow(
                    dimension=dimension,
                    k=k,
                    peer_count=resolved.peer_count,
                    tree_diameter=diameter,
                    maximum_tree_degree=max_degree,
                    is_single_tree=is_tree,
                    root_has_largest_lifetime=forest.root_has_largest_lifetime(),
                    parents_outlive_children=forest.parents_outlive_children(),
                )
            )
    return StabilitySweepResult(
        scale_name=resolved.name, rows=tuple(rows), procedure=procedure
    )


def run_figure1d(
    scale: Optional[ExperimentScale] = None, *, procedure: str = "equilibrium"
) -> StabilitySweepResult:
    """Figure 1 (d) driver (the diameter view of the stability sweep)."""
    return run_stability_sweep(scale, procedure=procedure)


def run_figure1e(
    scale: Optional[ExperimentScale] = None, *, procedure: str = "equilibrium"
) -> StabilitySweepResult:
    """Figure 1 (e) driver (the degree view of the stability sweep)."""
    return run_stability_sweep(scale, procedure=procedure)
