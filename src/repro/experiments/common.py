"""Shared plumbing for the experiment drivers.

Every figure panel needs the same two ingredients: a population of peers
drawn from the paper's workload and the equilibrium overlay topology for the
configured neighbour selection method.  Keeping the construction here means
all panels agree on seeds and conventions, and the benchmarks measure the
algorithms rather than incidental setup differences.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.overlay.network import OverlayNetwork
from repro.overlay.selection.empty_rectangle import EmptyRectangleSelection
from repro.overlay.selection.orthogonal import OrthogonalHyperplanesSelection
from repro.overlay.topology import TopologySnapshot
from repro.workloads.peers import generate_peers, generate_peers_with_lifetimes

__all__ = [
    "PROCEDURES",
    "build_section2_topology",
    "build_section3_topology",
    "sample_roots",
    "derive_seed",
]


def derive_seed(base_seed: int, *components: int) -> int:
    """Deterministically derive a per-configuration seed from the scale seed.

    Mixing in the configuration parameters (dimension, peer count, K, ...)
    gives every configuration an independent workload while keeping the whole
    sweep reproducible from the single scale seed.
    """
    seed = base_seed
    for component in components:
        seed = (seed * 1_000_003 + int(component) + 1) % (2**31 - 1)
    return seed


PROCEDURES = ("equilibrium", "insertion")


def _build_overlay(peers, selection, *, procedure: str, seed: int) -> OverlayNetwork:
    """Build an overlay by the requested procedure.

    ``"equilibrium"`` jumps straight to the full-knowledge fixed point (the
    historical fast path of the figure benchmarks); ``"insertion"`` follows
    the paper's procedure literally -- peers inserted one by one, the overlay
    converging after every insertion -- on the incremental reselection
    engine, which is what makes that literal replay tractable at figure
    scale.  Both produce the same full-knowledge topology.
    """
    if procedure == "equilibrium":
        return OverlayNetwork.build_equilibrium(peers, selection)
    if procedure == "insertion":
        return OverlayNetwork.build_incremental(
            peers, selection, rng=random.Random(seed), incremental=True
        )
    raise ValueError(
        f"unknown build procedure {procedure!r}; known: {', '.join(PROCEDURES)}"
    )


def build_section2_topology(
    peer_count: int,
    dimension: int,
    *,
    seed: int,
    procedure: str = "equilibrium",
) -> TopologySnapshot:
    """Empty-rectangle overlay over a random population (Section 2 setup).

    This is the Section 2 experimental setup: random identifiers, peers
    inserted until the topology reaches the equilibrium in which every peer
    knows every other peer (the fixed point the paper's per-insertion
    convergence approaches).  ``procedure="insertion"`` replays the paper's
    insert-one-converge loop on the incremental engine instead of jumping to
    the fixed point directly.
    """
    peers = generate_peers(peer_count, dimension, seed=seed)
    overlay = _build_overlay(
        peers, EmptyRectangleSelection(), procedure=procedure, seed=seed
    )
    return overlay.snapshot()


def build_section3_topology(
    peer_count: int,
    dimension: int,
    k: int,
    *,
    seed: int,
    procedure: str = "equilibrium",
) -> TopologySnapshot:
    """Orthogonal-Hyperplanes overlay with lifetime-first coordinates.

    This is the Section 3 experimental setup: every peer's first coordinate
    is its departure time ``T(P)``, the remaining coordinates are random, and
    the overlay keeps the ``K`` closest peers per orthant.  As with the
    Section 2 builder, ``procedure="insertion"`` runs the paper-literal
    churn loop on the incremental engine.
    """
    peers = generate_peers_with_lifetimes(peer_count, dimension, seed=seed)
    overlay = _build_overlay(
        peers, OrthogonalHyperplanesSelection(k=k), procedure=procedure, seed=seed
    )
    return overlay.snapshot()


def sample_roots(
    peer_ids: Sequence[int],
    sample_size: Optional[int],
    *,
    seed: int,
) -> List[int]:
    """Initiating peers for the per-root sweeps.

    The paper initiates a construction from every peer; ``sample_size``
    limits that to a random subset at the smaller scales (``None`` keeps
    every peer).
    """
    ids = sorted(peer_ids)
    if sample_size is None or sample_size >= len(ids):
        return ids
    rng = random.Random(seed)
    return sorted(rng.sample(ids, sample_size))
