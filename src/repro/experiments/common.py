"""Shared plumbing for the experiment drivers.

Every figure panel needs the same two ingredients: a population of peers
drawn from the paper's workload and the equilibrium overlay topology for the
configured neighbour selection method.  Keeping the construction here means
all panels agree on seeds and conventions, and the benchmarks measure the
algorithms rather than incidental setup differences.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.overlay.network import OverlayNetwork
from repro.overlay.selection.empty_rectangle import EmptyRectangleSelection
from repro.overlay.selection.orthogonal import OrthogonalHyperplanesSelection
from repro.overlay.topology import TopologySnapshot
from repro.workloads.peers import generate_peers, generate_peers_with_lifetimes

__all__ = [
    "build_section2_topology",
    "build_section3_topology",
    "sample_roots",
    "derive_seed",
]


def derive_seed(base_seed: int, *components: int) -> int:
    """Deterministically derive a per-configuration seed from the scale seed.

    Mixing in the configuration parameters (dimension, peer count, K, ...)
    gives every configuration an independent workload while keeping the whole
    sweep reproducible from the single scale seed.
    """
    seed = base_seed
    for component in components:
        seed = (seed * 1_000_003 + int(component) + 1) % (2**31 - 1)
    return seed


def build_section2_topology(
    peer_count: int,
    dimension: int,
    *,
    seed: int,
) -> TopologySnapshot:
    """Equilibrium empty-rectangle overlay over a random population.

    This is the Section 2 experimental setup: random identifiers, peers
    inserted until the topology reaches the equilibrium in which every peer
    knows every other peer (the fixed point the paper's per-insertion
    convergence approaches).
    """
    peers = generate_peers(peer_count, dimension, seed=seed)
    overlay = OverlayNetwork.build_equilibrium(peers, EmptyRectangleSelection())
    return overlay.snapshot()


def build_section3_topology(
    peer_count: int,
    dimension: int,
    k: int,
    *,
    seed: int,
) -> TopologySnapshot:
    """Equilibrium Orthogonal-Hyperplanes overlay with lifetime-first coordinates.

    This is the Section 3 experimental setup: every peer's first coordinate
    is its departure time ``T(P)``, the remaining coordinates are random, and
    the overlay keeps the ``K`` closest peers per orthant.
    """
    peers = generate_peers_with_lifetimes(peer_count, dimension, seed=seed)
    overlay = OverlayNetwork.build_equilibrium(
        peers, OrthogonalHyperplanesSelection(k=k)
    )
    return overlay.snapshot()


def sample_roots(
    peer_ids: Sequence[int],
    sample_size: Optional[int],
    *,
    seed: int,
) -> List[int]:
    """Initiating peers for the per-root sweeps.

    The paper initiates a construction from every peer; ``sample_size``
    limits that to a random subset at the smaller scales (``None`` keeps
    every peer).
    """
    ids = sorted(peer_ids)
    if sample_size is None or sample_size >= len(ids):
        return ids
    rng = random.Random(seed)
    return sorted(rng.sample(ids, sample_size))
