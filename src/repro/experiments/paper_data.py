"""Reference series digitized from the paper's Figure 1.

The brief announcement reports all results as small bar/line charts without
numeric tables, so the values below are approximate readings of Figure 1
(a)-(e).  They are used only for *shape* comparison (orderings, trends,
rough magnitudes) in EXPERIMENTS.md and in the benchmark output; nothing in
the library treats them as exact.

All series are for ``N = 1000`` peers except panel (c), which sweeps ``N``
at ``D = 2``.
"""

from __future__ import annotations

from typing import Dict, Tuple

__all__ = [
    "FIGURE_1A_MAX_DEGREE",
    "FIGURE_1A_AVG_DEGREE",
    "FIGURE_1B_MAX_LONGEST_PATH",
    "FIGURE_1B_AVG_LONGEST_PATH",
    "FIGURE_1C_PEER_COUNTS",
    "FIGURE_1C_MAX_DEGREE",
    "FIGURE_1C_AVG_DEGREE",
    "FIGURE_1D_DIAMETER",
    "FIGURE_1E_MAX_DEGREE",
    "PAPER_CLAIMS",
]

# ---------------------------------------------------------------------------
# Figure 1 (a): overlay degree vs dimension (empty-rectangle overlay, N=1000).
# ---------------------------------------------------------------------------
FIGURE_1A_MAX_DEGREE: Dict[int, float] = {2: 45.0, 3: 160.0, 4: 350.0, 5: 620.0}
FIGURE_1A_AVG_DEGREE: Dict[int, float] = {2: 12.0, 3: 35.0, 4: 90.0, 5: 190.0}

# ---------------------------------------------------------------------------
# Figure 1 (b): longest root-to-leaf path vs dimension (N=1000, every root).
# ---------------------------------------------------------------------------
FIGURE_1B_MAX_LONGEST_PATH: Dict[int, float] = {2: 27.0, 3: 18.0, 4: 13.0, 5: 10.0}
FIGURE_1B_AVG_LONGEST_PATH: Dict[int, float] = {2: 18.0, 3: 12.0, 4: 9.0, 5: 7.0}

# ---------------------------------------------------------------------------
# Figure 1 (c): overlay degree vs peer count (D=2).  The paper also plots the
# reference curve 10 * log10(N).
# ---------------------------------------------------------------------------
FIGURE_1C_PEER_COUNTS: Tuple[int, ...] = (100, 400, 700, 1000, 4000)
FIGURE_1C_MAX_DEGREE: Dict[int, float] = {100: 22.0, 400: 30.0, 700: 34.0, 1000: 38.0, 4000: 46.0}
FIGURE_1C_AVG_DEGREE: Dict[int, float] = {100: 9.0, 400: 11.0, 700: 11.5, 1000: 12.0, 4000: 13.5}

# ---------------------------------------------------------------------------
# Figure 1 (d): stability-tree diameter vs K (N=1000), selected dimensions.
# The full figure sweeps D=2..10 and K=1..50; the nested dict below records
# the approximate envelope at a few K values for the smallest and largest D.
# ---------------------------------------------------------------------------
FIGURE_1D_DIAMETER: Dict[int, Dict[int, float]] = {
    2: {1: 60.0, 6: 30.0, 16: 20.0, 31: 15.0, 46: 12.0},
    10: {1: 12.0, 6: 8.0, 16: 6.0, 31: 5.0, 46: 4.0},
}

# ---------------------------------------------------------------------------
# Figure 1 (e): maximum stability-tree degree vs K (N=1000).
# ---------------------------------------------------------------------------
FIGURE_1E_MAX_DEGREE: Dict[int, Dict[int, float]] = {
    2: {1: 15.0, 6: 60.0, 16: 130.0, 31: 220.0, 46: 300.0},
    10: {1: 60.0, 6: 300.0, 16: 600.0, 31: 850.0, 46: 1000.0},
}

# ---------------------------------------------------------------------------
# Claims stated in the text rather than plotted.
# ---------------------------------------------------------------------------
PAPER_CLAIMS = {
    "construction_messages": "The algorithm sends N - 1 messages, where N is the total number of peers.",
    "tree_degree_bound": "The maximum tree degree of a peer was bounded by 2^D, as expected.",
    "degree_growth": "For D=2 both the maximum and average overlay degree seem proportional to log(N).",
    "stability_tree": "The preferred neighbour links always formed a tree, rooted at the largest T(P), "
    "with T decreasing towards the leaves.",
    "stability_shape": "For small values of K, both the maximum degree and the tree diameter are quite small.",
}
