"""Experiment scales: smoke, bench and paper-scale parameter sets.

Every figure driver takes an :class:`ExperimentScale`.  The paper's
experiments use ``N = 1000`` peers (up to ``N = 5000`` in Figure 1 (c)),
build a multicast tree from *every* peer, and sweep ``D = 2..10`` and
``K = 1..50``; running all of that takes long enough that it is not a useful
default for a test suite or a benchmark run.  Three scales are provided:

* ``smoke`` -- seconds; used by the integration tests.
* ``bench`` -- minutes for the whole benchmark suite; the default for
  ``pytest benchmarks/``.  Trends (who wins, how series grow) are already
  clearly visible at this scale.
* ``paper`` -- the paper's parameters; select it by exporting
  ``REPRO_SCALE=paper`` before running the benchmarks.

The scale used by benchmarks is resolved by :func:`resolve_scale` from the
``REPRO_SCALE`` environment variable, so reproducing the paper-scale numbers
is a one-variable change, not a code change (see EXPERIMENTS.md).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = ["ExperimentScale", "SCALES", "resolve_scale"]


@dataclass(frozen=True)
class ExperimentScale:
    """Parameter set shared by the figure drivers.

    Attributes
    ----------
    name:
        Scale identifier ("smoke", "bench", "paper").
    peer_count:
        ``N`` used by Figure 1 (a), (b), (d) and (e).
    scaling_peer_counts:
        The ``N`` sweep of Figure 1 (c).
    section2_dimensions:
        The ``D`` sweep of Figure 1 (a) and (b).
    section3_dimensions:
        The ``D`` sweep of Figure 1 (d) and (e).
    k_values:
        The ``K`` sweep of Figure 1 (d) and (e).
    root_sample:
        Number of initiating peers sampled for Figure 1 (b); ``None`` means
        every peer initiates once, as in the paper.
    seed:
        Workload seed; the drivers derive per-configuration seeds from it.
    """

    name: str
    peer_count: int
    scaling_peer_counts: Tuple[int, ...]
    section2_dimensions: Tuple[int, ...]
    section3_dimensions: Tuple[int, ...]
    k_values: Tuple[int, ...]
    root_sample: Optional[int]
    seed: int = 20100725  # PODC 2010 started on July 25th.

    def __post_init__(self) -> None:
        if self.peer_count < 2:
            raise ValueError("peer_count must be at least 2")
        if not self.scaling_peer_counts:
            raise ValueError("scaling_peer_counts must not be empty")
        if any(d < 2 for d in self.section2_dimensions + self.section3_dimensions):
            raise ValueError("all dimensions must be at least 2")
        if any(k < 1 for k in self.k_values):
            raise ValueError("all K values must be at least 1")
        if self.root_sample is not None and self.root_sample < 1:
            raise ValueError("root_sample must be positive when given")


SCALES: Dict[str, ExperimentScale] = {
    "smoke": ExperimentScale(
        name="smoke",
        peer_count=60,
        scaling_peer_counts=(30, 60, 90),
        section2_dimensions=(2, 3),
        section3_dimensions=(2, 3, 4),
        k_values=(1, 2, 4, 8),
        root_sample=8,
    ),
    "bench": ExperimentScale(
        name="bench",
        peer_count=250,
        scaling_peer_counts=(100, 175, 250, 400),
        section2_dimensions=(2, 3, 4, 5),
        section3_dimensions=(2, 3, 5, 7, 10),
        k_values=(1, 2, 5, 10, 20, 35, 50),
        root_sample=40,
    ),
    "paper": ExperimentScale(
        name="paper",
        peer_count=1000,
        scaling_peer_counts=(100, 400, 700, 1000, 4000),
        section2_dimensions=(2, 3, 4, 5),
        section3_dimensions=tuple(range(2, 11)),
        k_values=tuple(range(1, 51)),
        root_sample=None,
    ),
}

SCALE_ENVIRONMENT_VARIABLE = "REPRO_SCALE"


def resolve_scale(name: Optional[str] = None) -> ExperimentScale:
    """Return the requested scale, or the one selected by ``REPRO_SCALE``.

    Precedence: explicit ``name`` argument, then the environment variable,
    then ``"bench"``.
    """
    if name is None:
        name = os.environ.get(SCALE_ENVIRONMENT_VARIABLE, "bench")
    key = name.strip().lower()
    try:
        return SCALES[key]
    except KeyError:
        known = ", ".join(sorted(SCALES))
        raise ValueError(f"unknown experiment scale {name!r}; known: {known}") from None
