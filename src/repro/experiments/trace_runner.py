"""Trace runner: drive churn traces through the batched-epoch overlay path.

:class:`TraceRunner` replays a :class:`~repro.workloads.traces.ChurnTrace`
against a live :class:`~repro.overlay.network.OverlayNetwork` with the full
event-driven observability stack attached -- a
:class:`~repro.multicast.incremental.StabilityTreeMaintainer` (streaming tree
metrics, no snapshot rebuilds) and an
:class:`~repro.multicast.incremental.OverlayConnectivityFeed` (union-find
connectivity, no per-event graph reconstruction) -- and samples tree health
and connectivity once per epoch.

Two execution arms share the code path:

* ``per_event=False`` (the default) applies each batch through
  :meth:`~repro.overlay.network.OverlayNetwork.apply_batch` and pays **one**
  convergence and one tree ``refresh()`` per epoch;
* ``per_event=True`` replays the same flattened events through the
  ``insert_and_converge`` / ``remove_and_converge`` loop, converging and
  refreshing after every single event -- the pre-batching cadence ablation
  A7 and the scaling benchmark compare against.

Both arms make identical bootstrap choices (the join order is the same and
the bootstrap rng is re-seeded per run), so under full knowledge they land on
the identical overlay fixed point and byte-identical maintained stability
tree; the equivalence is asserted by A7 and by the hypothesis tests.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, Mapping, Optional, Sequence, Tuple, Union

from repro.geometry.distance import euclidean_distance
from repro.multicast.incremental import OverlayConnectivityFeed, StabilityTreeMaintainer
from repro.overlay.network import (
    BatchEvent,
    BatchJoin,
    BatchLeave,
    BatchMove,
    OverlayNetwork,
)
from repro.overlay.peer import PeerInfo
from repro.overlay.selection.base import NeighbourSelectionMethod
from repro.workloads.traces import ChurnTrace, EventBatch

__all__ = [
    "EpochSample",
    "TraceRunResult",
    "TraceRunner",
    "TraceScenarioRow",
    "run_trace_scenarios",
    "region_radius_for_fraction",
]


@dataclass(frozen=True)
class EpochSample:
    """Live observations taken after one epoch of a trace replay."""

    epoch: int
    time: float
    events: int
    joins: int
    leaves: int
    moves: int
    rounds: int
    peer_count: int
    connected: bool
    tree_roots: int
    tree_height: int
    tree_maximum_degree: int
    tree_leaf_count: int


@dataclass(frozen=True)
class TraceRunResult:
    """Summary of one trace replay (one arm)."""

    mode: str
    samples: Tuple[EpochSample, ...]
    total_events: int
    total_rounds: int
    convergences: int
    reparent_operations: int
    full_rebuilds: int
    connectivity_rebuilds: int
    wall_seconds: float
    final_neighbours: Dict[int, FrozenSet[int]]
    final_parents: Dict[int, Optional[int]]

    @property
    def epoch_count(self) -> int:
        """Number of epochs sampled."""
        return len(self.samples)

    @property
    def always_connected(self) -> bool:
        """``True`` when every epoch sample observed a connected overlay."""
        return all(sample.connected for sample in self.samples)

    @property
    def maximum_height(self) -> int:
        """Largest maintained-tree height observed across the epochs."""
        return max((sample.tree_height for sample in self.samples), default=0)

    @property
    def maximum_degree(self) -> int:
        """Largest maintained-tree degree observed across the epochs."""
        return max(
            (sample.tree_maximum_degree for sample in self.samples), default=0
        )


class TraceRunner:
    """Replays churn traces against fresh overlays with live metrics attached.

    Parameters
    ----------
    population:
        The peers the trace's event ids refer to (a mapping or a sequence
        indexed by ``peer_id``).  Peers should carry distinct lifetimes
        (:func:`repro.workloads.peers.generate_peers_with_lifetimes`) so the
        stability tree is well-defined.
    selection_factory:
        Zero-argument callable building the neighbour selection method; a
        fresh instance is created per run so the two arms never share
        method-internal caches.
    bootstrap_seed:
        Seed of the per-run bootstrap-contact rng.  Both arms replay the
        joins in the same order, so re-seeding per run makes their bootstrap
        choices identical.
    use_index:
        Forwarded to :class:`~repro.overlay.network.OverlayNetwork`:
        ``None`` (the default) gives every full-knowledge run an owned
        spatial index, so the replays are index-backed; ``False`` pins the
        scan path (the index-scaling benchmark's baseline arm).
    """

    def __init__(
        self,
        population: Union[Mapping[int, PeerInfo], Sequence[PeerInfo]],
        selection_factory,
        *,
        gossip_radius: Optional[int] = None,
        bootstrap_seed: int = 0,
        max_rounds: int = 50,
        use_index: Optional[bool] = None,
    ) -> None:
        if isinstance(population, Mapping):
            self._population: Dict[int, PeerInfo] = dict(population)
        else:
            self._population = {peer.peer_id: peer for peer in population}
        self._selection_factory = selection_factory
        self._gossip_radius = gossip_radius
        self._bootstrap_seed = bootstrap_seed
        self._max_rounds = max_rounds
        self._use_index = use_index

    def run(self, trace: ChurnTrace, *, per_event: bool = False) -> TraceRunResult:
        """Replay one trace from an empty overlay; returns the run summary."""
        trace.validate()
        missing = trace.peer_ids() - set(self._population)
        if missing:
            raise KeyError(
                f"trace references peers missing from the population: "
                f"{sorted(missing)[:10]}"
            )
        selection: NeighbourSelectionMethod = self._selection_factory()
        overlay = OverlayNetwork(
            selection,
            gossip_radius=self._gossip_radius,
            use_index=self._use_index,
        )
        maintainer = StabilityTreeMaintainer(overlay)
        feed = OverlayConnectivityFeed(overlay)
        rng = random.Random(self._bootstrap_seed)

        samples = []
        total_rounds = 0
        total_events = 0
        convergences = 0
        started = time.perf_counter()
        for epoch, batch in enumerate(trace.batches):
            if per_event:
                rounds = 0
                for event in self._materialize(batch, overlay, rng):
                    rounds += overlay.apply_batch(
                        (event,), max_rounds=self._max_rounds
                    )
                    convergences += 1
                    maintainer.refresh()
            else:
                rounds = overlay.apply_batch(
                    self._materialize(batch, overlay, rng),
                    max_rounds=self._max_rounds,
                )
                convergences += 1
                maintainer.refresh()
            total_rounds += rounds
            total_events += len(batch.events)
            health = maintainer.engine.health_sample(epoch)
            samples.append(
                EpochSample(
                    epoch=epoch,
                    time=batch.time,
                    events=len(batch.events),
                    joins=batch.join_count,
                    leaves=batch.leave_count,
                    moves=batch.move_count,
                    rounds=rounds,
                    peer_count=overlay.peer_count,
                    connected=feed.is_connected(),
                    tree_roots=health.roots,
                    tree_height=health.height,
                    tree_maximum_degree=health.maximum_degree,
                    tree_leaf_count=health.leaf_count,
                )
            )
        wall_seconds = time.perf_counter() - started
        return TraceRunResult(
            mode="per-event" if per_event else "per-epoch",
            samples=tuple(samples),
            total_events=total_events,
            total_rounds=total_rounds,
            convergences=convergences,
            reparent_operations=maintainer.engine.reparent_operations,
            full_rebuilds=maintainer.full_rebuilds,
            connectivity_rebuilds=feed.tracker.rebuilds,
            wall_seconds=wall_seconds,
            final_neighbours=overlay.directed_neighbour_map(),
            final_parents=maintainer.engine.parent_map(),
        )

    def _materialize(
        self, batch: EventBatch, overlay: OverlayNetwork, rng: random.Random
    ) -> Iterator[BatchEvent]:
        """Turn churn events into batch events, choosing bootstraps lazily.

        The generator is consumed by :meth:`OverlayNetwork.apply_batch` one
        event at a time, *after* the previous event was applied, so a
        bootstrap contact is drawn from the overlay state the join actually
        sees -- including peers that joined earlier in the same batch,
        exactly as the one-at-a-time procedure would.
        """
        for event in batch.events:
            if event.kind == "join":
                peer = self._population[event.peer_id]
                if overlay.peer_count == 0:
                    yield BatchJoin(peer, bootstrap=frozenset())
                else:
                    yield BatchJoin(
                        peer, bootstrap=frozenset({rng.choice(overlay.peer_ids)})
                    )
            elif event.kind == "move":
                assert event.coordinates is not None  # ChurnEvent validated this
                yield BatchMove(event.peer_id, event.coordinates)
            else:
                yield BatchLeave(event.peer_id)


@dataclass(frozen=True)
class TraceScenarioRow:
    """Per-epoch replay summary of one churn-trace scenario."""

    scenario: str
    dimension: int
    epochs: int
    events: int
    peak_peers: int
    final_peers: int
    engine_rounds: int
    reparent_operations: int
    always_connected: bool
    maximum_height: int
    maximum_degree: int
    wall_seconds: float


def region_radius_for_fraction(
    peers: Sequence[PeerInfo],
    center: Sequence[float],
    fraction: float,
    *,
    distance=None,
) -> float:
    """Radius capturing roughly ``fraction`` of ``peers`` around ``center``.

    Used to parameterise :func:`repro.workloads.traces.mass_departure_trace`
    without hand-tuning: the radius lands between the ``fraction``-quantile
    distance and the next one, so the departing region is never empty and
    never the whole population.
    """
    if not 0.0 < fraction < 1.0:
        raise ValueError("fraction must be in (0, 1)")
    if len(peers) < 2:
        raise ValueError("at least two peers are needed to split a region off")
    measure = euclidean_distance if distance is None else distance
    origin = tuple(center)
    distances = sorted(measure(tuple(peer.coordinates), origin) for peer in peers)
    index = max(0, min(len(distances) - 2, int(len(distances) * fraction) - 1))
    return (distances[index] + distances[index + 1]) / 2.0


def run_trace_scenarios(
    scale=None,
    *,
    dimension: int = 3,
) -> Tuple[list, "AblationResult"]:
    """Replay every trace scenario per-epoch and summarise one row each.

    This is what the ``trace`` CLI subcommand prints: the four scenario
    generators (Poisson, flash crowd, correlated mass departure, diurnal
    wave) at the resolved scale, each driven through the batched-epoch path
    with live tree and connectivity metrics.
    """
    # Imported lazily: ablations.py imports TraceRunner for A7, so a
    # module-level import here would be a cycle.
    from repro.experiments.ablations import AblationResult
    from repro.experiments.common import derive_seed
    from repro.experiments.config import resolve_scale
    from repro.overlay.selection.empty_rectangle import EmptyRectangleSelection
    from repro.workloads.peers import generate_peers_with_lifetimes
    from repro.workloads.traces import (
        diurnal_trace,
        flash_crowd_trace,
        mass_departure_trace,
        poisson_trace,
    )

    resolved = scale if scale is not None else resolve_scale()
    count = resolved.peer_count
    seed = derive_seed(resolved.seed, 17, dimension, count)
    peers = generate_peers_with_lifetimes(count, dimension, seed=seed)

    scenarios = {
        "poisson": poisson_trace(
            count, session_mean=count / 2.0, epoch_length=count / 12.0, seed=seed
        ),
        "flash-crowd": flash_crowd_trace(
            max(2, count // 2),
            max(2, count // 2),
            epoch_length=max(2, count // 2) / 8.0,
            seed=seed,
        ),
        "mass-departure": mass_departure_trace(
            peers,
            center=tuple(peers[0].coordinates),
            radius=region_radius_for_fraction(
                peers, tuple(peers[0].coordinates), 0.3
            ),
            epoch_length=count / 8.0,
            rejoin_after_epochs=2,
            seed=seed,
        ),
        "diurnal": diurnal_trace(
            count, cycles=2, epochs_per_cycle=8, seed=seed
        ),
    }

    rows = []
    for name, trace in scenarios.items():
        # Diurnal allocates fresh ids beyond the base population when its
        # departed pool runs dry; regrow the population to cover them.
        population = peers
        extra = trace.peer_ids() - {peer.peer_id for peer in peers}
        if extra:
            population = generate_peers_with_lifetimes(
                count + len(extra), dimension, seed=seed
            )
        runner = TraceRunner(
            population, EmptyRectangleSelection, bootstrap_seed=seed
        )
        result = runner.run(trace)
        rows.append(
            TraceScenarioRow(
                scenario=name,
                dimension=dimension,
                epochs=result.epoch_count,
                events=result.total_events,
                peak_peers=max(sample.peer_count for sample in result.samples),
                final_peers=result.samples[-1].peer_count,
                engine_rounds=result.total_rounds,
                reparent_operations=result.reparent_operations,
                always_connected=result.always_connected,
                maximum_height=result.maximum_height,
                maximum_degree=result.maximum_degree,
                wall_seconds=result.wall_seconds,
            )
        )

    table = AblationResult(
        name="trace-scenarios",
        headers=(
            "scenario",
            "D",
            "epochs",
            "events",
            "peak peers",
            "final peers",
            "rounds",
            "reparents",
            "connected",
            "max height",
            "max degree",
            "wall [s]",
        ),
        rows=tuple(
            (
                row.scenario,
                row.dimension,
                row.epochs,
                row.events,
                row.peak_peers,
                row.final_peers,
                row.engine_rounds,
                row.reparent_operations,
                row.always_connected,
                row.maximum_height,
                row.maximum_degree,
                f"{row.wall_seconds:.2f}",
            )
            for row in rows
        ),
    )
    return rows, table
