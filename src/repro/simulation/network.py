"""An in-memory message network with latencies and per-kind counters.

Peers address each other by peer id (the simulated counterpart of the public
IP / port pair of the paper); the network delivers each message after a
configurable latency by scheduling a delivery event on the simulation engine.
Message counters are the ground truth for every "number of messages" claim --
in particular the ``N - 1`` construction-message claim of Section 2 is
verified against the ``construct`` counter of this class, not against any
by-product of the tree data structure.

Two delay regimes are supported:

* the legacy ``latency=`` scalar/callable (constant or topology-dependent
  delay, every message delivered), and
* a :class:`~repro.simulation.netmodel.LinkModel` (``link_model=``), which
  adds per-link latency distributions, i.i.d. loss and FIFO bandwidth
  queueing -- see :mod:`repro.simulation.netmodel`.

Byte accounting runs in both regimes (the estimator is model-independent),
so overhead is measured in bytes as well as counts everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.simulation.engine import SimulationEngine
from repro.simulation.netmodel import LinkModel, estimate_message_bytes

__all__ = ["Message", "NetworkStats", "SimulatedNetwork"]

LatencyModel = Callable[[int, int], float]


@dataclass(frozen=True)
class Message:
    """One message in flight: who sent it, to whom, what kind, and its payload."""

    sender: int
    recipient: int
    kind: str
    payload: Any
    sent_at: float


@dataclass
class NetworkStats:
    """Counters the experiments read after a run.

    ``messages_dropped`` counts deliveries to unregistered (departed)
    recipients; ``messages_lost`` counts in-flight loss by the link model.
    The distinction matters: drops are the protocol's problem (it talked to
    a dead peer), losses are the network's.
    """

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    messages_lost: int = 0
    bytes_sent: int = 0
    bytes_delivered: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)
    bytes_by_kind: Dict[str, int] = field(default_factory=dict)

    def count(self, kind: str) -> int:
        """Number of messages of one kind that were sent."""
        return self.by_kind.get(kind, 0)

    def bytes_of(self, kind: str) -> int:
        """Estimated bytes of one kind that were sent."""
        return self.bytes_by_kind.get(kind, 0)


class SimulatedNetwork:
    """Delivers messages between registered peer handlers via the event engine.

    Parameters
    ----------
    engine:
        The simulation engine used to schedule deliveries.
    latency:
        Either a constant latency in simulated seconds, or a callable
        ``latency(sender, recipient)`` for topology-dependent delays.
        Mutually exclusive with ``link_model``.
    link_model:
        A :class:`~repro.simulation.netmodel.LinkModel` supplying latency
        distributions, loss and bandwidth queueing.  Mutually exclusive
        with ``latency``.  The model is claimed for this network's run
        (its RNG streams and FIFO frontiers are positioned by the traffic);
        constructing a second network with the same instance raises unless
        ``link_model.reset()`` is called in between.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        *,
        latency: "float | LatencyModel | None" = None,
        link_model: Optional[LinkModel] = None,
    ) -> None:
        self._engine = engine
        if link_model is not None and latency is not None:
            raise ValueError("pass either latency= or link_model=, not both")
        if link_model is not None:
            # A model is single-run: its RNG positions and FIFO frontiers
            # advance as messages flow, so sharing one across networks would
            # silently couple the runs.  Claim it; reset() releases it.
            link_model._attach()
        self._link_model = link_model
        self._latency_model: Optional[LatencyModel] = None
        if link_model is None:
            if latency is None:
                latency = 0.01
            if callable(latency):
                self._latency_model = latency
            else:
                constant = float(latency)
                if constant < 0:
                    raise ValueError("latency must be non-negative")
                self._latency_model = lambda sender, recipient: constant
        self._handlers: Dict[int, Callable[[Message], None]] = {}
        self._stats = NetworkStats()

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def register(self, peer_id: int, handler: Callable[[Message], None]) -> None:
        """Attach a peer's message handler to the network."""
        if peer_id in self._handlers:
            raise ValueError(f"peer {peer_id} is already registered")
        self._handlers[peer_id] = handler

    def unregister(self, peer_id: int) -> None:
        """Detach a peer (messages addressed to it are dropped from then on)."""
        self._handlers.pop(peer_id, None)

    def is_registered(self, peer_id: int) -> bool:
        """``True`` while the peer can receive messages."""
        return peer_id in self._handlers

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, sender: int, recipient: int, kind: str, payload: Any) -> None:
        """Send one message; it is delivered after the configured latency.

        Messages to peers that are not registered (departed or never joined)
        are counted as sent and as dropped -- exactly what happens to a UDP
        datagram aimed at a dead peer.  Under a lossy link model a message
        may instead be lost in flight (counted, never delivered).
        """
        message = Message(
            sender=sender,
            recipient=recipient,
            kind=kind,
            payload=payload,
            sent_at=self._engine.now,
        )
        size = estimate_message_bytes(kind, payload)
        self._stats.messages_sent += 1
        self._stats.bytes_sent += size
        self._stats.by_kind[kind] = self._stats.by_kind.get(kind, 0) + 1
        self._stats.bytes_by_kind[kind] = self._stats.bytes_by_kind.get(kind, 0) + size
        if self._link_model is not None:
            deliver_at = self._link_model.delivery_time(
                sender, recipient, size, self._engine.now
            )
            if deliver_at is None:
                self._stats.messages_lost += 1
                return
            self._engine.schedule(
                deliver_at,
                lambda: self._deliver(message, size),
                description=f"{kind} {sender}->{recipient}",
            )
            return
        assert self._latency_model is not None
        delay = self._latency_model(sender, recipient)
        self._engine.schedule_after(
            delay,
            lambda: self._deliver(message, size),
            description=f"{kind} {sender}->{recipient}",
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def stats(self) -> NetworkStats:
        """Counters accumulated so far."""
        return self._stats

    @property
    def link_model(self) -> Optional[LinkModel]:
        """The link model in force, or ``None`` on the legacy latency path."""
        return self._link_model

    def reset_stats(self) -> None:
        """Zero all counters (used between the overlay phase and the multicast phase)."""
        self._stats = NetworkStats()

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _deliver(self, message: Message, size: int) -> None:
        handler = self._handlers.get(message.recipient)
        if handler is None:
            self._stats.messages_dropped += 1
            return
        self._stats.messages_delivered += 1
        self._stats.bytes_delivered += size
        handler(message)
