"""A real network model for the message-level simulator.

The paper's Tier-1 claims are about dissemination *latency* and message
*overhead*, yet a simulator that delivers every message after one scalar
delay cannot stress either.  This module supplies the missing physics:

* **Latency distributions** -- per-link delay drawn from a constant,
  uniform or lognormal distribution (:class:`ConstantLatency`,
  :class:`UniformLatency`, :class:`LognormalLatency`).
* **Loss** -- i.i.d. per-message loss with probability ``loss_rate``.
* **Bandwidth** -- an optional per-directed-link byte rate; messages
  serialise through a FIFO queue, so a burst on one link sees queueing
  delay proportional to the bytes ahead of it.

Determinism (RPL004): every stochastic draw comes from a per-directed-link
``numpy`` generator seeded as ``default_rng((seed, sender, recipient))``.
Each link owns an independent stream, so one link's traffic never perturbs
another link's draws, and the whole model replays byte-identically for a
given seed and event order.

The degenerate model -- constant latency, zero loss, no bandwidth cap --
takes a fast path that touches no generator at all, which is what makes it
*provably* equivalent to the legacy scalar-latency network (the
seeded-equivalence suite asserts the equality end to end).

Byte accounting uses :func:`estimate_message_bytes`, a structural estimator
over the simulation's payload dataclasses (no per-kind registry, hence no
import cycle with the protocol layer).
"""

from __future__ import annotations

import dataclasses
import math
from collections.abc import Mapping
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Type, Union

import numpy as np

__all__ = [
    "ConstantLatency",
    "UniformLatency",
    "LognormalLatency",
    "LatencyDistribution",
    "LinkModel",
    "estimate_message_bytes",
]


# ----------------------------------------------------------------------
# Latency distributions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ConstantLatency:
    """Every message takes exactly ``value`` seconds (the legacy behaviour)."""

    value: float

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValueError(f"latency must be non-negative, got {self.value}")

    def sample(self, rng: np.random.Generator) -> float:
        """Return the constant delay; consumes no randomness."""
        return self.value

    def describe(self) -> str:
        return f"constant({self.value * 1000:.0f}ms)"


@dataclass(frozen=True)
class UniformLatency:
    """Delay drawn uniformly from ``[low, high]`` seconds."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low < 0 or self.high < self.low:
            raise ValueError(
                f"need 0 <= low <= high, got low={self.low} high={self.high}"
            )

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def describe(self) -> str:
        return f"uniform({self.low * 1000:.0f}-{self.high * 1000:.0f}ms)"


@dataclass(frozen=True)
class LognormalLatency:
    """Heavy-tailed delay with the given ``median`` (seconds) and shape ``sigma``.

    Parameterised by the median rather than the underlying normal's mean
    because the median is the number one reads off a real RTT measurement;
    ``sigma`` controls the tail (0.5 is mild jitter, 1.0 a heavy tail).
    """

    median: float
    sigma: float

    def __post_init__(self) -> None:
        if self.median <= 0:
            raise ValueError(f"median must be positive, got {self.median}")
        if self.sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {self.sigma}")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.lognormal(math.log(self.median), self.sigma))

    def describe(self) -> str:
        return f"lognormal(median={self.median * 1000:.0f}ms, sigma={self.sigma})"


LatencyDistribution = Union[ConstantLatency, UniformLatency, LognormalLatency]


# ----------------------------------------------------------------------
# Byte accounting
# ----------------------------------------------------------------------
#: IPv4 (20) + UDP (8) header bytes charged to every message on the wire.
HEADER_BYTES = 28

#: Per-field wire estimates for scalar payload components.
_SCALAR_BYTES = 8

_FIELDS_CACHE: Dict[Type[object], Tuple[str, ...]] = {}


def _payload_bytes(value: object) -> int:
    """Structural wire-size estimate for one payload value.

    Walks tuples/collections, mappings (keys and values both count) and
    dataclasses recursively; scalars count 8 bytes (ids, floats, ports),
    strings/bytes their length.  The estimate is deliberately coarse --
    overhead comparisons between protocol variants only need a consistent
    ruler, not a serialisation format.
    """
    if value is None:
        return 0
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, (bool, int, float)):
        return _SCALAR_BYTES
    if isinstance(value, (tuple, list, set, frozenset)):
        return sum(_payload_bytes(item) for item in value)
    if isinstance(value, Mapping):
        return sum(
            _payload_bytes(key) + _payload_bytes(entry) for key, entry in value.items()
        )
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        names = _FIELDS_CACHE.get(cls)
        if names is None:
            names = tuple(f.name for f in dataclasses.fields(value))
            _FIELDS_CACHE[cls] = names
        return sum(_payload_bytes(getattr(value, name)) for name in names)
    return _SCALAR_BYTES


def estimate_message_bytes(kind: str, payload: object) -> int:
    """Estimated on-the-wire size of one message: headers + kind tag + payload."""
    return HEADER_BYTES + len(kind) + _payload_bytes(payload)


# ----------------------------------------------------------------------
# The link model
# ----------------------------------------------------------------------
class _LinkState:
    """Mutable per-directed-link state: its RNG stream and FIFO frontier."""

    __slots__ = ("rng", "busy_until")

    def __init__(self, rng: np.random.Generator) -> None:
        self.rng = rng
        self.busy_until = 0.0


class LinkModel:
    """Latency distribution + loss + bandwidth for every directed link.

    A model instance is **single-run**: per-link RNG positions and FIFO
    ``busy_until`` frontiers advance as messages flow, so
    :class:`~repro.simulation.network.SimulatedNetwork` claims the instance
    at construction and a second attachment raises until :meth:`reset`.

    Parameters
    ----------
    latency:
        A :data:`LatencyDistribution`, or a plain ``float`` shorthand for
        :class:`ConstantLatency`.
    loss_rate:
        I.i.d. probability in ``[0, 1)`` that any one message is lost in
        flight (before delivery, after the sender counted it).
    bandwidth_bytes_per_second:
        Optional per-directed-link capacity.  Messages serialise FIFO: a
        message sent while the link is draining an earlier one waits its
        turn, then occupies the link for ``size / bandwidth`` seconds, and
        only then starts its propagation delay.  ``None`` models infinite
        capacity (no queueing).
    seed:
        Root seed for the per-link generators.  Link ``(s, r)`` draws from
        ``default_rng((seed, s, r))`` -- independent, reproducible streams.
    """

    def __init__(
        self,
        latency: Union[LatencyDistribution, float] = 0.01,
        *,
        loss_rate: float = 0.0,
        bandwidth_bytes_per_second: Optional[float] = None,
        seed: int = 0,
    ) -> None:
        if isinstance(latency, (int, float)):
            latency = ConstantLatency(float(latency))
        self._latency = latency
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self._loss_rate = loss_rate
        if bandwidth_bytes_per_second is not None and bandwidth_bytes_per_second <= 0:
            raise ValueError(
                "bandwidth_bytes_per_second must be positive when given, "
                f"got {bandwidth_bytes_per_second}"
            )
        self._bandwidth = bandwidth_bytes_per_second
        self._seed = seed
        self._links: Dict[Tuple[int, int], _LinkState] = {}
        self._attached = False

    # -- introspection --------------------------------------------------
    @property
    def latency(self) -> LatencyDistribution:
        return self._latency

    @property
    def loss_rate(self) -> float:
        return self._loss_rate

    @property
    def bandwidth_bytes_per_second(self) -> Optional[float]:
        return self._bandwidth

    @property
    def is_degenerate(self) -> bool:
        """True when the model is exactly the legacy network: constant
        latency, no loss, infinite bandwidth.  The degenerate path consumes
        no randomness, which is what makes byte-identical equivalence with
        the scalar-latency network provable rather than merely likely."""
        return (
            isinstance(self._latency, ConstantLatency)
            and self._loss_rate == 0.0
            and self._bandwidth is None
        )

    # -- run ownership --------------------------------------------------
    def _attach(self) -> None:
        """Claim the model for one simulation run.

        The model is silently stateful: the per-link RNG positions and the
        absolute-time ``busy_until`` FIFO frontiers advance as messages flow,
        so a second run reusing the instance would see shifted random draws
        and links that are "busy" at timestamps from the previous run.
        :class:`~repro.simulation.network.SimulatedNetwork` calls this at
        construction; a second attachment raises until :meth:`reset`.
        """
        if self._attached:
            raise ValueError(
                "LinkModel is already attached to a SimulatedNetwork; its "
                "per-link RNG streams and FIFO frontiers are positioned by "
                "that run.  Construct a fresh model per run, or call "
                "reset() to discard the accumulated link state."
            )
        self._attached = True

    def reset(self) -> None:
        """Discard all accumulated per-link state and release the model.

        Drops every per-link RNG (rewinding each stream to its seeded
        origin) and every FIFO ``busy_until`` frontier, making the instance
        byte-identical to a freshly constructed one so it may be attached to
        a new :class:`~repro.simulation.network.SimulatedNetwork`.
        """
        self._links.clear()
        self._attached = False

    def describe(self) -> str:
        parts = [self._latency.describe()]
        if self._loss_rate:
            parts.append(f"loss={self._loss_rate:.0%}")
        if self._bandwidth is not None:
            parts.append(f"bw={self._bandwidth / 1000:.0f}kB/s")
        return ", ".join(parts)

    # -- the model ------------------------------------------------------
    def _state(self, sender: int, recipient: int) -> _LinkState:
        key = (sender, recipient)
        state = self._links.get(key)
        if state is None:
            state = _LinkState(np.random.default_rng((self._seed, sender, recipient)))
            self._links[key] = state
        return state

    def delivery_time(
        self, sender: int, recipient: int, size_bytes: int, now: float
    ) -> Optional[float]:
        """Absolute delivery time for a message sent at ``now``, or ``None``
        if the link loses it.

        The loss draw happens before the link is occupied -- a message lost
        in flight still left the sender, but a dropped packet does not hold
        the FIFO queue for its full serialisation time in this model (the
        distinction is below the estimator's resolution).
        """
        if self.is_degenerate:
            # Fast path: no per-link state, no draws.  This is the branch the
            # seeded-equivalence suite pins against the legacy network.
            return now + self._latency.value  # type: ignore[union-attr]
        state = self._state(sender, recipient)
        if self._loss_rate and float(state.rng.random()) < self._loss_rate:
            return None
        start = now
        if self._bandwidth is not None:
            start = max(now, state.busy_until) + size_bytes / self._bandwidth
            state.busy_until = start
        return start + self._latency.sample(state.rng)
