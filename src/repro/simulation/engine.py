"""A minimal deterministic discrete-event engine.

Events are ``(time, sequence)``-ordered callbacks.  The sequence number makes
the ordering of simultaneous events deterministic (FIFO in scheduling order),
which is what makes whole simulations reproducible run over run -- the
property the paper's multi-threaded framework lacks and the reason this
substrate replaces it (see DESIGN.md).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

__all__ = ["Event", "SimulationEngine"]


@dataclass(order=True, frozen=True)
class Event:
    """A scheduled callback.

    Ordering uses ``(time, sequence)`` only; the callback and description are
    excluded from comparisons.
    """

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    description: str = field(compare=False, default="")


class SimulationEngine:
    """Priority-queue driven simulation clock.

    Typical usage::

        engine = SimulationEngine()
        engine.schedule(1.0, lambda: ...)          # absolute time
        engine.schedule_after(0.5, lambda: ...)    # relative to "now"
        engine.run()                               # until the queue drains
    """

    def __init__(self) -> None:
        self._queue: List[Event] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._processed = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of events still waiting in the queue."""
        return len(self._queue)

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self, time: float, callback: Callable[[], None], *, description: str = ""
    ) -> Event:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule an event at {time} before the current time {self._now}"
            )
        event = Event(
            time=time,
            sequence=next(self._sequence),
            callback=callback,
            description=description,
        )
        heapq.heappush(self._queue, event)
        return event

    def schedule_after(
        self, delay: float, callback: Callable[[], None], *, description: str = ""
    ) -> Event:
        """Schedule ``callback`` ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule(self._now + delay, callback, description=description)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> Optional[Event]:
        """Execute the next event; returns it, or ``None`` if the queue is empty."""
        if not self._queue:
            return None
        event = heapq.heappop(self._queue)
        self._now = event.time
        self._processed += 1
        event.callback()
        return event

    def run(
        self, *, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> int:
        """Run events until the queue drains, ``until`` is reached, or the budget is spent.

        Returns the number of events executed by this call.  ``until`` is an
        inclusive horizon: events scheduled exactly at ``until`` still run.
        """
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                break
            if until is not None and self._queue[0].time > until:
                self._now = until
                break
            self.step()
            executed += 1
        return executed
