"""A minimal deterministic discrete-event engine.

Events are ``(time, sequence)``-ordered callbacks.  The sequence number makes
the ordering of simultaneous events deterministic (FIFO in scheduling order),
which is what makes whole simulations reproducible run over run -- the
property the paper's multi-threaded framework lacks and the reason this
substrate replaces it (see DESIGN.md).

Cancellation is tombstoned: :meth:`SimulationEngine.cancel` marks an event
dead without disturbing the heap, and :meth:`SimulationEngine.step` discards
dead entries as they surface.  Cancelled events therefore never execute and
never perturb the ``(time, sequence)`` ordering of the live ones, which keeps
retransmission timers (scheduled eagerly, cancelled on ack) compatible with
the determinism contract.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Set

__all__ = ["Event", "SimulationEngine"]


@dataclass(order=True, frozen=True)
class Event:
    """A scheduled callback.

    Ordering uses ``(time, sequence)`` only; the callback and description are
    excluded from comparisons.
    """

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    description: str = field(compare=False, default="")


class SimulationEngine:
    """Priority-queue driven simulation clock.

    Typical usage::

        engine = SimulationEngine()
        engine.schedule(1.0, lambda: ...)          # absolute time
        engine.schedule_after(0.5, lambda: ...)    # relative to "now"
        engine.run()                               # until the queue drains
    """

    def __init__(self) -> None:
        self._queue: List[Event] = []
        self._sequence = itertools.count()
        self._live: Set[int] = set()
        self._now = 0.0
        self._processed = 0
        self._cancelled = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of live (not yet executed, not cancelled) events."""
        return len(self._live)

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def cancelled_events(self) -> int:
        """Number of events cancelled before they could execute."""
        return self._cancelled

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self, time: float, callback: Callable[[], None], *, description: str = ""
    ) -> Event:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule an event at {time} before the current time {self._now}"
            )
        event = Event(
            time=time,
            sequence=next(self._sequence),
            callback=callback,
            description=description,
        )
        heapq.heappush(self._queue, event)
        self._live.add(event.sequence)
        return event

    def schedule_after(
        self, delay: float, callback: Callable[[], None], *, description: str = ""
    ) -> Event:
        """Schedule ``callback`` ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule(self._now + delay, callback, description=description)

    def cancel(self, event: Event) -> bool:
        """Cancel a scheduled event so it never executes.

        Returns ``True`` if the event was still pending, ``False`` if it had
        already executed or been cancelled (cancellation is idempotent).  The
        heap entry stays behind as a tombstone and is discarded lazily.
        """
        if event.sequence not in self._live:
            return False
        self._live.discard(event.sequence)
        self._cancelled += 1
        return True

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _discard_tombstones(self) -> None:
        """Pop cancelled entries off the head of the heap."""
        while self._queue and self._queue[0].sequence not in self._live:
            heapq.heappop(self._queue)

    def step(self) -> Optional[Event]:
        """Execute the next live event; returns it, or ``None`` if none remain."""
        self._discard_tombstones()
        if not self._queue:
            return None
        event = heapq.heappop(self._queue)
        self._live.discard(event.sequence)
        self._now = event.time
        self._processed += 1
        event.callback()
        return event

    def run(
        self, *, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> int:
        """Run events until the queue drains, ``until`` is reached, or the budget is spent.

        Returns the number of events executed by this call.  ``until`` is an
        inclusive horizon: events scheduled exactly at ``until`` still run,
        and the clock always ends at ``max(now, until)`` -- whether the queue
        drained, held only cancelled tombstones, or was empty to begin with.
        Exhausting ``max_events`` returns early *without* advancing the clock
        to the horizon (the simulation is paused, not finished).
        """
        executed = 0
        while True:
            if max_events is not None and executed >= max_events:
                return executed
            self._discard_tombstones()
            if not self._queue:
                break
            if until is not None and self._queue[0].time > until:
                break
            self.step()
            executed += 1
        if until is not None and until > self._now:
            self._now = until
        return executed
