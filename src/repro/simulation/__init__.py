"""Discrete-event simulation of the distributed protocol.

The paper evaluates its algorithms with a multi-threaded Python simulation
framework.  This package is the reproduction's equivalent substrate: a
deterministic discrete-event engine (:mod:`repro.simulation.engine`), an
in-memory message network with latencies and per-kind counters
(:mod:`repro.simulation.network`), a real network model with latency
distributions, loss and bandwidth queueing
(:mod:`repro.simulation.netmodel`), peer processes that run the join /
gossip / neighbour-selection / multicast-construction protocol message by
message (:mod:`repro.simulation.protocol`) and high-level runners that
assemble whole experiments (:mod:`repro.simulation.runner`).

Determinism is the deliberate difference from the paper's threads: with a
seeded event queue every run is exactly reproducible, while the protocol code
paths exercised (messages sent, handlers run) are the same.  DESIGN.md
records this substitution.
"""

from repro.simulation.engine import Event, SimulationEngine
from repro.simulation.netmodel import (
    ConstantLatency,
    LinkModel,
    LognormalLatency,
    UniformLatency,
    estimate_message_bytes,
)
from repro.simulation.network import Message, NetworkStats, SimulatedNetwork
from repro.simulation.protocol import GossipConfig, PeerProcess, TreeRecorder
from repro.simulation.runner import (
    DisseminationProbeResult,
    GossipSimulationResult,
    MulticastSimulationResult,
    run_dissemination_probe,
    run_gossip_overlay,
    run_multicast_over_gossip_overlay,
)

__all__ = [
    "Event",
    "SimulationEngine",
    "Message",
    "NetworkStats",
    "SimulatedNetwork",
    "ConstantLatency",
    "UniformLatency",
    "LognormalLatency",
    "LinkModel",
    "estimate_message_bytes",
    "GossipConfig",
    "PeerProcess",
    "TreeRecorder",
    "DisseminationProbeResult",
    "GossipSimulationResult",
    "MulticastSimulationResult",
    "run_dissemination_probe",
    "run_gossip_overlay",
    "run_multicast_over_gossip_overlay",
]
